//! Property suite: `write_snapshot → load_snapshot` is the identity on
//! graphs — same triples in the same iteration order, same interning order
//! (so ids are interchangeable), same predicate statistics, same text-index
//! hits — including graphs that saw removals (orphaned literals stay
//! unindexed across the round-trip).

use re2x_rdf::snapshot::graph_digest;
use re2x_rdf::{load_shard_snapshot, partition_observations, Graph, Literal, Term};
use re2x_testkit::{check, TestRng};

const IRI_ALPHABET: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.#/:-";

fn gen_iri(rng: &mut TestRng) -> Term {
    Term::iri(format!(
        "http://ex/{}",
        rng.string_from(IRI_ALPHABET, 1..20)
    ))
}

fn gen_term(rng: &mut TestRng) -> Term {
    match rng.pick_weighted(&[4, 1, 2, 1, 1]) {
        0 => gen_iri(rng),
        1 => Term::blank(rng.string_from("abcdef0123456789", 1..9)),
        2 => Term::from(Literal::simple(rng.string_from(IRI_ALPHABET, 0..12))),
        3 => Term::from(Literal::integer(rng.next_u64() as i64)),
        _ => Term::from(Literal::tagged(
            rng.string_from(IRI_ALPHABET, 1..8),
            rng.string_from("abcdefghijklmnopqrstuvwxyz", 2..3),
        )),
    }
}

/// A random graph that exercises interning order, duplicate inserts and
/// removals (so text-index orphaning is part of the round-tripped state).
fn gen_graph(rng: &mut TestRng) -> Graph {
    let mut graph = Graph::new();
    let mut triples = Vec::new();
    for _ in 0..rng.gen_range(0usize..60) {
        let (s, p, o) = (gen_iri(rng), gen_iri(rng), gen_term(rng));
        graph.insert(s.clone(), p.clone(), o.clone());
        triples.push((s, p, o));
    }
    // remove a few, sometimes orphaning literals out of the text index
    for _ in 0..rng.gen_range(0usize..8) {
        if triples.is_empty() {
            break;
        }
        let (s, p, o) = triples.remove(rng.gen_range(0usize..triples.len()));
        let (Some(s), Some(p), Some(o)) = (graph.term_id(&s), graph.term_id(&p), graph.term_id(&o))
        else {
            continue;
        };
        graph.remove_ids(s, p, o);
    }
    graph
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("re2x-snap-{}-{name}.snap", std::process::id()));
    p
}

fn assert_graphs_identical(a: &Graph, b: &Graph) {
    // triple set + iteration order over the canonical sorted stream
    assert_eq!(a.len(), b.len());
    assert_eq!(a.iter_sorted(), b.iter_sorted());
    // interning order: same id ⇔ same term, both directions
    assert_eq!(a.interner().len(), b.interner().len());
    for (id, term) in a.interner().iter() {
        assert_eq!(b.interner().resolve(id), term);
        assert_eq!(b.term_id(term), Some(id));
        assert_eq!(a.numeric_value(id), b.numeric_value(id));
    }
    // per-predicate incremental statistics
    assert_eq!(a.predicates(), b.predicates());
    for p in a.predicates() {
        assert_eq!(a.predicate_stats(p), b.predicate_stats(p));
    }
    // posting-list views agree (sorted slices, compared directly)
    for t in a.iter_sorted() {
        assert_eq!(a.objects(t.s, t.p), b.objects(t.s, t.p));
        assert_eq!(a.subjects(t.p, t.o), b.subjects(t.p, t.o));
        assert_eq!(
            a.predicates_between(t.s, t.o),
            b.predicates_between(t.s, t.o)
        );
    }
    // text index: same size and identical hits for every literal's lexical
    assert_eq!(a.text_index().len(), b.text_index().len());
    for (_, term) in a.interner().iter() {
        if let Some(lit) = term.as_literal() {
            assert_eq!(
                a.literals_matching_exact(lit.lexical()),
                b.literals_matching_exact(lit.lexical())
            );
            assert_eq!(
                a.literals_matching_keywords(lit.lexical()),
                b.literals_matching_keywords(lit.lexical())
            );
        }
    }
    // and the digest agrees with all of the above
    assert_eq!(graph_digest(a), graph_digest(b));
}

#[test]
fn snapshot_round_trips_random_graphs() {
    check("snapshot_round_trips_random_graphs", |rng| {
        let graph = gen_graph(rng);
        let path = tmp_path(&format!("prop-{}", rng.next_u64()));
        graph
            .write_snapshot(&path, "prop/roundtrip")
            .expect("write snapshot");
        let loaded = Graph::load_snapshot(&path, Some("prop/roundtrip")).expect("load snapshot");
        let _ = std::fs::remove_file(&path);
        assert_graphs_identical(&graph, &loaded);
    });
}

#[test]
fn snapshot_round_trips_empty_graph() {
    let graph = Graph::new();
    let path = tmp_path("empty");
    graph.write_snapshot(&path, "empty").expect("write");
    let loaded = Graph::load_snapshot(&path, Some("empty")).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_graphs_identical(&graph, &loaded);
}

/// A loaded snapshot is a fully live graph: further inserts and removals
/// keep every invariant (they go through the normal mutation paths).
#[test]
fn loaded_snapshot_stays_mutable() {
    check("loaded_snapshot_stays_mutable", |rng| {
        let graph = gen_graph(rng);
        let path = tmp_path(&format!("mut-{}", rng.next_u64()));
        graph.write_snapshot(&path, "prop/mutable").expect("write");
        let mut loaded = Graph::load_snapshot(&path, Some("prop/mutable")).expect("load");
        let _ = std::fs::remove_file(&path);
        let mut reference = graph.clone();
        for _ in 0..10 {
            let (s, p, o) = (gen_iri(rng), gen_iri(rng), gen_term(rng));
            assert_eq!(
                reference.insert(s.clone(), p.clone(), o.clone()),
                loaded.insert(s, p, o)
            );
        }
        assert_graphs_identical(&reference, &loaded);
    });
}

/// A shard loaded from its snapshot is byte-identical to the shard
/// partitioned in memory, for every shard of every shard count tried.
#[test]
fn shard_snapshots_match_in_memory_partitions() {
    check("shard_snapshots_match_in_memory_partitions", |rng| {
        use re2x_rdf::vocab::{qb, rdf};
        let mut graph = Graph::new();
        // a small cube: observations typed qb:Observation plus dimension data
        let dim = Term::iri("http://ex/dim");
        let class = Term::iri(qb::OBSERVATION);
        let type_pred = Term::iri(rdf::TYPE);
        for i in 0..rng.gen_range(1usize..30) {
            let obs = Term::iri(format!("http://ex/obs{i}"));
            let member = Term::iri(format!("http://ex/m{}", i % 5));
            graph.insert(obs.clone(), type_pred.clone(), class.clone());
            graph.insert(obs, dim.clone(), member.clone());
            graph.insert(
                member,
                Term::iri("http://ex/label"),
                Term::from(Literal::simple(format!("member {}", i % 5))),
            );
        }
        let shards = rng.gen_range(1usize..5);
        let parts = partition_observations(&graph, shards);
        let dir = std::env::temp_dir().join(format!(
            "re2x-shards-{}-{}",
            std::process::id(),
            rng.next_u64()
        ));
        let paths = parts
            .write_shard_snapshots(&dir, "prop/shards")
            .expect("write shards");
        assert_eq!(paths.len(), shards);
        for (i, path) in paths.iter().enumerate() {
            let loaded = load_shard_snapshot(path, "prop/shards", i, shards).expect("load shard");
            assert_graphs_identical(&parts.shards[i], &loaded);
            // wrong position in the artifact set must be rejected
            if shards > 1 {
                let wrong = load_shard_snapshot(path, "prop/shards", (i + 1) % shards, shards);
                assert!(matches!(
                    wrong,
                    Err(re2x_rdf::RdfError::SnapshotKeyMismatch { .. })
                ));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}
