//! The `MATCHES` step of Algorithm 1 (lines 2–5): resolving an example
//! keyword to dimension members and the hierarchy levels they belong to.
//!
//! Procedure (all through the endpoint, as the paper's system does):
//! 1. full-text search resolves the keyword to literal terms,
//! 2. the literals' subjects are candidate members (with the connecting
//!    predicate as the attribute predicate),
//! 3. for each candidate member, the predicates arriving at it are matched
//!    against the Virtual Schema Graph's level paths, and each candidate
//!    (member, level) pair is verified with an `ASK` that some observation
//!    reaches the member over the level's path.

use crate::query_model::ExampleBinding;
use re2x_cube::{patterns, LevelId, VirtualSchemaGraph};
use re2x_sparql::{
    PatternElement, Query, SparqlEndpoint, SparqlError, TermPattern, TriplePattern, Value,
};

/// How keywords are matched against member attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// The whole normalized attribute value must equal the keyword
    /// (`"2014"` matches the year member labelled "2014" but not the month
    /// "October 2014"). The default, mirroring entity lookup.
    #[default]
    Exact,
    /// All tokens of the keyword must occur in the attribute value
    /// (classic full-text containment).
    Keyword,
}

/// A keyword resolved to a member at a level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberMatch {
    /// The resolved binding (keyword, member, label, level).
    pub binding: ExampleBinding,
    /// The attribute predicate that connected the keyword literal to the
    /// member.
    pub attribute_predicate: String,
}

/// Resolves a keyword to all `(member, level)` interpretations.
pub fn matches(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    keyword: &str,
    mode: MatchMode,
) -> Result<Vec<MemberMatch>, SparqlError> {
    let literals = endpoint.keyword_search(keyword, mode == MatchMode::Exact);
    let graph = endpoint.graph();
    let mut out = Vec::new();
    for literal in literals {
        let (lexical, literal_term) = match graph.term(literal).as_literal() {
            Some(l) => (l.lexical().to_owned(), l.clone()),
            None => continue,
        };
        // candidate members: subjects of any predicate pointing at the
        // literal — asked through the endpoint so the caching/tracing/
        // sharding decorators observe (and can answer) the probe
        let mut probe =
            Query::select_all(vec![PatternElement::Triple(TriplePattern::with_pred_var(
                TermPattern::Var("x".to_owned()),
                "p",
                TermPattern::Literal(literal_term),
            ))]);
        probe
            .select
            .push(re2x_sparql::SelectItem::Var("x".to_owned()));
        probe
            .select
            .push(re2x_sparql::SelectItem::Var("p".to_owned()));
        let solutions = endpoint.select(&probe)?;
        let mut candidates: Vec<(String, String)> = Vec::new(); // (member, attr pred)
        for row in &solutions.rows {
            if let (Some(Value::Term(s)), Some(Value::Term(p))) = (row[0].as_ref(), row[1].as_ref())
            {
                if let (Some(member), Some(pred)) =
                    (graph.term(*s).as_iri(), graph.term(*p).as_iri())
                {
                    candidates.push((member.to_owned(), pred.to_owned()));
                }
            }
        }
        for (member_iri, attribute_predicate) in candidates {
            for level in member_levels(endpoint, schema, &member_iri)? {
                let binding = ExampleBinding {
                    keyword: keyword.to_owned(),
                    member_iri: member_iri.clone(),
                    label: lexical.clone(),
                    level,
                };
                let m = MemberMatch {
                    binding,
                    attribute_predicate: attribute_predicate.clone(),
                };
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
    }
    Ok(out)
}

/// The levels a member node belongs to: levels whose final path predicate
/// arrives at the member, verified by an `ASK` over the full path from the
/// observation class.
pub fn member_levels(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    member_iri: &str,
) -> Result<Vec<LevelId>, SparqlError> {
    // predicates arriving at the member
    let mut incoming =
        Query::select_all(vec![PatternElement::Triple(TriplePattern::with_pred_var(
            TermPattern::Var("x".to_owned()),
            "p",
            TermPattern::Iri(member_iri.to_owned()),
        ))]);
    incoming.distinct = true;
    incoming
        .select
        .push(re2x_sparql::SelectItem::Var("p".to_owned()));
    let solutions = endpoint.select(&incoming)?;
    let graph = endpoint.graph();
    let predicates: Vec<String> = solutions
        .rows
        .iter()
        .filter_map(|row| match row[0].as_ref() {
            Some(Value::Term(id)) => graph.term(*id).as_iri().map(str::to_owned),
            _ => None,
        })
        .collect();

    let mut levels = Vec::new();
    for predicate in &predicates {
        for level in schema.levels_with_last_predicate(predicate) {
            if levels.contains(&level) {
                continue;
            }
            // verify the member is reachable from observations over the
            // complete level path
            let ask = Query::ask(vec![
                patterns::observation_type("o", &schema.observation_class),
                patterns::path_to_concrete_member("o", &schema.level(level).path, member_iri),
            ]);
            if endpoint.ask(&ask)? {
                levels.push(level);
            }
        }
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::LocalEndpoint;

    /// KG where "Germany" is both a destination and an origin country, and
    /// "2014" labels a year member (and occurs inside month labels).
    fn fixture() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Germany rdfs:label "Germany" .
            ex:Syria rdfs:label "Syria" .
            ex:m2014_10 ex:inYear ex:y2014 ; rdfs:label "October 2014" .
            ex:y2014 rdfs:label "2014" .

            ex:o1 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ;
                  ex:refPeriod ex:m2014_10 ; ex:applicants 10 .
            ex:o2 a ex:Obs ; ex:dest ex:Syria ; ex:origin ex:Germany ;
                  ex:refPeriod ex:m2014_10 ; ex:applicants 3 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        let ep = LocalEndpoint::new(g);
        let report = bootstrap(&ep, &BootstrapConfig::new("http://ex/Obs")).expect("bootstrap");
        (ep, report.schema)
    }

    #[test]
    fn ambiguous_member_matches_both_dimensions() {
        let (ep, schema) = fixture();
        let hits = matches(&ep, &schema, "Germany", MatchMode::Exact).expect("matches");
        let mut levels: Vec<String> = hits
            .iter()
            .map(|m| schema.level(m.binding.level).path[0].clone())
            .collect();
        levels.sort();
        assert_eq!(levels, vec!["http://ex/dest", "http://ex/origin"]);
        for m in &hits {
            assert_eq!(m.binding.member_iri, "http://ex/Germany");
            assert_eq!(m.attribute_predicate, re2x_rdf::vocab::rdfs::LABEL);
        }
    }

    #[test]
    fn exact_mode_distinguishes_year_from_month() {
        let (ep, schema) = fixture();
        let exact = matches(&ep, &schema, "2014", MatchMode::Exact).expect("matches");
        assert_eq!(exact.len(), 1);
        assert_eq!(exact[0].binding.member_iri, "http://ex/y2014");
        assert_eq!(
            schema.level(exact[0].binding.level).path,
            vec![
                "http://ex/refPeriod".to_owned(),
                "http://ex/inYear".to_owned()
            ]
        );

        let keyword = matches(&ep, &schema, "2014", MatchMode::Keyword).expect("matches");
        assert_eq!(keyword.len(), 2, "year member and the October month member");
    }

    #[test]
    fn unmatched_keyword_yields_empty() {
        let (ep, schema) = fixture();
        assert!(matches(&ep, &schema, "Atlantis", MatchMode::Exact)
            .expect("matches")
            .is_empty());
    }

    #[test]
    fn member_levels_requires_observation_reachability() {
        let (ep, schema) = fixture();
        // y2014 is only reachable through refPeriod/inYear
        let levels = member_levels(&ep, &schema, "http://ex/y2014").expect("levels");
        assert_eq!(levels.len(), 1);
        // an IRI that exists but is not a member of anything
        let levels = member_levels(&ep, &schema, "http://ex/Obs").expect("levels");
        assert!(levels.is_empty());
    }
}
