//! A fast, non-cryptographic hasher (the FxHash construction used by rustc).
//!
//! The default SipHash of `std::collections::HashMap` is HashDoS-resistant
//! but slow for the short integer keys that dominate this codebase
//! ([`crate::TermId`] values). Hash flooding is not a concern for a local
//! analytical store, so we trade resistance for speed, following the Rust
//! Performance Book's guidance. Implemented locally to avoid a dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for the Fx hasher.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state: a single 64-bit word mixed by rotate-xor-multiply.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "a" and "a\0" hash differently.
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
    }

    #[test]
    fn distinguishes_lengths_of_zero_padded_inputs() {
        // The tail mixing must not collapse "a" and "a\0".
        assert_ne!(hash_of(&[b'a'][..]), hash_of(&[b'a', 0][..]));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.get(&2), Some(&"two"));
        assert_eq!(map.get(&3), None);
    }
}
