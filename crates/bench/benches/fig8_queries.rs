//! Figure 8a: endpoint execution time of the synthesized query (Orig.) and
//! of its 1- and 2-step disaggregations (Dis.1 / Dis.2).

use re2x_bench::env::{prepare, DatasetKind, Scales};
use re2x_bench::micro::Group;
use re2x_datagen::example_workload_on;
use re2x_sparql::SparqlEndpoint;
use re2xolap::{refine::disaggregate::disaggregate, reolap, OlapQuery, ReolapConfig};

fn queries_at_depths(prepared: &re2x_bench::env::PreparedDataset) -> Vec<(String, OlapQuery)> {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 1, 3, 42);
    let config = ReolapConfig::default();
    let mut out = Vec::new();
    for tuple in &workload {
        let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
        let Ok(outcome) = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config)
        else {
            continue;
        };
        let Some(query) = outcome.queries.into_iter().next() else {
            continue;
        };
        let mut current = query;
        for depth in 0..3usize {
            if depth > 0 {
                let Some(r) = disaggregate(&prepared.report.schema, &current)
                    .into_iter()
                    .next()
                else {
                    break;
                };
                current = r.query;
            }
            let name = match depth {
                0 => "orig",
                1 => "dis1",
                _ => "dis2",
            };
            out.push((name.to_owned(), current.clone()));
        }
        break; // one example per dataset is enough for the trend
    }
    out
}

fn main() {
    let group = Group::new("fig8a_query_execution");
    let scales = Scales::smoke();
    for kind in DatasetKind::ALL {
        let prepared = prepare(kind, &scales, 42);
        for (depth, query) in queries_at_depths(&prepared) {
            group.bench(&format!("{}/{depth}", kind.name()), || {
                prepared.endpoint.select(&query.query).expect("runs")
            });
        }
    }
}
