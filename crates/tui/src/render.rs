//! The renderer: a pure function from [`DashboardState`] to [`Frame`].
//!
//! Purity is the whole point — the renderer reads *only* the state (no
//! `Instant::now`, no environment, no I/O), so the same folded event log
//! always renders byte-identical frames. The dashboard clock is the
//! largest event timestamp seen, not wall time; golden tests and the
//! `no-wallclock` lint both hold the line.

use crate::frame::{Frame, Style};
use crate::state::DashboardState;
use re2x_obs::{fmt_duration, render_self_time_tree_from, LatencyHistogram};

/// Layout knobs for [`render_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Total frame width in characters (clamped to at least 40).
    pub width: usize,
    /// Maximum self-time-tree rows before truncation.
    pub tree_rows: usize,
}

impl Default for RenderOptions {
    fn default() -> RenderOptions {
        RenderOptions {
            width: 72,
            tree_rows: 12,
        }
    }
}

/// Renders the dashboard at the default layout.
pub fn render(state: &DashboardState) -> Frame {
    render_with(state, RenderOptions::default())
}

fn quantiles(hist: &LatencyHistogram) -> String {
    match (hist.p50(), hist.p99()) {
        (Some(p50), Some(p99)) => {
            format!("p50 {} · p99 {}", fmt_duration(p50), fmt_duration(p99))
        }
        _ => "p50 – · p99 –".to_owned(),
    }
}

/// Renders the dashboard. Pure: same state, same frame, always.
pub fn render_with(state: &DashboardState, opts: RenderOptions) -> Frame {
    let width = opts.width.max(40);
    let mut frame = Frame::new(width);
    let inner = width - 4; // "│ " + " │"

    let clip = |s: &str| -> String {
        if s.chars().count() <= inner {
            return s.to_owned();
        }
        let mut out: String = s.chars().take(inner.saturating_sub(1)).collect();
        out.push('…');
        out
    };
    let boxed = |s: &str| -> String {
        let content = clip(s);
        let pad = inner.saturating_sub(content.chars().count());
        format!("│ {content}{} │", " ".repeat(pad))
    };
    let rule = |left: char, title: &str, right: char| -> String {
        let head = if title.is_empty() {
            String::new()
        } else {
            format!("─ {title} ")
        };
        let used = 1 + head.chars().count();
        let fill = width.saturating_sub(used + 1);
        format!("{left}{head}{}{right}", "─".repeat(fill))
    };

    let title = format!(
        "re2x live ── t={} ── {} events · {} dropped",
        fmt_duration(state.clock),
        state.events_seen,
        state.dropped,
    );
    frame.push(Style::Title, rule('┌', &title, '┐'));

    frame.push(
        Style::Text,
        boxed(&format!(
            "queries {}  (select {} · ask {} · keyword {})  busy {}",
            state.queries(),
            state.selects,
            state.asks,
            state.keywords,
            fmt_duration(state.endpoint_busy),
        )),
    );
    frame.push(
        Style::Text,
        boxed(&format!(
            "endpoint {}  ·  spans open {}",
            quantiles(&state.endpoint_latency),
            state.open_spans,
        )),
    );
    let looked = state.cache_hits + state.cache_misses;
    let hit_rate = if looked > 0 {
        format!("{:.1}%", 100.0 * state.cache_hits as f64 / looked as f64)
    } else {
        "–".to_owned()
    };
    frame.push(
        Style::Text,
        boxed(&format!(
            "cache hit {} · miss {} · evict {}  (hit rate {hit_rate})",
            state.cache_hits,
            state.cache_misses,
            state.cache_evictions(),
        )),
    );

    let aggs = state.span_aggs();
    if !aggs.is_empty() {
        frame.push(Style::Section, rule('├', "self time by phase", '┤'));
        let tree = render_self_time_tree_from(&aggs);
        let lines: Vec<&str> = tree.lines().collect();
        for line in lines.iter().take(opts.tree_rows) {
            frame.push(Style::Text, boxed(line));
        }
        if lines.len() > opts.tree_rows {
            frame.push(
                Style::Text,
                boxed(&format!("… +{} more paths", lines.len() - opts.tree_rows)),
            );
        }
    }

    let tenants = state.tenants();
    if !tenants.is_empty() {
        frame.push(Style::Section, rule('├', "tenants", '┤'));
        for t in &tenants {
            frame.push(
                Style::Text,
                boxed(&format!(
                    "{}  active {:.0} · admitted {} · done {} · rejected {}",
                    t.tenant, t.active, t.admitted, t.completed, t.rejected,
                )),
            );
            frame.push(
                Style::Text,
                boxed(&format!(
                    "  queue {}  ·  round {} ({} rounds)",
                    quantiles(&t.queue_wait),
                    quantiles(&t.round_latency),
                    t.rounds,
                )),
            );
            if t.budget_exhausted + t.worker_panics + t.failed > 0 {
                frame.push(
                    Style::Text,
                    boxed(&format!(
                        "  budget exhausted {} · worker panics {} · failed {}",
                        t.budget_exhausted, t.worker_panics, t.failed,
                    )),
                );
            }
        }
    }

    if let Some(shards) = state.shards() {
        frame.push(Style::Section, rule('├', "shards", '┤'));
        frame.push(
            Style::Text,
            boxed(&format!(
                "skew {:.2} · scatter {} · fallback {}",
                shards.skew, shards.scatter, shards.fallback,
            )),
        );
    }

    frame.push(Style::Title, rule('└', "", '┘'));
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_obs::{BusEvent, QueryKind, TraceEvent};
    use std::time::Duration;

    fn sample_state() -> DashboardState {
        let mut state = DashboardState::new();
        state.apply_all(&[
            BusEvent::Trace(TraceEvent::Enter {
                span: 1,
                parent: None,
                path: "session".to_owned(),
                name: "session".to_owned(),
                thread: 0,
                at: Duration::from_micros(10),
                fields: Vec::new(),
            }),
            BusEvent::Trace(TraceEvent::Query {
                path: "session".to_owned(),
                kind: QueryKind::Select,
                thread: 0,
                at: Duration::from_micros(50),
                latency: Duration::from_micros(40),
            }),
            BusEvent::Trace(TraceEvent::Exit {
                span: 1,
                path: "session".to_owned(),
                thread: 0,
                at: Duration::from_micros(100),
                wall: Duration::from_micros(90),
                self_time: Duration::from_micros(90),
            }),
            BusEvent::Counter {
                name: "serve.sessions_admitted{tenant=\"adhoc\"}".to_owned(),
                delta: 2,
                at: Duration::from_micros(120),
            },
        ]);
        state
    }

    #[test]
    fn rendering_is_pure_and_deterministic() {
        let state = sample_state();
        let a = render(&state);
        let b = render(&state);
        assert_eq!(a, b);
        assert_eq!(a.to_plain(), b.to_plain());
    }

    #[test]
    fn frame_shows_every_section_that_has_data() {
        let plain = render(&sample_state()).to_plain();
        assert!(plain.contains("re2x live"));
        assert!(plain.contains("t=120µs"), "clock is event time: {plain}");
        assert!(plain.contains("queries 1"));
        assert!(plain.contains("self time by phase"));
        assert!(plain.contains("session ×1"));
        assert!(plain.contains("tenants"));
        assert!(plain.contains("adhoc"));
        assert!(!plain.contains("shards"), "no shard metrics seen");
    }

    #[test]
    fn every_line_has_the_same_width() {
        let frame = render(&sample_state());
        for line in frame.lines() {
            assert_eq!(line.chars().count(), frame.width, "ragged line: {line:?}");
        }
    }

    #[test]
    fn long_content_is_clipped_not_wrapped() {
        let mut state = DashboardState::new();
        state.apply(&BusEvent::Trace(TraceEvent::Exit {
            span: 1,
            path: "x".repeat(500),
            thread: 0,
            at: Duration::from_micros(1),
            wall: Duration::from_micros(1),
            self_time: Duration::from_micros(1),
        }));
        let frame = render_with(
            &state,
            RenderOptions {
                width: 48,
                tree_rows: 2,
            },
        );
        for line in frame.lines() {
            assert_eq!(line.chars().count(), 48);
        }
    }

    #[test]
    fn tree_rows_truncate_with_a_note() {
        let mut state = DashboardState::new();
        for i in 0..10 {
            state.apply(&BusEvent::Trace(TraceEvent::Exit {
                span: i,
                path: format!("p{i}"),
                thread: 0,
                at: Duration::from_micros(1),
                wall: Duration::from_micros(1),
                self_time: Duration::from_micros(1),
            }));
        }
        let frame = render_with(
            &state,
            RenderOptions {
                width: 72,
                tree_rows: 4,
            },
        );
        assert!(frame.to_plain().contains("+6 more paths"));
    }
}
