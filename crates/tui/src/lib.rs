//! # re2x-tui — live terminal dashboard over the `re2x-obs` event bus
//!
//! A zero-dependency ANSI renderer (no ratatui, no crossterm) for
//! watching sessions and the serve layer run: per-phase span self-time
//! trees (reusing the obs flame-tree renderer), cache hit/miss/eviction
//! rates, endpoint latency quantiles, per-tenant serve panels (active
//! sessions, queue wait p50/p99, budget exhaustions, worker panics), and
//! shard skew when sharded.
//!
//! The design rule that makes it testable: **rendering is a pure
//! function** [`render`]`(&DashboardState) -> Frame`. The state is a fold
//! over [`re2x_obs::BusEvent`]s ([`DashboardState::apply`]); the frame's
//! clock is the largest event timestamp, never `Instant::now` — the
//! `no-wallclock` lint enforces this crate-wide. Golden tests pin frames
//! byte-for-byte, and `repro watch` replays recorded JSONL logs offline
//! through [`replay`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod render;
pub mod replay;
pub mod state;

pub use frame::{Frame, Style};
pub use render::{render, render_with, RenderOptions};
pub use replay::{frames, render_script, FRAME_INTERVAL};
pub use state::{parse_labeled, DashboardState, ShardPanel, TenantPanel};
