//! Runtime values and the solution-sequence representation.

use re2x_rdf::{Graph, Term, TermId};
use std::cmp::Ordering;
use std::fmt::Write as _;

/// A runtime value: either a graph term or a value computed by an
/// expression/aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An interned graph term.
    Term(TermId),
    /// A computed number (aggregates, arithmetic).
    Number(f64),
    /// A computed boolean.
    Bool(bool),
    /// A computed string (`STR`, `LCASE`, …).
    Str(String),
}

impl Value {
    /// Numeric interpretation, using the graph's cached literal parses.
    pub fn as_number(&self, graph: &Graph) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Term(id) => graph.numeric_value(*id),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }

    /// Boolean interpretation (SPARQL effective boolean value, restricted).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String form: lexical form for literals, the IRI for IRIs.
    pub fn string_form(&self, graph: &Graph) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Number(n) => format_number(*n),
            Value::Bool(b) => b.to_string(),
            Value::Term(id) => match graph.term(*id) {
                Term::Iri(iri) => iri.to_string(),
                Term::BlankNode(b) => format!("_:{b}"),
                Term::Literal(l) => l.lexical().to_owned(),
            },
        }
    }

    /// SPARQL `=` semantics (restricted): term identity when both sides are
    /// the *same* term; numeric equality when both sides are numeric;
    /// otherwise string comparison of the string forms.
    ///
    /// Distinct terms fall through to numeric coercion rather than
    /// returning `false`: `"5"^^xsd:integer` and `"5.0"^^xsd:decimal` are
    /// different terms but the same number, and `equals` must agree with
    /// [`Value::compare`] (which returns `Equal` for them) so `DISTINCT` /
    /// `GROUP BY` and `ORDER BY` see the same equivalence classes.
    pub fn equals(&self, other: &Value, graph: &Graph) -> bool {
        if let (Value::Term(a), Value::Term(b)) = (self, other) {
            if a == b {
                return true;
            }
        }
        if let (Some(a), Some(b)) = (self.as_number(graph), other.as_number(graph)) {
            return a == b;
        }
        self.string_form(graph) == other.string_form(graph)
    }

    /// Ordering used by comparisons and `ORDER BY`: numeric when both sides
    /// are numeric, otherwise lexicographic on the string forms.
    ///
    /// The numeric branch is a *total* order: NaN (which projected
    /// arithmetic such as `0/0` or a `"NaN"^^xsd:double` literal can
    /// produce) is pinned **after** every other number and equal to itself,
    /// regardless of its sign bit, and `-0.0 == 0.0` (matching
    /// [`Value::equals`]). A non-total comparator here would make
    /// `sort_by`'s output — and thus `ORDER BY` and every Top-k
    /// refinement — implementation-defined.
    pub fn compare(&self, other: &Value, graph: &Graph) -> Ordering {
        if let (Some(a), Some(b)) = (self.as_number(graph), other.as_number(graph)) {
            return total_compare_numeric(a, b);
        }
        self.string_form(graph).cmp(&other.string_form(graph))
    }
}

/// Total order over `f64` for `ORDER BY`: NaN sorts after all numbers and
/// compares equal to itself (sign bit ignored); otherwise IEEE order, with
/// `-0.0 == 0.0`. Unlike [`f64::total_cmp`] this keeps the two zeros (and
/// the two NaN sign bits) in one equivalence class, so the order agrees
/// with numeric `=` everywhere it is defined.
pub fn total_compare_numeric(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // partial_cmp is Some for any two non-NaN floats; Equal is the
        // harmless answer if that invariant ever moved under us.
        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
    }
}

/// Renders a computed number the way SPARQL result serializations do:
/// integral values without a fractional part.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// A solution sequence: named columns plus rows of optional values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Solutions {
    /// Output column names (without `?`).
    pub vars: Vec<String>,
    /// Rows; `None` marks an unbound column.
    pub rows: Vec<Vec<Option<Value>>>,
}

impl Solutions {
    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The value at `(row, column-name)`.
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let col = self.column(column)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// Renders the solutions as an aligned text table with IRI terms
    /// replaced by their `rdfs:label` where one exists — the presentation
    /// the interactive examples use.
    pub fn to_labeled_table(&self, graph: &Graph) -> String {
        let label_pred = graph.iri_id(re2x_rdf::vocab::rdfs::LABEL);
        self.render_table(graph, |graph, value| match (value, label_pred) {
            (Value::Term(id), Some(p)) if graph.term(*id).is_iri() => graph
                .objects(*id, p)
                .first()
                .and_then(|&l| graph.term(l).as_literal())
                .map(|l| l.lexical().to_owned()),
            _ => None,
        })
    }

    /// Renders the solutions as an aligned text table (for examples and the
    /// `repro` binary).
    pub fn to_table(&self, graph: &Graph) -> String {
        self.render_table(graph, |_, _| None)
    }

    fn render_table(
        &self,
        graph: &Graph,
        prettify: impl Fn(&Graph, &Value) -> Option<String>,
    ) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        let s = cell.as_ref().map_or_else(
                            || "—".to_owned(),
                            |v| prettify(graph, v).unwrap_or_else(|| v.string_form(graph)),
                        );
                        widths[i] = widths[i].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, var) in self.vars.iter().enumerate() {
            let _ = write!(out, "| {:w$} ", var, w = widths[i]);
        }
        out.push_str("|\n");
        for &w in &widths {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
        }
        out.push_str("|\n");
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
            }
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::Literal;

    fn graph_with_terms() -> (Graph, TermId, TermId, TermId) {
        let mut g = Graph::new();
        let iri = g.intern_iri("http://ex/Germany");
        let num = g.intern_literal(Literal::integer(42));
        let txt = g.intern_literal(Literal::simple("Germany"));
        (g, iri, num, txt)
    }

    #[test]
    fn numeric_interpretation() {
        let (g, iri, num, txt) = graph_with_terms();
        assert_eq!(Value::Term(num).as_number(&g), Some(42.0));
        assert_eq!(Value::Term(iri).as_number(&g), None);
        assert_eq!(Value::Term(txt).as_number(&g), None);
        assert_eq!(Value::Number(1.5).as_number(&g), Some(1.5));
    }

    #[test]
    fn equality_semantics() {
        let (g, iri, num, txt) = graph_with_terms();
        assert!(Value::Term(iri).equals(&Value::Term(iri), &g));
        assert!(!Value::Term(iri).equals(&Value::Term(txt), &g));
        // numeric literal equals computed number
        assert!(Value::Term(num).equals(&Value::Number(42.0), &g));
        // plain literal compares by string form
        assert!(Value::Term(txt).equals(&Value::Str("Germany".into()), &g));
    }

    #[test]
    fn ordering_numeric_before_lexicographic() {
        let (g, ..) = graph_with_terms();
        assert_eq!(
            Value::Number(2.0).compare(&Value::Number(10.0), &g),
            Ordering::Less
        );
        // strings: "10" < "2" lexicographically
        assert_eq!(
            Value::Str("10".into()).compare(&Value::Str("2".into()), &g),
            Ordering::Less
        );
    }

    #[test]
    fn compare_is_total_under_nan() {
        // Regression: `partial_cmp(..).unwrap_or(Equal)` made NaN compare
        // Equal to everything, which is not transitive (1 ≠ 2 but both
        // "equal" NaN) — `sort_by` output became implementation-defined.
        let (g, ..) = graph_with_terms();
        let nan = Value::Number(f64::NAN);
        let one = Value::Number(1.0);
        let two = Value::Number(2.0);
        // NaN is pinned after every number and equal to itself…
        assert_eq!(nan.compare(&one, &g), Ordering::Greater);
        assert_eq!(one.compare(&nan, &g), Ordering::Less);
        assert_eq!(nan.compare(&nan, &g), Ordering::Equal);
        assert_eq!(
            Value::Number(-f64::NAN).compare(&nan, &g),
            Ordering::Equal,
            "NaN sign bit must not split the equivalence class"
        );
        assert_eq!(
            nan.compare(&Value::Number(f64::INFINITY), &g),
            Ordering::Greater
        );
        // …so the comparator is antisymmetric and transitive over a
        // NaN-containing set: 1 < 2 < NaN with no Equal shortcuts.
        assert_eq!(one.compare(&two, &g), Ordering::Less);
        assert_eq!(two.compare(&nan, &g), Ordering::Less);
        assert_eq!(one.compare(&nan, &g), Ordering::Less);
    }

    #[test]
    fn compare_keeps_zeros_equal() {
        let (g, ..) = graph_with_terms();
        let pos = Value::Number(0.0);
        let neg = Value::Number(-0.0);
        assert_eq!(pos.compare(&neg, &g), Ordering::Equal);
        assert!(pos.equals(&neg, &g), "compare and equals must agree on ±0");
    }

    #[test]
    fn equals_falls_through_to_numeric_coercion() {
        // Regression: the TermId fast path returned `false` for distinct
        // terms before trying numeric coercion, so `equals` and `compare`
        // disagreed on numerically-equal literals and DISTINCT/GROUP BY
        // split classes that ORDER BY merged.
        let mut g = Graph::new();
        let int5 = g.intern_literal(Literal::typed("5", re2x_rdf::vocab::xsd::INTEGER));
        let dec5 = g.intern_literal(Literal::typed("5.0", re2x_rdf::vocab::xsd::DECIMAL));
        let padded5 = g.intern_literal(Literal::typed("05", re2x_rdf::vocab::xsd::INTEGER));
        assert_ne!(int5, dec5, "distinct terms by construction");
        for (a, b) in [(int5, dec5), (dec5, int5), (int5, padded5), (padded5, int5)] {
            let (va, vb) = (Value::Term(a), Value::Term(b));
            assert!(va.equals(&vb, &g), "{a:?} = {b:?} numerically");
            assert_eq!(
                va.compare(&vb, &g),
                Ordering::Equal,
                "equals and compare agree in both directions"
            );
        }
        // genuinely different numbers still differ
        let int6 = g.intern_literal(Literal::integer(6));
        assert!(!Value::Term(int5).equals(&Value::Term(int6), &g));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(8030.0), "8030");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(-3.0), "-3");
    }

    #[test]
    fn labeled_table_resolves_labels() {
        let mut g = Graph::new();
        let iri = g.intern_iri("http://ex/Germany");
        let label_p = g.intern_iri(re2x_rdf::vocab::rdfs::LABEL);
        let lit = g.intern_literal(Literal::simple("Germany"));
        g.insert_ids(iri, label_p, lit);
        let unlabeled = g.intern_iri("http://ex/NoLabel");
        let sols = Solutions {
            vars: vec!["a".into(), "b".into()],
            rows: vec![vec![Some(Value::Term(iri)), Some(Value::Term(unlabeled))]],
        };
        let table = sols.to_labeled_table(&g);
        assert!(table.contains("Germany"));
        assert!(!table.contains("http://ex/Germany"), "{table}");
        assert!(table.contains("http://ex/NoLabel"), "fallback to IRI");
    }

    #[test]
    fn solutions_accessors_and_table() {
        let (g, iri, num, _) = graph_with_terms();
        let sols = Solutions {
            vars: vec!["dest".into(), "total".into()],
            rows: vec![vec![Some(Value::Term(iri)), Some(Value::Term(num))]],
        };
        assert_eq!(sols.column("total"), Some(1));
        assert_eq!(sols.column("nope"), None);
        assert_eq!(sols.len(), 1);
        let v = sols.value(0, "total").expect("bound");
        assert_eq!(v.as_number(&g), Some(42.0));
        let table = sols.to_table(&g);
        assert!(table.contains("http://ex/Germany"));
        assert!(table.contains("42"));
    }
}
