//! Scope layer over the token stream: a brace tree plus guard-liveness
//! tracking, the substrate the dataflow rules run on.
//!
//! The lexer guarantees braces inside strings, chars, and comments never
//! surface as `Punct` tokens, so a linear scan over the significant token
//! stream sees exactly the structural `{`/`}` pairs. [`ScopeTree::build`]
//! turns them into a tree (item → fn → block nesting); [`GuardTracker`]
//! layers lock-guard lifetimes on top: a `let`-bound guard lives until its
//! enclosing block closes, an explicit `drop(guard)`, or a consuming call
//! (`wait_or_recover(cv, guard)`); an unbound temporary dies at the end of
//! its statement.

use crate::lexer::Token;

/// One `{ … }` block: indices into the significant token slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the `{` token.
    pub open: usize,
    /// Index of the matching `}` token; `None` if the file ends first.
    pub close: Option<usize>,
    /// Index into [`ScopeTree::blocks`] of the enclosing block.
    pub parent: Option<usize>,
    /// Nesting depth (0 = top-level item body).
    pub depth: usize,
}

/// The brace tree of one file.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// Blocks in opening order.
    pub blocks: Vec<Block>,
    /// `false` if a `}` had no matching `{` or a `{` was never closed.
    pub balanced: bool,
}

impl ScopeTree {
    /// Builds the tree from a significant (comment-free) token stream.
    pub fn build(toks: &[Token], text: &str) -> ScopeTree {
        let mut blocks: Vec<Block> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut balanced = true;
        for (i, t) in toks.iter().enumerate() {
            match t.text(text) {
                "{" => {
                    blocks.push(Block {
                        open: i,
                        close: None,
                        parent: stack.last().copied(),
                        depth: stack.len(),
                    });
                    stack.push(blocks.len() - 1);
                }
                "}" => match stack.pop() {
                    Some(b) => blocks[b].close = Some(i),
                    None => balanced = false,
                },
                _ => {}
            }
        }
        if !stack.is_empty() {
            balanced = false;
        }
        ScopeTree { blocks, balanced }
    }

    /// Index of the innermost block containing token `tok`, if any.
    pub fn innermost_at(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (b, block) in self.blocks.iter().enumerate() {
            let close = block.close.unwrap_or(usize::MAX);
            if block.open < tok && tok < close {
                match best {
                    Some(prev) if self.blocks[prev].depth >= block.depth => {}
                    _ => best = Some(b),
                }
            }
        }
        best
    }

    /// Whether every block's span nests strictly inside its parent's —
    /// the invariant the property suite checks on seeded inputs.
    pub fn spans_nest(&self) -> bool {
        self.blocks.iter().all(|b| match b.parent {
            None => true,
            Some(p) => {
                let parent = &self.blocks[p];
                parent.open < b.open
                    && match (b.close, parent.close) {
                        (Some(c), Some(pc)) => c < pc,
                        (None, _) => parent.close.is_none(),
                        (Some(_), None) => true,
                    }
            }
        })
    }
}

/// A lock guard currently live at some point of the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveGuard {
    /// Registry name of the guarded lock, when the acquisition resolved.
    pub lock: Option<String>,
    /// The `let`-bound variable holding the guard; `None` for temporaries.
    pub var: Option<String>,
    /// Brace depth at the acquisition site.
    pub depth: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// Tracks which guards are live during a linear scan of one file.
///
/// The model is lexical: a guard bound by `let` is held until its block
/// closes, `drop(var)`, or a consuming call takes `var` by value; an
/// unbound temporary is held until its statement's `;`. This matches the
/// `lock-order` edge extractor so the two analyses agree on "holding".
#[derive(Debug, Default)]
pub struct GuardTracker {
    held: Vec<LiveGuard>,
    depth: usize,
}

impl GuardTracker {
    /// Fresh tracker (no guards, depth 0).
    pub fn new() -> GuardTracker {
        GuardTracker::default()
    }

    /// Observes a `{`.
    pub fn open_brace(&mut self) {
        self.depth += 1;
    }

    /// Observes a `}`: guards acquired in the closing block die.
    pub fn close_brace(&mut self) {
        let depth = self.depth;
        self.held.retain(|h| h.depth < depth);
        self.depth = self.depth.saturating_sub(1);
    }

    /// Observes a `;`: unbound temporaries at the current depth die.
    pub fn end_statement(&mut self) {
        let depth = self.depth;
        self.held.retain(|h| h.var.is_some() || h.depth != depth);
    }

    /// Releases the guard bound to `var` (explicit `drop(var)` or a call
    /// that consumed it by value).
    pub fn release_var(&mut self, var: &str) {
        self.held.retain(|h| h.var.as_deref() != Some(var));
    }

    /// Registers a fresh acquisition at the current depth.
    pub fn acquire(&mut self, lock: Option<String>, var: Option<String>, line: u32) {
        self.held.push(LiveGuard {
            lock,
            var,
            depth: self.depth,
            line,
        });
    }

    /// Guards live right now, outermost first.
    pub fn live(&self) -> &[LiveGuard] {
        &self.held
    }

    /// Whether any guard is live.
    pub fn any_live(&self) -> bool {
        !self.held.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::significant;
    use crate::source::SourceFile;

    fn tree(src: &str) -> ScopeTree {
        let file = SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), src.into());
        ScopeTree::build(&significant(&file), src)
    }

    #[test]
    fn nested_blocks_form_a_tree() {
        let t = tree("fn a() { if x { y(); } }\nfn b() {}\n");
        assert!(t.balanced);
        assert!(t.spans_nest());
        assert_eq!(t.blocks.len(), 3);
        assert_eq!(t.blocks[0].depth, 0);
        assert_eq!(t.blocks[1].parent, Some(0));
        assert_eq!(t.blocks[1].depth, 1);
        assert_eq!(t.blocks[2].parent, None, "fn b body is a new root");
    }

    #[test]
    fn braces_in_strings_do_not_unbalance() {
        let t = tree("fn a() { let s = \"}}{{\"; let r = r#\"{\"#; }\n");
        assert!(t.balanced);
        assert_eq!(t.blocks.len(), 1);
    }

    #[test]
    fn unbalanced_is_reported_not_panicked() {
        assert!(!tree("fn a() { {\n").balanced);
        assert!(!tree("}}\n").balanced);
    }

    #[test]
    fn innermost_at_picks_the_deepest_block() {
        let src = "fn a() { if x { y(); } }\n";
        let t = tree(src);
        let file = SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), src.into());
        let toks = significant(&file);
        let y = toks
            .iter()
            .position(|t| t.text(src) == "y")
            .expect("y token");
        let inner = t.innermost_at(y).expect("inside a block");
        assert_eq!(t.blocks[inner].depth, 1);
    }

    #[test]
    fn guard_tracker_scopes_and_drops() {
        let mut g = GuardTracker::new();
        g.open_brace();
        g.acquire(Some("a".into()), Some("ga".into()), 1);
        g.open_brace();
        g.acquire(Some("b".into()), Some("gb".into()), 2);
        assert_eq!(g.live().len(), 2);
        g.close_brace();
        assert_eq!(g.live().len(), 1, "inner-block guard died with its block");
        g.release_var("ga");
        assert!(!g.any_live());
    }

    #[test]
    fn temporaries_die_at_statement_end() {
        let mut g = GuardTracker::new();
        g.open_brace();
        g.acquire(Some("a".into()), None, 1);
        assert!(g.any_live());
        g.end_statement();
        assert!(!g.any_live());
        g.acquire(Some("a".into()), Some("held".into()), 2);
        g.end_statement();
        assert!(g.any_live(), "let-bound guards survive their statement");
    }
}
