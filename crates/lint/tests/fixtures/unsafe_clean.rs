//! forbid-unsafe CLEAN fixture: the crate root carries the attribute.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn harmless() {}
