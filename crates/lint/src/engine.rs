//! Workspace walk, rule dispatch, suppression handling, baseline
//! matching, and the lock-graph assembly.

use crate::findings::Finding;
use crate::rules::lock_order::{self, LockEdge, LockRegistration};
use crate::rules::{debug_output, forbid_unsafe, panic_freedom, seam, wallclock};
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// Crates whose whole purpose is measurement or test infrastructure:
/// exempt from panic-freedom (asserting is their job).
const PANIC_FREEDOM_SKIP: &[&str] = &["bench", "testkit"];
/// The experiment harness measures wall time by design.
const WALLCLOCK_SKIP: &[&str] = &["bench"];
/// The experiment harness reports to the terminal by design.
const DEBUG_OUTPUT_SKIP: &[&str] = &["bench"];
/// The algorithm layers bound to the `SparqlEndpoint` seam.
const SEAM_ONLY: &[&str] = &["core", "cube"];

/// The result of linting a set of files (before baseline application).
#[derive(Debug, Default)]
pub struct LintResult {
    /// Findings that survived `lint:allow` suppression.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by `lint:allow` comments.
    pub suppressed: usize,
    /// The workspace lock registry.
    pub registrations: Vec<LockRegistration>,
    /// The workspace nested-acquisition graph.
    pub edges: Vec<LockEdge>,
}

/// Lints prepared source files (the unit the fixture tests drive).
pub fn lint_files(files: &[SourceFile]) -> LintResult {
    let mut result = LintResult::default();
    for file in files {
        let mut raw: Vec<Finding> = Vec::new();
        if !PANIC_FREEDOM_SKIP.contains(&file.crate_name.as_str()) {
            raw.extend(panic_freedom::check(file));
        }
        if !WALLCLOCK_SKIP.contains(&file.crate_name.as_str()) {
            raw.extend(wallclock::check(file));
        }
        if !DEBUG_OUTPUT_SKIP.contains(&file.crate_name.as_str()) {
            raw.extend(debug_output::check(file));
        }
        if SEAM_ONLY.contains(&file.crate_name.as_str()) {
            raw.extend(seam::check(file));
        }
        if file.path.ends_with("src/lib.rs") {
            raw.extend(forbid_unsafe::check(file));
        }
        let locks = lock_order::analyze(file);
        raw.extend(locks.findings);
        result.registrations.extend(locks.registrations);
        result.edges.extend(locks.edges);

        for finding in raw {
            if file.is_allowed(finding.rule, finding.line) {
                result.suppressed += 1;
            } else {
                result.findings.push(finding);
            }
        }
    }

    // Workspace-level lock-order checks: duplicate names and cycles.
    result
        .findings
        .extend(lock_order::duplicate_name_findings(&result.registrations));
    for cycle in lock_order::find_cycles(&result.edges) {
        let (file, line) = cycle.site.clone();
        result.findings.push(Finding {
            rule: "lock-order",
            file,
            line,
            snippet: cycle.path.join(" -> "),
            message: format!(
                "lock-order cycle: {} (a thread interleaving can deadlock here)",
                cycle.path.join(" -> ")
            ),
        });
    }

    // Deterministic output order.
    result
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    result
}

/// Reads and prepares every `crates/*/src/**/*.rs` under `root`.
pub fn collect_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut sources = Vec::new();
        walk_rs(&crate_dir.join("src"), &mut sources)?;
        sources.sort();
        for path in sources {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::new(rel, crate_name.clone(), text));
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("walk error: {e}"))?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// The outcome of matching findings against a checked-in baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail the gate.
    pub new_findings: Vec<Finding>,
    /// Number of findings absorbed by baseline entries.
    pub matched: usize,
    /// Baseline entries that no longer match any finding — the baseline
    /// must shrink when violations are fixed, so these also fail the gate.
    pub stale: Vec<String>,
}

/// Matches findings against baseline lines (multiset semantics: one
/// baseline line absorbs exactly one finding with the same key).
pub fn apply_baseline(findings: Vec<Finding>, baseline_lines: &[String]) -> BaselineOutcome {
    let mut budget: Vec<(String, usize)> = Vec::new();
    for line in baseline_lines {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match budget.iter_mut().find(|(k, _)| k == line) {
            Some((_, n)) => *n += 1,
            None => budget.push((line.to_owned(), 1)),
        }
    }
    let mut outcome = BaselineOutcome::default();
    for finding in findings {
        let key = finding.baseline_key();
        match budget.iter_mut().find(|(k, n)| *k == key && *n > 0) {
            Some((_, n)) => {
                *n -= 1;
                outcome.matched += 1;
            }
            None => outcome.new_findings.push(finding),
        }
    }
    for (key, n) in budget {
        for _ in 0..n {
            outcome.stale.push(key.clone());
        }
    }
    outcome.stale.sort();
    outcome
}

/// Renders findings as baseline lines (sorted, one per finding).
pub fn to_baseline(findings: &[Finding]) -> String {
    let mut lines: Vec<String> = findings.iter().map(Finding::baseline_key).collect();
    lines.sort();
    let mut out = String::from(
        "# re2x-lint suppression baseline: pre-existing findings accepted as debt.\n\
         # The gate fails on any finding not listed here AND on stale entries,\n\
         # so this file can only shrink. Regenerate with: re2x-lint --write-baseline\n",
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}
