//! Figure 6c: system-bootstrap (Virtual Schema Graph construction) time
//! per dataset. The paper attributes bootstrap cost to schema complexity
//! and endpoint speed, not to observation count — the two Eurostat scales
//! benched here demonstrate the latter dependence is sub-linear.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_sparql::LocalEndpoint;

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6c_bootstrap");
    group.sample_size(10);

    let cases: Vec<(&str, re2x_datagen::Dataset)> = vec![
        ("eurostat_2k", re2x_datagen::eurostat::generate(2_000, 42)),
        ("eurostat_8k", re2x_datagen::eurostat::generate(8_000, 42)),
        ("production_2k", re2x_datagen::production::generate(2_000, 42)),
        ("dbpedia_2k", re2x_datagen::dbpedia::generate(2_000, 42)),
    ];
    for (name, mut dataset) in cases {
        let class = dataset.observation_class.clone();
        let endpoint = LocalEndpoint::new(std::mem::take(&mut dataset.graph));
        group.bench_function(name, |b| {
            b.iter_batched(
                || BootstrapConfig::new(class.clone()),
                |config| bootstrap(&endpoint, &config).expect("bootstrap"),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap);
criterion_main!(benches);
