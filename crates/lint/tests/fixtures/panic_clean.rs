//! panic-freedom CLEAN fixture: fallible handling, suppressed site, and
//! panic-looking text inside strings/comments.

pub fn careful(input: Option<u32>) -> Result<u32, String> {
    // mentioning .unwrap() in a comment is not a call
    match input {
        Some(value) => Ok(value),
        None => Err("an .expect(...) would panic here".to_owned()),
    }
}

pub fn suppressed(input: Option<u32>) -> u32 {
    // lint:allow(panic-freedom, the caller checked is_some one line up)
    input.unwrap()
}

pub fn strings_do_not_fire() -> &'static str {
    "call .unwrap() or panic!(now) — still just a string"
}
