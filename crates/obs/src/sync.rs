//! Poison-tolerant lock acquisition with an optional runtime lock witness.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while holding
//! the guard; every later `.lock().unwrap()` then panics too, cascading
//! one worker's failure into a session-wide kill — exactly what the
//! interactive loop must not do. For the workspace's locks the protected
//! state is counters, caches, and event buffers: all remain internally
//! consistent at every await-free critical-section boundary, so the right
//! recovery is to take the data and keep serving.
//!
//! [`lock_or_recover`] (and [`wait_or_recover`] for condvar loops) does
//! exactly that — acquire, and on poison strip the flag and hand the
//! guard back. Every acquisition names its lock with the same identifier
//! the static registry uses (`// lock-order: <name>` in `re2x-lint`), so
//! the two views of the lock graph stay cross-checkable.
//!
//! ## The lock witness (`RE2X_LOCK_WITNESS=1`)
//!
//! The static lock-order analysis in `re2x-lint` is intra-function and
//! lexical: a nesting that spans a call boundary is invisible to it. The
//! witness closes that gap at runtime. When the environment variable
//! `RE2X_LOCK_WITNESS` is `1`, every [`lock_or_recover`] pushes its lock
//! name onto a thread-local held-stack and records one observed nesting
//! edge `held → acquired` (with the acquiring call site, via
//! `#[track_caller]`) into a global edge set for every lock the thread
//! already holds. Tests then assert the observed edges are a subset of
//! the statically declared graph and acyclic ([`witness_edges`],
//! `crates/lint/tests/witness_gate.rs`).
//!
//! Like the disabled tracer, the witness costs nothing when off: one
//! relaxed atomic load per acquisition, no allocation, no extra locking.

use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

// ---- witness state ---------------------------------------------------------

/// Tri-state enable flag: 0 = not yet probed, 1 = on, 2 = off.
static WITNESS_STATE: AtomicU8 = AtomicU8::new(0);

/// One runtime-observed nesting: `to` was acquired while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedEdge {
    /// The lock already held.
    pub from: &'static str,
    /// The lock acquired under it.
    pub to: &'static str,
    /// Source file of the inner acquisition (the `lock_or_recover` caller).
    pub file: &'static str,
    /// Line of the inner acquisition.
    pub line: u32,
}

impl ObservedEdge {
    /// `file:line` of the acquiring call site.
    pub fn site(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// The global observed-edge set. Deduplicated on `(from, to)`, so its size
/// is bounded by the square of the (small, static) lock-name universe.
/// Guarded by a plain `Mutex` acquired with raw `.lock()` so the witness
/// never re-enters itself.
// lock-order: obs.witness.edges
static WITNESS_EDGES: Mutex<Vec<ObservedEdge>> = Mutex::new(Vec::new());

thread_local! {
    /// Names of the locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Whether the runtime lock witness is recording. Probes the
/// `RE2X_LOCK_WITNESS` environment variable once; afterwards the check is
/// one relaxed atomic load.
pub fn witness_enabled() -> bool {
    match WITNESS_STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = std::env::var("RE2X_LOCK_WITNESS").is_ok_and(|v| v == "1");
            WITNESS_STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns the witness on for the current process regardless of the
/// environment (test harnesses flip it before driving concurrent suites).
pub fn witness_enable_for_tests() {
    WITNESS_STATE.store(1, Ordering::Relaxed);
}

/// Snapshot of every nesting edge observed since start (or the last
/// [`witness_reset`]). Empty when the witness is off.
pub fn witness_edges() -> Vec<ObservedEdge> {
    match WITNESS_EDGES.lock() {
        Ok(edges) => edges.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    }
}

/// Clears the observed-edge set (the held-stacks are per-thread and
/// self-balancing, so they need no reset).
pub fn witness_reset() {
    match WITNESS_EDGES.lock() {
        Ok(mut edges) => edges.clear(),
        Err(poisoned) => poisoned.into_inner().clear(),
    }
}

/// RAII half of the witness: pops the held-stack entry pushed at
/// acquisition. Separate from the guard itself so [`WitnessGuard`] has no
/// `Drop` impl and stays destructurable for the condvar handoff.
struct HeldToken {
    name: &'static str,
    active: bool,
}

impl HeldToken {
    /// Records nesting edges against everything currently held, pushes
    /// `name`, and returns the token that will pop it. Inert (and
    /// allocation-free) when the witness is off.
    #[track_caller]
    fn acquire(name: &'static str) -> HeldToken {
        if !witness_enabled() {
            return HeldToken {
                name,
                active: false,
            };
        }
        let caller = Location::caller();
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            for &from in held.iter() {
                record_edge(ObservedEdge {
                    from,
                    to: name,
                    file: caller.file(),
                    line: caller.line(),
                });
            }
            held.push(name);
        });
        HeldToken { name, active: true }
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // `try_with` so a guard dropped during thread teardown (after the
        // thread-local is destroyed) degrades silently instead of aborting.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|&n| n == self.name) {
                held.remove(at);
            }
        });
    }
}

fn record_edge(edge: ObservedEdge) {
    let mut edges = match WITNESS_EDGES.lock() {
        Ok(edges) => edges,
        Err(poisoned) => poisoned.into_inner(),
    };
    if !edges.iter().any(|e| e.from == edge.from && e.to == edge.to) {
        edges.push(edge);
    }
}

// ---- guards ----------------------------------------------------------------

/// A [`MutexGuard`] paired with its witness token. Dereferences like the
/// plain guard; on drop the token pops the thread's held-stack.
///
/// The type deliberately has no `Drop` impl of its own (only the token
/// does), so [`wait_or_recover`] can destructure it, hand the inner guard
/// to the condvar, and re-wrap the reacquired guard under the same token —
/// a condvar wait releases and reacquires the *same* lock, which is not a
/// new nesting.
pub struct WitnessGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    token: HeldToken,
}

impl<T> std::ops::Deref for WitnessGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for WitnessGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for WitnessGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WitnessGuard")
            .field("name", &self.token.name)
            .field("data", &*self.guard)
            .finish()
    }
}

/// Locks `mutex` under the registry name `name`, recovering the guard if a
/// panicking thread poisoned it. `name` must be the lock's `// lock-order:`
/// registration — `re2x-lint` cross-checks the literal against the registry,
/// and the runtime witness records nesting edges under it.
#[track_caller]
pub fn lock_or_recover<'a, T>(name: &'static str, mutex: &'a Mutex<T>) -> WitnessGuard<'a, T> {
    let token = HeldToken::acquire(name);
    let guard = match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    WitnessGuard { guard, token }
}

/// Blocks on `condvar` releasing `guard`, recovering the reacquired guard
/// if the mutex was poisoned while this thread slept. The witness token
/// rides along: the thread never stops "holding" the lock's place in its
/// acquisition order, and no new edge is recorded on reacquisition.
pub fn wait_or_recover<'a, T>(
    condvar: &Condvar,
    guard: WitnessGuard<'a, T>,
) -> WitnessGuard<'a, T> {
    let WitnessGuard { guard, token } = guard;
    let guard = match condvar.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    WitnessGuard { guard, token }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison<T: Send + 'static>(mutex: &Arc<Mutex<T>>) {
        let m = Arc::clone(mutex);
        let _ = std::thread::spawn(move || {
            let _guard = m.lock().expect("first lock");
            panic!("poison the mutex");
        })
        .join();
        assert!(mutex.is_poisoned(), "panicking holder must poison");
    }

    #[test]
    fn recovers_data_from_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(41));
        poison(&mutex);
        *lock_or_recover("test.poisoned", &mutex) += 1;
        assert_eq!(*lock_or_recover("test.poisoned", &mutex), 42);
    }

    #[test]
    fn unpoisoned_path_is_transparent() {
        let mutex = Mutex::new(String::from("a"));
        lock_or_recover("test.transparent", &mutex).push('b');
        assert_eq!(*lock_or_recover("test.transparent", &mutex), "ab");
    }

    #[test]
    fn wait_recovers_after_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (mutex, condvar) = &*pair;
                let mut ready = lock_or_recover("test.wait", mutex);
                while !*ready {
                    ready = wait_or_recover(condvar, ready);
                }
            })
        };
        {
            let (mutex, condvar) = &*pair;
            // poison while the waiter sleeps…
            let m = Arc::clone(&pair);
            let _ = std::thread::spawn(move || {
                let _guard = m.0.lock().expect("lock");
                panic!("poison while waiter sleeps");
            })
            .join();
            assert!(mutex.is_poisoned());
            // …then flag readiness through the recovered guard
            *lock_or_recover("test.wait", mutex) = true;
            condvar.notify_all();
        }
        waiter.join().expect("waiter survives the poisoned mutex");
    }

    #[test]
    fn witness_records_nesting_and_pops_on_drop() {
        witness_enable_for_tests();
        witness_reset();
        let outer = Mutex::new(1u32);
        let inner = Mutex::new(2u32);
        {
            let _o = lock_or_recover("test.witness.outer", &outer);
            let _i = lock_or_recover("test.witness.inner", &inner);
        }
        // after both guards dropped, a sibling acquisition sees no nesting
        {
            let _i = lock_or_recover("test.witness.inner", &inner);
        }
        let edges = witness_edges();
        let nested: Vec<_> = edges
            .iter()
            .filter(|e| e.from.starts_with("test.witness."))
            .collect();
        assert_eq!(nested.len(), 1, "exactly one observed edge: {edges:?}");
        assert_eq!(nested[0].from, "test.witness.outer");
        assert_eq!(nested[0].to, "test.witness.inner");
        assert!(
            nested[0].file.ends_with("sync.rs"),
            "call site is the acquiring line, got {}",
            nested[0].file
        );
        witness_reset();
        assert!(witness_edges().is_empty());
    }

    #[test]
    fn witness_edges_deduplicate() {
        witness_enable_for_tests();
        witness_reset();
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        for _ in 0..3 {
            let _a = lock_or_recover("test.dedupe.a", &a);
            let _b = lock_or_recover("test.dedupe.b", &b);
        }
        let observed = witness_edges()
            .iter()
            .filter(|e| e.from == "test.dedupe.a")
            .count();
        assert_eq!(observed, 1, "repeat nestings collapse to one edge");
        witness_reset();
    }

    #[test]
    fn wait_does_not_invent_edges() {
        witness_enable_for_tests();
        witness_reset();
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (mutex, condvar) = &*pair;
                let mut ready = lock_or_recover("test.waitedge", mutex);
                while !*ready {
                    ready = wait_or_recover(condvar, ready);
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (mutex, condvar) = &*pair;
            *lock_or_recover("test.waitedge", &pair.0) = true;
            let _ = mutex;
            condvar.notify_all();
        }
        waiter.join().expect("waiter exits");
        assert!(
            !witness_edges()
                .iter()
                .any(|e| e.from == "test.waitedge" || e.to == "test.waitedge"),
            "a condvar wait reacquiring its own lock is not a nesting"
        );
        witness_reset();
    }
}
