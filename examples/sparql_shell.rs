//! A minimal SPARQL shell over the bundled engine — for users who *do*
//! want to write queries, and as a demonstration that RE²xOLAP's output is
//! plain SPARQL anyone can rerun.
//!
//! ```sh
//! # query a generated dataset (eurostat | production | dbpedia | running)
//! cargo run --release --example sparql_shell -- eurostat \
//!   'SELECT ?c (SUM(?v) AS ?total) WHERE {
//!      ?o <http://data.example.org/eurostat/geo> ?c .
//!      ?o <http://data.example.org/eurostat/numApplicants> ?v
//!    } GROUP BY ?c ORDER BY DESC(?total) LIMIT 5'
//!
//! # or load your own Turtle/N-Triples file
//! cargo run --release --example sparql_shell -- ./data.ttl 'SELECT * WHERE { ?s ?p ?o } LIMIT 10'
//! ```

use re2x_rdf::io::{parse_ntriples, parse_turtle};
use re2x_rdf::Graph;
use re2x_sparql::{parse_query, LocalEndpoint, SparqlEndpoint};

fn load(source: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    match source {
        "eurostat" => Ok(std::mem::take(
            &mut re2x_datagen::eurostat::generate(5_000, 42).graph,
        )),
        "production" => Ok(std::mem::take(
            &mut re2x_datagen::production::generate(5_000, 42).graph,
        )),
        "dbpedia" => Ok(std::mem::take(
            &mut re2x_datagen::dbpedia::generate(5_000, 42).graph,
        )),
        "running" => Ok(std::mem::take(&mut re2x_datagen::running::generate().graph)),
        path => {
            let text = std::fs::read_to_string(path)?;
            let mut graph = Graph::new();
            if path.ends_with(".nt") {
                parse_ntriples(&text, &mut graph)?;
            } else {
                parse_turtle(&text, &mut graph)?;
            }
            Ok(graph)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let (Some(source), Some(query_text)) = (args.next(), args.next()) else {
        eprintln!("usage: sparql_shell <eurostat|production|dbpedia|running|FILE> <QUERY>");
        std::process::exit(2);
    };
    let graph = load(&source)?;
    println!("loaded {} triples from '{source}'", graph.len());
    let endpoint = LocalEndpoint::new(graph);
    let query = parse_query(&query_text)?;
    let started = std::time::Instant::now();
    let solutions = endpoint.select(&query)?;
    println!(
        "{} row(s) in {:?}\n\n{}",
        solutions.len(),
        started.elapsed(),
        solutions.to_labeled_table(endpoint.graph())
    );
    Ok(())
}
