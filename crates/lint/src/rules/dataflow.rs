//! Scope-aware dataflow rules built on [`crate::scope`]:
//!
//! * `no-calls-under-lock` — no `SparqlEndpoint` method (`select`, `ask`,
//!   `keyword_search`), bus publish, or `std::io`/`std::fs` call while any
//!   lock guard is live. DESIGN.md §2.3 states this convention (drop the
//!   guard, then call out); this rule makes it checkable.
//! * `guard-across-wait` — no second lock acquisition and no condvar wait
//!   while holding a guard, unless the `held → acquired` pair is a
//!   declared edge in the lock-order registry (`// lock-order: A -> B`).
//! * `discarded-result` — a call to a same-file `Result`-returning
//!   function whose value is thrown away (`let _ = …;` or a bare
//!   statement) in non-test library code.
//!
//! The liveness model is [`crate::scope::GuardTracker`]'s: lexical,
//! intra-function, agreeing with the `lock-order` edge extractor on what
//! "holding" means. Guards the analysis cannot name (an acquisition on an
//! unregistered lock) still count as held for both lock rules.

use super::significant;
use crate::findings::Finding;
use crate::lexer::{Token, TokenKind};
use crate::scope::GuardTracker;
use crate::source::SourceFile;

/// Workspace context the dataflow rules need beyond one file's tokens.
pub struct DataflowContext<'a> {
    /// This file's lock registrations as `(field, name)` pairs.
    pub field_to_name: Vec<(&'a str, &'a str)>,
    /// Workspace-declared nesting edges (`// lock-order: A -> B`).
    pub declared: &'a [(String, String)],
}

/// `SparqlEndpoint` trait methods: a query round-trip under a guard
/// serializes the whole endpoint behind this lock.
const ENDPOINT_METHODS: &[&str] = &["select", "ask", "keyword_search"];
/// Event-bus publication: takes the bus locks, nesting them under ours.
const PUBLISH_METHODS: &[&str] = &["publish", "publish_with"];
/// Blocking I/O methods.
const IO_METHODS: &[&str] = &["write_all", "read_to_string", "flush", "sync_all"];
/// Condvar wait methods (plus the poison-tolerant `wait_or_recover`).
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Runs all three dataflow rules over one file.
pub fn check(file: &SourceFile, ctx: &DataflowContext) -> Vec<Finding> {
    let mut findings = under_lock_scan(file, ctx);
    findings.extend(discarded_results(file));
    findings
}

/// What one acquisition-like site looks like to the scanner.
struct Acquisition {
    /// Resolved registry name, if the site names a registered lock.
    lock: Option<String>,
    /// 1-based line.
    line: u32,
}

/// Single pass driving `no-calls-under-lock` and `guard-across-wait`.
fn under_lock_scan(file: &SourceFile, ctx: &DataflowContext) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    let resolve = |field: &str| -> Option<String> {
        ctx.field_to_name
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, n)| (*n).to_owned())
    };

    let mut tracker = GuardTracker::new();
    let mut findings = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let word = toks[i].text(text);
        match word {
            "{" => tracker.open_brace(),
            "}" => tracker.close_brace(),
            ";" => tracker.end_statement(),
            // drop ( var )
            "drop"
                if toks.get(i + 1).map(|t| t.text(text)) == Some("(")
                    && toks.get(i + 3).map(|t| t.text(text)) == Some(")") =>
            {
                if let Some(var_tok) = toks.get(i + 2) {
                    tracker.release_var(var_tok.text(text));
                }
            }
            _ => {}
        }
        let in_test = file.in_test_region(toks[i].start);

        // Condvar waits (including `wait_or_recover`) consume the waited
        // guard; every *other* live guard is held across the wait.
        if let Some(consumed) = wait_at(&toks, text, i) {
            if !in_test {
                let waited_locks: Vec<Option<String>> = tracker
                    .live()
                    .iter()
                    .filter(|h| {
                        h.var
                            .as_deref()
                            .is_some_and(|v| consumed.iter().any(|c| c == v))
                    })
                    .map(|h| h.lock.clone())
                    .collect();
                for held in tracker.live() {
                    if held
                        .var
                        .as_deref()
                        .is_some_and(|v| consumed.iter().any(|c| c == v))
                    {
                        continue; // the guard being waited on
                    }
                    let exempt = waited_locks
                        .iter()
                        .any(|w| declared_pair(ctx.declared, &held.lock, w));
                    if !exempt {
                        findings.push(finding(
                            file,
                            "guard-across-wait",
                            toks[i].line,
                            format!(
                                "condvar wait while holding `{}` (acquired line {}); \
                                 a waiting thread parks with the lock held",
                                name_of(&held.lock),
                                held.line
                            ),
                        ));
                    }
                }
                // Only a wait that consumed a tracked guard hands one
                // back; a `.wait()` on something else (a process child, a
                // barrier) must not invent a phantom guard.
                if !waited_locks.is_empty() {
                    let lock = waited_locks.into_iter().flatten().next();
                    for var in &consumed {
                        tracker.release_var(var);
                    }
                    tracker.acquire(lock, binding_var(&toks, text, i), toks[i].line);
                }
            }
            i += 1;
            continue;
        }

        if let Some(acq) = acquisition_at(&toks, text, i, &resolve) {
            if !in_test {
                for held in tracker.live() {
                    if !declared_pair(ctx.declared, &held.lock, &acq.lock) {
                        findings.push(finding(
                            file,
                            "guard-across-wait",
                            acq.line,
                            format!(
                                "lock `{}` acquired while holding `{}` (acquired line {}); \
                                 declare `// lock-order: {} -> {}` if this nesting is intended",
                                name_of(&acq.lock),
                                name_of(&held.lock),
                                held.line,
                                name_of(&held.lock),
                                name_of(&acq.lock),
                            ),
                        ));
                    }
                }
                tracker.acquire(acq.lock, binding_var(&toks, text, i), acq.line);
            }
            i += 1;
            continue;
        }

        if tracker.any_live() && !in_test {
            if let Some(method) = denied_method_at(&toks, text, i) {
                let held = tracker.live().last().map(|h| name_of(&h.lock).to_owned());
                findings.push(finding(
                    file,
                    "no-calls-under-lock",
                    toks[i].line,
                    format!(
                        "`.{method}(…)` called while holding `{}`; drop the guard before \
                         calling out (endpoint/publish/io under a lock serializes the workspace)",
                        held.as_deref().unwrap_or("<unnamed>")
                    ),
                ));
            } else if std_io_path_at(&toks, text, i) {
                let held = tracker.live().last().map(|h| name_of(&h.lock).to_owned());
                findings.push(finding(
                    file,
                    "no-calls-under-lock",
                    toks[i].line,
                    format!(
                        "`std::{}` used while holding `{}`; do I/O outside the critical section",
                        toks[i + 3].text(text),
                        held.as_deref().unwrap_or("<unnamed>")
                    ),
                ));
            }
        }
        i += 1;
    }
    findings
}

fn name_of(lock: &Option<String>) -> &str {
    lock.as_deref().unwrap_or("<unregistered>")
}

fn finding(file: &SourceFile, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        file: file.path.clone(),
        line,
        snippet: file.line_snippet(line),
        message,
    }
}

fn declared_pair(
    declared: &[(String, String)],
    from: &Option<String>,
    to: &Option<String>,
) -> bool {
    match (from, to) {
        (Some(f), Some(t)) => declared.iter().any(|(df, dt)| df == f && dt == t),
        _ => false,
    }
}

/// If token `i` starts a condvar wait, returns the identifier arguments
/// (the guard variables moved into the call).
fn wait_at(toks: &[Token], text: &str, i: usize) -> Option<Vec<String>> {
    let word = toks[i].text(text);
    let is_helper = word == "wait_or_recover";
    let is_method = WAIT_METHODS.contains(&word) && i >= 1 && toks[i - 1].text(text) == ".";
    if !is_helper && !is_method {
        return None;
    }
    if toks.get(i + 1).map(|t| t.text(text)) != Some("(") {
        return None;
    }
    let close = matching_paren(toks, text, i + 1)?;
    let args: Vec<String> = toks[i + 2..close]
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(text).to_owned())
        .collect();
    Some(args)
}

/// If token `i` starts a lock acquisition, describes it. Recognized:
/// `lock_or_recover("name", &…field)` (name literal preferred, field
/// fallback) and `.lock()`/`.read()`/`.write()` on a registered field.
fn acquisition_at(
    toks: &[Token],
    text: &str,
    i: usize,
    resolve: &dyn Fn(&str) -> Option<String>,
) -> Option<Acquisition> {
    let word = toks[i].text(text);
    if word == "lock_or_recover" && toks.get(i + 1).map(|t| t.text(text)) == Some("(") {
        let close = matching_paren(toks, text, i + 1)?;
        // prefer the name literal the witness will use at runtime
        let lock = match toks.get(i + 2) {
            Some(t) if t.kind == TokenKind::Str => Some(t.text(text).trim_matches('"').to_owned()),
            _ => toks[i + 2..close]
                .iter()
                .rev()
                .find(|t| t.kind == TokenKind::Ident)
                .and_then(|t| resolve(t.text(text))),
        };
        return Some(Acquisition {
            lock,
            line: toks[i].line,
        });
    }
    if matches!(word, "lock" | "read" | "write")
        && i >= 2
        && toks[i - 1].text(text) == "."
        && toks[i - 2].kind == TokenKind::Ident
        && toks.get(i + 1).map(|t| t.text(text)) == Some("(")
    {
        // only registered fields: plain `.read()`/`.write()` are also I/O
        // method names, so an unresolved receiver is not an acquisition
        let lock = resolve(toks[i - 2].text(text))?;
        return Some(Acquisition {
            lock: Some(lock),
            line: toks[i].line,
        });
    }
    None
}

/// A denied method call at token `i`: `. name (` with `name` on one of
/// the deny lists.
fn denied_method_at<'s>(toks: &[Token], text: &'s str, i: usize) -> Option<&'s str> {
    let word = toks[i].text(text);
    let denied = ENDPOINT_METHODS.contains(&word)
        || PUBLISH_METHODS.contains(&word)
        || IO_METHODS.contains(&word);
    if denied
        && i >= 1
        && toks[i - 1].text(text) == "."
        && toks.get(i + 1).map(|t| t.text(text)) == Some("(")
    {
        return Some(word);
    }
    None
}

/// `std :: io` / `std :: fs` path reference starting at token `i`.
fn std_io_path_at(toks: &[Token], text: &str, i: usize) -> bool {
    toks[i].text(text) == "std"
        && toks.get(i + 1).map(|t| t.text(text)) == Some(":")
        && toks.get(i + 2).map(|t| t.text(text)) == Some(":")
        && toks
            .get(i + 3)
            .map(|t| matches!(t.text(text), "io" | "fs"))
            .unwrap_or(false)
}

/// The variable receiving the expression containing token `i`:
/// `let [mut] var = …` or a plain rebind `var = …` at statement start.
fn binding_var(toks: &[Token], text: &str, i: usize) -> Option<String> {
    // rebind: `; var = wait_or_recover(…)`
    if i >= 2
        && toks[i - 1].text(text) == "="
        && toks[i - 2].kind == TokenKind::Ident
        && (i < 3 || matches!(toks[i - 3].text(text), ";" | "{" | "}"))
    {
        return Some(toks[i - 2].text(text).to_owned());
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text(text) {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut k = j + 1;
                if toks.get(k).map(|t| t.text(text)) == Some("mut") {
                    k += 1;
                }
                let var = toks.get(k)?;
                if var.kind == TokenKind::Ident
                    && toks.get(k + 1).map(|t| t.text(text)) == Some("=")
                {
                    return Some(var.text(text).to_owned());
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], text: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text(text) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

// ---- discarded-result --------------------------------------------------

/// Flags discarded `Result`s from same-file functions: `let _ = f(…);`
/// and bare `f(…);` statements where `f` is declared in this file with a
/// `-> Result<…>` return type.
fn discarded_results(file: &SourceFile) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    let fns = result_fns(&toks, text);
    if fns.is_empty() {
        return Vec::new();
    }

    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let word = toks[i].text(text);
        if !fns.iter().any(|f| f == word) {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text(text)) != Some("(") {
            continue;
        }
        if i >= 1 && toks[i - 1].text(text) == "fn" {
            continue; // the declaration itself
        }
        if file.in_test_region(toks[i].start) {
            continue;
        }
        let Some(close) = matching_paren(&toks, text, i + 1) else {
            continue;
        };
        if toks.get(close + 1).map(|t| t.text(text)) != Some(";") {
            continue; // chained, propagated (`?`), or otherwise consumed
        }
        // Walk back to the statement start and classify the receiver.
        let mut back: Vec<&Token> = Vec::new();
        let mut j = i;
        while j > 0 {
            j -= 1;
            if matches!(toks[j].text(text), ";" | "{" | "}") {
                break;
            }
            back.push(&toks[j]);
        }
        // strip the receiver chain (`self . inner .` …), nearest first;
        // keywords lex as Ident but mean the value is consumed
        // (`return f(…);`, `match f(…) …`), so they disqualify
        const CONSUMING_KEYWORDS: &[&str] = &[
            "return", "break", "match", "if", "while", "for", "loop", "else", "in", "yield",
        ];
        let mut idx = 0;
        let mut consumed_by_keyword = false;
        while idx < back.len() {
            let t = back[idx];
            let w = t.text(text);
            if CONSUMING_KEYWORDS.contains(&w) {
                consumed_by_keyword = true;
                break;
            }
            if t.kind == TokenKind::Ident || matches!(w, "." | "&" | "*") {
                idx += 1;
            } else {
                break;
            }
        }
        if consumed_by_keyword {
            continue;
        }
        let rest = &back[idx..];
        let discarded = rest.is_empty()
            || (rest.len() == 3
                && rest[0].text(text) == "="
                && rest[1].text(text) == "_"
                && rest[2].text(text) == "let");
        if discarded {
            findings.push(finding(
                file,
                "discarded-result",
                toks[i].line,
                format!(
                    "result of `{word}(…)` is discarded; handle the error or propagate \
                     it with `?` (`let _ =` hides a failure)"
                ),
            ));
        }
    }
    findings
}

/// Names of functions declared in this file with a `Result` return type.
fn result_fns(toks: &[Token], text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text(text) != "fn" || toks[i + 1].kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text(text);
        // optional generics between the name and the parameter list
        let mut j = i + 2;
        if toks.get(j).map(|t| t.text(text)) == Some("<") {
            let mut depth = 0usize;
            while let Some(t) = toks.get(j) {
                match t.text(text) {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if toks.get(j).map(|t| t.text(text)) != Some("(") {
            i += 1;
            continue;
        }
        let Some(close) = matching_paren(toks, text, j) else {
            i += 1;
            continue;
        };
        // `-> … Result … {` (stop at the body or a `where` clause body)
        let mut k = close + 1;
        let mut is_result = false;
        if toks.get(k).map(|t| t.text(text)) == Some("-")
            && toks.get(k + 1).map(|t| t.text(text)) == Some(">")
        {
            k += 2;
            while let Some(t) = toks.get(k) {
                match t.text(text) {
                    "{" | ";" => break,
                    "Result" => {
                        is_result = true;
                        break;
                    }
                    _ => k += 1,
                }
            }
        }
        if is_result {
            out.push(name.to_owned());
        }
        i = close + 1;
    }
    out
}
