//! Structured findings and their text/JSON renderings.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`panic-freedom`, `lock-order`, …).
    pub rule: &'static str,
    /// Workspace-relative path (`crates/core/src/matching.rs`).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Human explanation of why this is a violation.
    pub message: String,
}

impl Finding {
    /// The baseline key: rule, file, and normalized snippet — deliberately
    /// line-number-free so unrelated edits above a baselined site don't
    /// invalidate the baseline.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.file, self.snippet)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one finding as a JSON object.
pub fn finding_to_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"message\":\"{}\"}}",
        json_escape(f.rule),
        json_escape(&f.file),
        f.line,
        json_escape(&f.snippet),
        json_escape(&f.message)
    )
}

/// Renders one finding as `file:line [rule] message` plus the snippet.
pub fn finding_to_text(f: &Finding) -> String {
    format!(
        "{}:{} [{}] {}\n    {}",
        f.file, f.line, f.rule, f.message, f.snippet
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            rule: "panic-freedom",
            file: "crates/x/src/lib.rs".to_owned(),
            line: 3,
            snippet: "let x = y.unwrap();".to_owned(),
            message: "`.unwrap()` in library code".to_owned(),
        }
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_object_shape() {
        let j = finding_to_json(&sample());
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rule\":\"panic-freedom\""));
        assert!(j.contains("\"line\":3"));
    }

    #[test]
    fn baseline_key_has_no_line() {
        let mut f = sample();
        let k1 = f.baseline_key();
        f.line = 99;
        assert_eq!(f.baseline_key(), k1);
    }
}
