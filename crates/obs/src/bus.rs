//! The streaming event bus: bounded, poison-tolerant fan-out of trace
//! events and metric deltas to live subscribers.
//!
//! ## Overhead contract
//!
//! The bus is designed to sit directly on the hot path of the tracer and
//! the metrics registry, so its idle cost must be indistinguishable from
//! zero:
//!
//! * **Allocation-free when nobody listens.** Producers publish through
//!   [`EventBus::publish_with`], which checks the atomic subscriber count
//!   *before* invoking the event-building closure — with zero subscribers
//!   the closure (and any clone/allocation inside it) never runs. The
//!   counting-allocator bench `crates/bench/benches/obs_overhead.rs` pins
//!   this.
//! * **Never blocks a producer.** Each subscriber owns a bounded ring;
//!   when the ring is full the *oldest* event is dropped and the
//!   subscriber's `dropped_events` counter is incremented. Producers never
//!   wait for consumers — overflow is counted, not awaited.
//! * **Poison-tolerant.** All locking goes through
//!   [`lock_or_recover`](crate::sync::lock_or_recover); a subscriber that
//!   panics mid-poll cannot poison the tracer.
//!
//! ## Timebase
//!
//! Metric deltas are stamped with an offset from the bus epoch (shared
//! with the owning tracer's epoch, see [`EventBus::epoch`]) so that a
//! replayed event log needs no wall-clock access to reconstruct relative
//! time.

// lint:allow-file(no-wallclock, the bus stamps metric deltas against its epoch — it is part of the timing layer)

use crate::sync::lock_or_recover;
use crate::tracer::TraceEvent;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Ring capacity used by the convenience `subscribe()` methods.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 8192;

/// One event on the bus: a trace event, or a metric delta. All timestamps
/// are offsets from the bus epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum BusEvent {
    /// A span/query/cache trace event (carries its own `at` offset).
    Trace(TraceEvent),
    /// A counter was incremented by `delta`.
    Counter {
        /// Metric name (possibly labeled, `serve.rounds{tenant="t0"}`).
        name: String,
        /// Amount added.
        delta: u64,
        /// Offset from the bus epoch.
        at: Duration,
    },
    /// A gauge changed; `value` is the absolute post-update value.
    Gauge {
        /// Metric name.
        name: String,
        /// Absolute value after the update.
        value: f64,
        /// Offset from the bus epoch.
        at: Duration,
    },
    /// A histogram recorded one observation.
    Observe {
        /// Metric name.
        name: String,
        /// The observed latency.
        latency: Duration,
        /// Offset from the bus epoch.
        at: Duration,
    },
}

impl BusEvent {
    /// The event's offset from the bus epoch (trace events carry their
    /// own offset from the tracer epoch, which the bus shares).
    pub fn at(&self) -> Duration {
        match self {
            BusEvent::Trace(e) => match e {
                TraceEvent::Enter { at, .. }
                | TraceEvent::Exit { at, .. }
                | TraceEvent::Query { at, .. }
                | TraceEvent::Cache { at, .. } => *at,
            },
            BusEvent::Counter { at, .. }
            | BusEvent::Gauge { at, .. }
            | BusEvent::Observe { at, .. } => *at,
        }
    }
}

struct SubscriberInner {
    closed: AtomicBool,
    dropped: AtomicU64,
    capacity: usize,
    // lock-order: obs.bus.ring
    ring: Mutex<VecDeque<BusEvent>>,
}

struct BusCore {
    epoch: Instant,
    /// Number of live (not yet dropped) subscribers. Checked with a
    /// single relaxed load on every publish — the zero-subscriber fast
    /// path touches nothing else.
    active: AtomicUsize,
    // lock-order: obs.bus.subscribers
    subscribers: Mutex<Vec<Arc<SubscriberInner>>>,
}

// The fan-out path pushes into each subscriber ring while walking the
// subscriber list, so this nesting is the one intended edge in the
// workspace lock graph. The runtime witness (RE2X_LOCK_WITNESS=1)
// validates that threads only ever nest in this declared order.
// lock-order: obs.bus.subscribers -> obs.bus.ring

/// The fan-out bus. Cheap to clone (clones share one core); the
/// `Default` bus has no subscribers and costs one atomic load per
/// publish.
#[derive(Clone)]
pub struct EventBus {
    core: Arc<BusCore>,
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::new()
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}

impl EventBus {
    /// A bus with no subscribers; its epoch is the construction instant.
    pub fn new() -> EventBus {
        EventBus {
            core: Arc::new(BusCore {
                epoch: Instant::now(),
                active: AtomicUsize::new(0),
                subscribers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The bus construction instant — all metric deltas are stamped as
    /// offsets from it. Tracers share their epoch with their bus so trace
    /// events and metric deltas live on one timebase.
    pub fn epoch(&self) -> Instant {
        self.core.epoch
    }

    /// Offset of "now" from the bus epoch.
    pub fn now(&self) -> Duration {
        Instant::now().saturating_duration_since(self.core.epoch)
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.core.active.load(Ordering::Acquire)
    }

    /// Registers a new subscriber with a ring of `capacity` events
    /// (clamped to at least 1). The ring is allocated once, up front;
    /// overflow drops the oldest event and bumps the stream's
    /// [`EventStream::dropped_events`] counter.
    pub fn subscribe(&self, capacity: usize) -> EventStream {
        let capacity = capacity.max(1);
        let sub = Arc::new(SubscriberInner {
            closed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        });
        {
            let mut subs = lock_or_recover("obs.bus.subscribers", &self.core.subscribers);
            subs.push(Arc::clone(&sub));
        }
        self.core.active.fetch_add(1, Ordering::AcqRel);
        EventStream {
            bus: Some(self.clone()),
            sub: Some(sub),
        }
    }

    /// Publishes a pre-built event to every subscriber. With zero
    /// subscribers this is one atomic load — no lock, no clone.
    pub fn publish(&self, event: &BusEvent) {
        if self.core.active.load(Ordering::Acquire) == 0 {
            return;
        }
        self.fan_out(event);
    }

    /// Publishes the event built by `make` — invoked only when at least
    /// one subscriber is attached, so the zero-subscriber path never
    /// allocates. `make` receives the current offset from the bus epoch
    /// for stamping metric deltas.
    pub fn publish_with(&self, make: impl FnOnce(Duration) -> BusEvent) {
        if self.core.active.load(Ordering::Acquire) == 0 {
            return;
        }
        let event = make(self.now());
        self.fan_out(&event);
    }

    fn fan_out(&self, event: &BusEvent) {
        let mut subs = lock_or_recover("obs.bus.subscribers", &self.core.subscribers);
        // Closed streams unregister lazily: pruned here, on the next
        // publish after their drop.
        subs.retain(|s| !s.closed.load(Ordering::Acquire));
        for sub in subs.iter() {
            let mut ring = lock_or_recover("obs.bus.ring", &sub.ring);
            if ring.len() >= sub.capacity {
                ring.pop_front();
                sub.dropped.fetch_add(1, Ordering::AcqRel);
            }
            ring.push_back(event.clone());
        }
    }
}

/// A subscription to an [`EventBus`], created by [`EventBus::subscribe`].
/// Dropping the stream unsubscribes. The inert variant (from a disabled
/// tracer) yields nothing and counts nothing.
#[must_use = "dropping the stream immediately unsubscribes"]
pub struct EventStream {
    bus: Option<EventBus>,
    sub: Option<Arc<SubscriberInner>>,
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("live", &self.is_live())
            .field("dropped_events", &self.dropped_events())
            .finish()
    }
}

impl EventStream {
    /// A stream attached to nothing: polls are empty, drops are zero.
    /// Returned by `subscribe` on disabled tracers so call sites need no
    /// special casing.
    pub fn inert() -> EventStream {
        EventStream {
            bus: None,
            sub: None,
        }
    }

    /// Whether this stream is attached to a live bus.
    pub fn is_live(&self) -> bool {
        self.sub.is_some()
    }

    /// Drains every buffered event, in arrival order. Non-blocking; an
    /// empty vec means nothing was published since the last poll.
    pub fn poll(&self) -> Vec<BusEvent> {
        match &self.sub {
            Some(sub) => lock_or_recover("obs.bus.ring", &sub.ring)
                .drain(..)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Total events dropped on this subscription because its ring was
    /// full when a producer published.
    pub fn dropped_events(&self) -> u64 {
        match &self.sub {
            Some(sub) => sub.dropped.load(Ordering::Acquire),
            None => 0,
        }
    }

    /// The ring capacity this stream was subscribed with (0 when inert).
    pub fn capacity(&self) -> usize {
        match &self.sub {
            Some(sub) => sub.capacity,
            None => 0,
        }
    }
}

impl Drop for EventStream {
    fn drop(&mut self) {
        if let (Some(bus), Some(sub)) = (&self.bus, &self.sub) {
            sub.closed.store(true, Ordering::Release);
            bus.core.active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, delta: u64, at_us: u64) -> BusEvent {
        BusEvent::Counter {
            name: name.to_owned(),
            delta,
            at: Duration::from_micros(at_us),
        }
    }

    #[test]
    fn publish_fans_out_to_every_subscriber() {
        let bus = EventBus::new();
        let a = bus.subscribe(16);
        let b = bus.subscribe(16);
        bus.publish(&counter("c", 1, 5));
        bus.publish_with(|at| BusEvent::Gauge {
            name: "g".to_owned(),
            value: 2.0,
            at,
        });
        let got_a = a.poll();
        let got_b = b.poll();
        assert_eq!(got_a.len(), 2);
        assert_eq!(got_a.len(), got_b.len());
        assert_eq!(got_a[0], counter("c", 1, 5));
        assert!(matches!(got_a[1], BusEvent::Gauge { .. }));
        assert_eq!(a.poll().len(), 0, "poll drains");
    }

    #[test]
    fn overflow_drops_oldest_and_counts_exactly() {
        let bus = EventBus::new();
        let stream = bus.subscribe(4);
        for i in 0..10 {
            bus.publish(&counter("c", i, i));
        }
        assert_eq!(stream.dropped_events(), 6, "10 published into capacity 4");
        let got = stream.poll();
        assert_eq!(got.len(), 4);
        // the oldest events were evicted; the newest four survive in order
        let deltas: Vec<u64> = got
            .iter()
            .map(|e| match e {
                BusEvent::Counter { delta, .. } => *delta,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(deltas, vec![6, 7, 8, 9]);
    }

    #[test]
    fn zero_subscriber_publish_skips_the_closure() {
        let bus = EventBus::new();
        let invoked = std::cell::Cell::new(false);
        bus.publish_with(|at| {
            invoked.set(true);
            counter("c", 1, at.as_micros() as u64)
        });
        assert!(!invoked.get(), "no subscriber: event never built");
        {
            let _stream = bus.subscribe(4);
            bus.publish_with(|at| {
                invoked.set(true);
                counter("c", 1, at.as_micros() as u64)
            });
            assert!(invoked.get(), "subscriber attached: event built");
        }
        // stream dropped: back to the fast path
        invoked.set(false);
        bus.publish_with(|at| {
            invoked.set(true);
            counter("c", 1, at.as_micros() as u64)
        });
        assert!(!invoked.get());
    }

    #[test]
    fn dropped_stream_stops_receiving_and_unregisters() {
        let bus = EventBus::new();
        let a = bus.subscribe(8);
        let b = bus.subscribe(8);
        assert_eq!(bus.subscriber_count(), 2);
        drop(a);
        assert_eq!(bus.subscriber_count(), 1);
        bus.publish(&counter("c", 1, 0));
        assert_eq!(b.poll().len(), 1);
    }

    #[test]
    fn inert_stream_is_silent() {
        let stream = EventStream::inert();
        assert!(!stream.is_live());
        assert!(stream.poll().is_empty());
        assert_eq!(stream.dropped_events(), 0);
        assert_eq!(stream.capacity(), 0);
    }

    #[test]
    fn concurrent_producers_never_block_and_lose_nothing_under_capacity() {
        let bus = EventBus::new();
        let stream = bus.subscribe(4096);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let bus = bus.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        bus.publish(&counter("c", (t * 100 + i) as u64, 0));
                    }
                });
            }
        });
        assert_eq!(stream.poll().len(), 400);
        assert_eq!(stream.dropped_events(), 0);
    }
}
