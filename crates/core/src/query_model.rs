//! The annotated OLAP query that flows through synthesis and refinement.
//!
//! A plain SPARQL [`Query`] is not enough for the interactive loop: the
//! refinement operators need to know which projected column belongs to
//! which hierarchy level, which columns are aggregated measures, and which
//! members the user's example was mapped to. [`OlapQuery`] carries that
//! metadata alongside the executable query.

use re2x_cube::{LevelId, MeasureId, VirtualSchemaGraph};
use re2x_rdf::Graph;
use re2x_sparql::{query_to_sparql, AggFunc, Query, Solutions, Value};

/// A projected grouping column bound to a hierarchy level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupColumn {
    /// The SPARQL variable (and output column) name.
    pub var: String,
    /// The level whose members this column ranges over.
    pub level: LevelId,
}

/// A projected aggregate column over a measure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureColumn {
    /// The output column name.
    pub alias: String,
    /// The aggregated measure.
    pub measure: MeasureId,
    /// The aggregation function.
    pub agg: AggFunc,
}

/// One component of the user example resolved to a dimension member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExampleBinding {
    /// The literal the user typed (e.g. `"Germany"`).
    pub keyword: String,
    /// The IRI of the matched dimension member.
    pub member_iri: String,
    /// Human-readable label of the member.
    pub label: String,
    /// The level the member was matched at.
    pub level: LevelId,
}

/// An analytical query annotated with its multidimensional interpretation.
#[derive(Debug, Clone, PartialEq)]
pub struct OlapQuery {
    /// The executable SPARQL query.
    pub query: Query,
    /// Grouping columns, in projection order.
    pub group_columns: Vec<GroupColumn>,
    /// Aggregate columns, in projection order.
    pub measure_columns: Vec<MeasureColumn>,
    /// The example this query was synthesized from: one inner vector per
    /// example tuple, with one binding per tuple component.
    pub example: Vec<Vec<ExampleBinding>>,
    /// Natural-language description presented to the user.
    pub description: String,
}

impl OlapQuery {
    /// The query as SPARQL text.
    pub fn sparql(&self) -> String {
        query_to_sparql(&self.query)
    }

    /// The grouping column bound to `level`, if any.
    pub fn column_for_level(&self, level: LevelId) -> Option<&GroupColumn> {
        self.group_columns.iter().find(|c| c.level == level)
    }

    /// `true` if `level` already appears as a grouping column.
    pub fn groups_level(&self, level: LevelId) -> bool {
        self.column_for_level(level).is_some()
    }

    /// All example bindings across tuples, flattened.
    pub fn bindings(&self) -> impl Iterator<Item = &ExampleBinding> {
        self.example.iter().flatten()
    }

    /// The example projected onto the current grouping columns: one
    /// constraint set per example tuple, each a list of
    /// `(column index, member IRI)` pairs that must all hold for a result
    /// row to match that tuple. Bindings whose level is not projected are
    /// skipped; tuples with no projected binding impose no constraint and
    /// are dropped.
    pub fn example_constraints(&self, solutions: &Solutions) -> Vec<Vec<(usize, String)>> {
        let mut out = Vec::new();
        for tuple in &self.example {
            let mut constraints = Vec::new();
            for binding in tuple {
                let Some(col) = self.column_for_level(binding.level) else {
                    continue;
                };
                let Some(idx) = solutions.column(&col.var) else {
                    continue;
                };
                constraints.push((idx, binding.member_iri.clone()));
            }
            if !constraints.is_empty() {
                out.push(constraints);
            }
        }
        out
    }

    /// `true` if `row` of `solutions` matches the user example: for some
    /// constraint tuple, every constrained column holds the example member.
    pub fn row_matches_example(&self, solutions: &Solutions, row: usize, graph: &Graph) -> bool {
        let constraint_sets = self.example_constraints(solutions);
        if constraint_sets.is_empty() {
            // no example column survives in this query: every row trivially
            // relates to the example (paper: refinements must keep *some*
            // tuple about the example; with no shared column the example
            // imposes no restriction)
            return true;
        }
        constraint_sets.iter().any(|constraints| {
            constraints.iter().all(|(col, member_iri)| {
                match solutions.rows[row].get(*col).and_then(Option::as_ref) {
                    Some(Value::Term(id)) => graph.term(*id).as_iri() == Some(member_iri.as_str()),
                    _ => false,
                }
            })
        })
    }

    /// Indexes of the rows matching the example.
    pub fn matching_rows(&self, solutions: &Solutions, graph: &Graph) -> Vec<usize> {
        (0..solutions.len())
            .filter(|&r| self.row_matches_example(solutions, r, graph))
            .collect()
    }

    /// Human-readable display of a grouping column.
    pub fn level_display(schema: &VirtualSchemaGraph, level: LevelId) -> String {
        let node = schema.level(level);
        let dim = schema.dimension(node.dimension);
        if node.depth() == 1 {
            dim.label.clone()
        } else {
            format!("{} / {}", dim.label, node.label)
        }
    }
}

/// Derives a SPARQL variable name for a level from its path local names:
/// `[origin, inContinent]` → `origin_in_continent`. Paths are unique per
/// schema, so names are too.
pub fn level_var_name(schema: &VirtualSchemaGraph, level: LevelId) -> String {
    let node = schema.level(level);
    node.path
        .iter()
        .map(|p| snake(re2x_cube::labels::local_name(p)))
        .collect::<Vec<_>>()
        .join("_")
}

/// Column alias for an aggregate over a measure: `sum_applicants`.
pub fn measure_alias(schema: &VirtualSchemaGraph, measure: MeasureId, agg: AggFunc) -> String {
    let pred = &schema.measure(measure).predicate;
    format!(
        "{}_{}",
        agg.keyword().to_ascii_lowercase(),
        snake(re2x_cube::labels::local_name(pred))
    )
}

/// The WHERE-clause variable holding raw values of a measure (`?m0`,
/// `?m1`, …), as emitted by `GetQuery` and referenced by `HAVING`
/// refinements.
pub fn measure_value_var(measure: MeasureId) -> String {
    format!("m{}", measure.index())
}

/// Lowercase ASCII snake-case of an identifier-ish string.
pub fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut prev_lower = false;
    for c in name.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower {
                out.push('_');
            }
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
            out.extend(c.to_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
            prev_lower = false;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case_conversion() {
        assert_eq!(snake("inContinent"), "in_continent");
        assert_eq!(snake("Country_Origin"), "country_origin");
        assert_eq!(snake("refPeriod"), "ref_period");
        assert_eq!(snake("has label "), "has_label");
        assert_eq!(snake("AGE"), "age");
    }

    fn schema() -> (VirtualSchemaGraph, LevelId, LevelId, MeasureId) {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        let origin = v.add_dimension("http://ex/origin", "Country of Origin");
        let m = v.add_measure("http://ex/numApplicants", "Num Applicants");
        let country = v.add_level(
            origin,
            vec!["http://ex/origin".into()],
            5,
            vec![],
            "Country",
        );
        let continent = v.add_level(
            origin,
            vec!["http://ex/origin".into(), "http://ex/inContinent".into()],
            2,
            vec![],
            "Continent",
        );
        (v, country, continent, m)
    }

    #[test]
    fn var_and_alias_naming() {
        let (v, country, continent, m) = schema();
        assert_eq!(level_var_name(&v, country), "origin");
        assert_eq!(level_var_name(&v, continent), "origin_in_continent");
        assert_eq!(measure_alias(&v, m, AggFunc::Sum), "sum_num_applicants");
        assert_eq!(measure_alias(&v, m, AggFunc::Avg), "avg_num_applicants");
    }

    #[test]
    fn level_display_includes_hierarchy_step() {
        let (v, country, continent, _) = schema();
        assert_eq!(OlapQuery::level_display(&v, country), "Country of Origin");
        assert_eq!(
            OlapQuery::level_display(&v, continent),
            "Country of Origin / Continent"
        );
    }

    #[test]
    fn example_matching_against_solutions() {
        let (v, country, _, _) = schema();
        let mut graph = Graph::new();
        let germany = graph.intern_iri("http://ex/Germany");
        let france = graph.intern_iri("http://ex/France");
        let solutions = Solutions {
            vars: vec!["origin".into(), "sum_num_applicants".into()],
            rows: vec![
                vec![Some(Value::Term(germany)), Some(Value::Number(10.0))],
                vec![Some(Value::Term(france)), Some(Value::Number(5.0))],
            ],
        };
        let q = OlapQuery {
            query: Query::select_all(vec![]),
            group_columns: vec![GroupColumn {
                var: "origin".into(),
                level: country,
            }],
            measure_columns: vec![],
            example: vec![vec![ExampleBinding {
                keyword: "Germany".into(),
                member_iri: "http://ex/Germany".into(),
                label: "Germany".into(),
                level: country,
            }]],
            description: String::new(),
        };
        assert!(q.row_matches_example(&solutions, 0, &graph));
        assert!(!q.row_matches_example(&solutions, 1, &graph));
        assert_eq!(q.matching_rows(&solutions, &graph), vec![0]);
        let _ = v;
    }

    #[test]
    fn example_without_projected_column_matches_everything() {
        let (_, country, continent, _) = schema();
        let graph = Graph::new();
        let solutions = Solutions {
            vars: vec!["origin_in_continent".into()],
            rows: vec![vec![None]],
        };
        let q = OlapQuery {
            query: Query::select_all(vec![]),
            group_columns: vec![GroupColumn {
                var: "origin_in_continent".into(),
                level: continent,
            }],
            measure_columns: vec![],
            example: vec![vec![ExampleBinding {
                keyword: "Germany".into(),
                member_iri: "http://ex/Germany".into(),
                label: "Germany".into(),
                level: country,
            }]],
            description: String::new(),
        };
        assert!(q.row_matches_example(&solutions, 0, &graph));
    }
}
