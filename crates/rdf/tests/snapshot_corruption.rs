//! Fire tests for snapshot loading: truncated files, foreign magic, wrong
//! versions, flipped bytes and stale keys must every one surface as a typed
//! [`RdfError`] — never a panic, never a silently short graph.

use re2x_rdf::{peek_snapshot_key, Graph, Literal, RdfError, Term, SNAPSHOT_VERSION};
use re2x_testkit::check;

fn sample_graph() -> Graph {
    let mut g = Graph::new();
    for i in 0..20 {
        g.insert(
            Term::iri(format!("http://ex/s{i}")),
            Term::iri(format!("http://ex/p{}", i % 3)),
            Term::from(Literal::simple(format!("value {i}"))),
        );
    }
    g
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("re2x-corrupt-{}-{name}.snap", std::process::id()))
}

fn write_sample(name: &str) -> (std::path::PathBuf, Vec<u8>) {
    let path = tmp_path(name);
    sample_graph()
        .write_snapshot(&path, "fixture/key")
        .expect("write");
    let bytes = std::fs::read(&path).expect("read back");
    (path, bytes)
}

#[test]
fn clean_snapshot_loads_and_peeks() {
    let (path, _) = write_sample("clean");
    assert_eq!(peek_snapshot_key(&path).expect("peek"), "fixture/key");
    let loaded = Graph::load_snapshot(&path, Some("fixture/key")).expect("load");
    assert_eq!(loaded.len(), sample_graph().len());
    // loading without a key expectation also works
    assert!(Graph::load_snapshot(&path, None).is_ok());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_is_io_error() {
    let err = Graph::load_snapshot(std::path::Path::new("/nonexistent/no.snap"), None)
        .expect_err("must fail");
    assert!(matches!(err, RdfError::Io(_)));
}

#[test]
fn bad_magic_is_rejected() {
    let (path, mut bytes) = write_sample("magic");
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).expect("rewrite");
    assert!(matches!(
        Graph::load_snapshot(&path, None),
        Err(RdfError::SnapshotBadMagic)
    ));
    assert!(matches!(
        peek_snapshot_key(&path),
        Err(RdfError::SnapshotBadMagic)
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn wrong_version_is_rejected_with_both_versions_reported() {
    let (path, mut bytes) = write_sample("version");
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 7).to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite");
    match Graph::load_snapshot(&path, None) {
        Err(RdfError::SnapshotVersion { found, supported }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 7);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("expected SnapshotVersion, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_key_is_rejected_not_trusted() {
    let (path, _) = write_sample("stale");
    match Graph::load_snapshot(&path, Some("fixture/other-key")) {
        Err(RdfError::SnapshotKeyMismatch { expected, found }) => {
            assert_eq!(expected, "fixture/other-key");
            assert_eq!(found, "fixture/key");
        }
        other => panic!("expected SnapshotKeyMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// Truncating the file at *every* possible length yields a typed error
/// (or, for prefixes that still contain whole valid sections, never a
/// wrong graph — the section framing makes short files detectable).
#[test]
fn every_truncation_is_a_typed_error() {
    let (path, bytes) = write_sample("trunc");
    for len in 0..bytes.len() {
        std::fs::write(&path, &bytes[..len]).expect("rewrite");
        let err = Graph::load_snapshot(&path, Some("fixture/key"))
            .expect_err("truncated file must not load");
        assert!(
            matches!(
                err,
                RdfError::SnapshotTruncated { .. }
                    | RdfError::SnapshotBadMagic
                    | RdfError::SnapshotChecksum { .. }
                    | RdfError::SnapshotCorrupt { .. }
            ),
            "truncation at {len} gave unexpected error {err:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Flipping any single byte of the body is caught by a section checksum
/// (or rejected by a stricter structural check before the graph is built).
#[test]
fn random_bit_flips_never_panic_and_never_load_silently() {
    let (path, bytes) = write_sample("flip");
    let header_len = 8 + 4 + 4 + "fixture/key".len() + 32;
    check("random_bit_flips_never_panic", |rng| {
        let mut corrupted = bytes.clone();
        let pos = rng.gen_range(header_len..corrupted.len());
        let bit = 1u8 << rng.gen_range(0u32..8) as u8;
        corrupted[pos] ^= bit;
        std::fs::write(&path, &corrupted).expect("rewrite");
        match Graph::load_snapshot(&path, Some("fixture/key")) {
            // a flip in a length/checksum frame or payload must error out
            Err(
                RdfError::SnapshotTruncated { .. }
                | RdfError::SnapshotChecksum { .. }
                | RdfError::SnapshotCorrupt { .. },
            ) => {}
            Err(other) => panic!("unexpected error kind {other:?}"),
            Ok(_) => panic!("corrupted byte {pos} loaded successfully"),
        }
    });
    let _ = std::fs::remove_file(&path);
}

/// Garbage that merely *starts* with the magic still fails cleanly.
#[test]
fn magic_plus_garbage_is_rejected() {
    let path = tmp_path("garbage");
    let mut bytes = b"RE2XSNAP".to_vec();
    bytes.extend_from_slice(&[0xff; 64]);
    std::fs::write(&path, &bytes).expect("write");
    let err = Graph::load_snapshot(&path, None).expect_err("garbage must not load");
    assert!(matches!(
        err,
        RdfError::SnapshotVersion { .. }
            | RdfError::SnapshotTruncated { .. }
            | RdfError::SnapshotCorrupt { .. }
    ));
    let _ = std::fs::remove_file(&path);
}
