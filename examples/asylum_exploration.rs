//! The paper's running example, end to end: the journalist Alex explores
//! "Requests for Asylum" data starting from nothing but two keywords.
//!
//! Walks the exact workflow of Figure 3: query synthesis from
//! `⟨"Germany", "2014"⟩` (yielding the Table 2 result set), then
//! example-driven refinements — disaggregate by continent of origin,
//! subset to the top of the distribution, and similarity search for
//! countries with a request profile similar to Germany's.
//!
//! ```sh
//! cargo run --example asylum_exploration
//! ```

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{RefineOp, Session, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The hand-crafted KG of Figure 1, whose aggregates reproduce Table 2.
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let report = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))?;
    println!(
        "bootstrapped: {} observations, {} dimensions, {} levels\n",
        report.schema.observation_count,
        report.schema.dimensions().len(),
        report.schema.levels().len(),
    );

    let mut session = Session::new(&endpoint, &report.schema, SessionConfig::default());

    // --- Interaction 1: synthesis ---------------------------------------
    println!("➤ Alex types: Germany, 2014\n");
    let outcome = session.synthesize(&["Germany", "2014"])?;
    for (i, q) in outcome.queries.iter().enumerate() {
        println!("  interpretation [{i}]: {}", q.description);
    }
    let step = session.choose(outcome.queries[0].clone())?;
    println!(
        "\nTable 2 — initial result set:\n{}",
        step.solutions.to_labeled_table(endpoint.graph())
    );

    // --- Interaction 2: disaggregate -------------------------------------
    println!("➤ Alex drills down.\n");
    let refinements = session.refinements(RefineOp::Disaggregate)?;
    for r in &refinements {
        println!("  offer: {}", r.explanation);
    }
    let by_continent = refinements
        .into_iter()
        .find(|r| r.explanation.contains("Continent"))
        .expect("continent disaggregation offered");
    let step = session.apply(by_continent)?;
    println!(
        "\nafter disaggregation:\n{}",
        step.solutions.to_labeled_table(endpoint.graph())
    );

    // --- Interaction 3: similarity search --------------------------------
    println!("➤ Alex asks for countries with volumes similar to Germany's.\n");
    let sims = session.refinements(RefineOp::Similarity)?;
    let first = sims.into_iter().next().expect("similarity available");
    println!("  offer: {}", first.explanation);
    let step = session.apply(first)?;
    println!(
        "\nsimilar members only:\n{}",
        step.solutions.to_labeled_table(endpoint.graph())
    );

    // --- Interaction 4: top-k subset --------------------------------------
    println!("➤ Alex keeps only the top of the distribution.\n");
    let tops = session.refinements(RefineOp::TopK)?;
    for r in &tops {
        println!("  offer: {}", r.explanation);
    }
    if let Some(top) = tops.into_iter().next() {
        let step = session.apply(top)?;
        println!(
            "\nfinal view:\n{}",
            step.solutions.to_labeled_table(endpoint.graph())
        );
        println!("final query (reusable SPARQL):\n\n{}", step.query.sparql());
    }

    let m = session.metrics();
    println!(
        "\nexploration accounting: {} interactions, {} paths offered, {} tuples accessed",
        m.interactions, m.paths_offered, m.tuples_accessible
    );
    Ok(())
}
