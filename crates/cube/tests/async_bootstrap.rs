//! Differential tests: the async (ticket-fan-out) bootstrap crawl must
//! produce a schema *identical* to the serial one — same dimensions,
//! levels in the same order, member counts, attributes, labels, and the
//! same `endpoint_queries` — regardless of pool width, and its query
//! provenance must reconcile exactly with the endpoint statistics.

use re2x_cube::{bootstrap, bootstrap_async, BootstrapConfig};
use re2x_obs::Tracer;
use re2x_sparql::{CachingEndpoint, LocalEndpoint, SparqlEndpoint, TracingEndpoint};
use std::time::Duration;

fn assert_async_matches_serial(dataset: re2x_datagen::Dataset, workers: usize) {
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let endpoint = LocalEndpoint::new(dataset.graph);

    let serial = bootstrap(&endpoint, &config).expect("serial bootstrap");
    let async_report = bootstrap_async(&endpoint, &config, workers).expect("async bootstrap");

    assert_eq!(
        async_report.schema, serial.schema,
        "async schema diverges from serial for {} with {workers} workers",
        dataset.name
    );
    assert_eq!(
        async_report.endpoint_queries, serial.endpoint_queries,
        "async crawl issued a different number of queries for {}",
        dataset.name
    );
}

#[test]
fn eurostat_async_equals_serial() {
    assert_async_matches_serial(re2x_datagen::eurostat::generate(600, 7), 4);
}

#[test]
fn dbpedia_async_equals_serial() {
    // deepest hierarchies and M-to-N roll-ups; also exercise a single
    // worker (pure pipelining, no concurrency) and a wide pool
    assert_async_matches_serial(re2x_datagen::dbpedia::generate(400, 11), 1);
    assert_async_matches_serial(re2x_datagen::dbpedia::generate(400, 11), 8);
}

#[test]
fn async_bootstrap_provenance_reconciles_with_endpoint_stats() {
    let dataset = re2x_datagen::eurostat::generate(300, 5);
    let tracer = Tracer::enabled();
    let endpoint = TracingEndpoint::new(LocalEndpoint::new(dataset.graph), tracer.clone());
    let config = BootstrapConfig::new(dataset.observation_class).with_tracer(tracer.clone());

    bootstrap_async(&endpoint, &config, 4).expect("async bootstrap");

    let stats = endpoint.stats();
    let provenance = tracer.provenance();
    let attributed: u64 = provenance.iter().map(|(_, s)| s.queries()).sum();
    assert_eq!(
        attributed,
        stats.total_queries(),
        "every concurrently-serviced query attributed: {provenance:?}"
    );
    // pool-thread queries adopt their dimension's span, exactly like the
    // serial crawl's nesting — nothing lands in the unattributed bucket
    assert!(
        !provenance.iter().any(|(p, _)| p == re2x_obs::UNATTRIBUTED),
        "stray unattributed queries: {provenance:?}"
    );
    let crawl_queries: u64 = provenance
        .iter()
        .filter(|(path, _)| path.ends_with("bootstrap.crawl_dimension"))
        .map(|(_, s)| s.queries())
        .sum();
    assert!(crawl_queries > 0, "crawl spans carry the fan-out queries");
}

#[test]
fn async_bootstrap_composes_with_a_cache() {
    let dataset = re2x_datagen::eurostat::generate(300, 3);
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let endpoint = CachingEndpoint::new(LocalEndpoint::new(dataset.graph));

    let cold = bootstrap_async(&endpoint, &config, 4).expect("cold bootstrap");
    let inner_after_cold = endpoint.stats().selects;
    let warm = bootstrap_async(&endpoint, &config, 4).expect("warm bootstrap");

    assert_eq!(warm.schema, cold.schema);
    let inner_after_warm = endpoint.stats().selects;
    assert!(
        inner_after_warm - inner_after_cold < inner_after_cold / 2,
        "warm crawl re-issued too many queries: {inner_after_cold} then {inner_after_warm}"
    );
    assert!(endpoint.stats().cache_hits > 0);
}

#[test]
fn async_bootstrap_overlaps_injected_latency() {
    let dataset = re2x_datagen::eurostat::generate(200, 5);
    let config = BootstrapConfig::new(dataset.observation_class.clone());
    let endpoint = LocalEndpoint::new(dataset.graph).with_latency(Duration::from_millis(2));

    let serial = bootstrap(&endpoint, &config).expect("serial bootstrap");
    let async_report = bootstrap_async(&endpoint, &config, 8).expect("async bootstrap");

    assert_eq!(async_report.schema, serial.schema);
    assert!(
        async_report.elapsed < serial.elapsed,
        "fan-out ({:?}) should beat serial ({:?}) under 2 ms per-query latency",
        async_report.elapsed,
        serial.elapsed
    );
}
