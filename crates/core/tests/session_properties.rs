//! Property-based tests of the interactive session: arbitrary sequences of
//! refinement operations and backtracking must preserve the session
//! invariants (monotone metrics, consistent history, example containment).

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2x_testkit::{check_n, TestRng};
use re2xolap::{RefineOp, Session, SessionConfig};

#[derive(Debug, Clone, Copy)]
enum Action {
    Refine(RefineOp, usize),
    Backtrack,
}

fn gen_actions(rng: &mut TestRng) -> Vec<Action> {
    let n = rng.gen_range(0usize..8);
    (0..n)
        .map(|_| match rng.pick_weighted(&[6, 1]) {
            0 => {
                let op = [
                    RefineOp::Disaggregate,
                    RefineOp::TopK,
                    RefineOp::Percentile,
                    RefineOp::Similarity,
                ][rng.gen_range(0usize..4)];
                Action::Refine(op, rng.gen_range(0usize..6))
            }
            _ => Action::Backtrack,
        })
        .collect()
}

#[test]
fn random_exploration_preserves_invariants() {
    // each case replays a whole interactive session; keep the budget small
    check_n("random_exploration_preserves_invariants", 8, |rng| {
        let actions = gen_actions(rng);
        let mut dataset = re2x_datagen::running::generate();
        let graph = std::mem::take(&mut dataset.graph);
        let endpoint = LocalEndpoint::new(graph);
        let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap")
            .schema;
        let mut session = Session::new(&endpoint, &schema, SessionConfig::default());

        let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
        assert!(!outcome.queries.is_empty());
        session.choose(outcome.queries[0].clone()).expect("runs");

        let mut last_metrics = session.metrics();
        for action in actions {
            match action {
                Action::Refine(op, pick) => {
                    let refinements = session.refinements(op).expect("refinement generation");
                    // offering refinements never shrinks the accounting
                    let m = session.metrics();
                    assert!(m.interactions > last_metrics.interactions);
                    assert!(m.paths_offered >= last_metrics.paths_offered);
                    last_metrics = m;
                    if refinements.is_empty() {
                        continue;
                    }
                    let r = refinements[pick % refinements.len()].clone();
                    let depth_before = session.history().len();
                    let step = session.apply(r).expect("refined query runs");
                    // the refined result still contains the example
                    assert!(
                        !step
                            .query
                            .matching_rows(&step.solutions, endpoint.graph())
                            .is_empty(),
                        "example lost by {op:?}: {}",
                        step.query.sparql()
                    );
                    assert_eq!(session.history().len(), depth_before + 1);
                    last_metrics = session.metrics();
                }
                Action::Backtrack => {
                    let depth_before = session.history().len();
                    let did = session.backtrack();
                    if depth_before > 1 {
                        assert!(did);
                        assert_eq!(session.history().len(), depth_before - 1);
                    } else {
                        assert!(!did);
                        assert_eq!(session.history().len(), depth_before);
                    }
                }
            }
            // the current step is always executable & reproducible
            let current = session.current().expect("history never empties");
            let rerun = endpoint.select(&current.query.query).expect("still runs");
            assert_eq!(rerun.len(), current.solutions.len());
        }
    });
}
