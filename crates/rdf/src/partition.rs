//! Hash partitioner for cube-shaped graphs.
//!
//! Splits a graph into `n` shards following the classic data-cube layout for
//! distributed analytical stores: *fact* triples — those whose subject is an
//! instance of the observation class (`?s rdf:type qb:Observation` by
//! default) — are hash-partitioned by subject, while everything else
//! (dimension members, hierarchy edges, labels, schema) is replicated to
//! every shard. Star-shaped patterns anchored on an observation subject
//! therefore evaluate entirely shard-locally: all triples of one observation
//! live on one shard, and every dimension triple a star joins against is
//! present on all shards.
//!
//! Shards are built from [`crate::Graph::term_shell`] clones, so `TermId`s
//! are identical across shards and the source graph — partial results
//! produced on different shards can be merged and resolved against the
//! source interner directly.

use crate::graph::Graph;
use crate::hash::{FxHashMap, FxHashSet};
use crate::interner::TermId;
use crate::vocab::{qb, rdf};

/// How a predicate's triples were routed by the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateRole {
    /// Every triple with this predicate has a fact subject: the triples are
    /// hash-partitioned and each lives on exactly one shard.
    Fact,
    /// Every triple with this predicate has a non-fact subject: the triples
    /// are replicated to all shards.
    Replicated,
    /// The predicate appears with both fact and non-fact subjects (e.g.
    /// `rdf:type`, which types observations *and* dimension members).
    Mixed,
    /// The predicate does not occur in the partitioned graph.
    Unused,
}

/// Summary of how a graph was split: shard count, routing statistics, and
/// the per-predicate roles a query decomposer needs to prove that a pattern
/// evaluates shard-locally.
#[derive(Debug, Clone)]
pub struct PartitionLayout {
    /// Number of shards.
    pub shards: usize,
    /// Resolved observation-class term, if present in the graph.
    pub class: Option<TermId>,
    /// Resolved `rdf:type` term, if present in the graph.
    pub type_predicate: Option<TermId>,
    /// Number of distinct fact subjects.
    pub fact_subject_count: usize,
    /// Total fact triples (hash-partitioned; each on exactly one shard).
    pub fact_triples: usize,
    /// Total replicated triples (each present on every shard).
    pub replicated_triples: usize,
    /// Fact triples routed to each shard.
    pub shard_fact_triples: Vec<usize>,
    /// Sorted predicates that occurred with a fact subject.
    fact_predicates: Vec<TermId>,
    /// Sorted predicates that occurred with a non-fact subject.
    replicated_predicates: Vec<TermId>,
}

impl PartitionLayout {
    /// The routing role of a predicate in this layout.
    pub fn predicate_role(&self, p: TermId) -> PredicateRole {
        let fact = self.fact_predicates.binary_search(&p).is_ok();
        let replicated = self.replicated_predicates.binary_search(&p).is_ok();
        match (fact, replicated) {
            (true, true) => PredicateRole::Mixed,
            (true, false) => PredicateRole::Fact,
            (false, true) => PredicateRole::Replicated,
            (false, false) => PredicateRole::Unused,
        }
    }

    /// Load skew of the fact partitioning: the largest shard's fact-triple
    /// count divided by the mean (1.0 = perfectly balanced). Returns 1.0
    /// for an empty fact set.
    pub fn skew(&self) -> f64 {
        let total: usize = self.shard_fact_triples.iter().sum();
        if total == 0 || self.shard_fact_triples.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.shard_fact_triples.len() as f64;
        let max = self.shard_fact_triples.iter().max().copied().unwrap_or(0) as f64;
        max / mean
    }
}

/// A graph split into hash-partitioned fact shards with replicated
/// dimension/schema triples, plus the layout metadata describing the split.
#[derive(Debug)]
pub struct Partitioned {
    /// The shards, each a complete [`Graph`] sharing the source's term table.
    pub shards: Vec<Graph>,
    /// Routing metadata.
    pub layout: PartitionLayout,
}

/// FNV-1a hash of a subject's string form, reduced to a shard index.
///
/// Hashing the *string* form (not the [`TermId`]) makes the placement
/// independent of interning order: the same subject lands on the same shard
/// no matter how or when the graph was loaded.
pub fn shard_of_subject(subject_text: &str, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in subject_text.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// One routing pass over `graph`: classifies every triple as fact (calling
/// `on_fact` with its shard) or replicated (calling `on_repl`) and returns
/// the resulting [`PartitionLayout`]. The shard-building [`partition`] and
/// the layout-only [`partition_layout`] share this scan, so a layout
/// re-derived for snapshot-loaded shards is byte-for-byte the one the
/// original split produced.
fn route(
    graph: &Graph,
    observation_class: &str,
    shards: usize,
    mut on_fact: impl FnMut(crate::graph::Triple, usize),
    mut on_repl: impl FnMut(crate::graph::Triple),
) -> PartitionLayout {
    assert!(shards > 0, "cannot partition into zero shards");
    let type_predicate = graph.iri_id(rdf::TYPE);
    let class = graph.iri_id(observation_class);
    let fact_subjects: FxHashSet<TermId> = match (type_predicate, class) {
        (Some(tp), Some(c)) => graph.subjects(tp, c).iter().copied().collect(),
        _ => FxHashSet::default(),
    };

    let mut shard_fact_triples = vec![0usize; shards];
    let mut fact_triples = 0usize;
    let mut replicated_triples = 0usize;
    let mut fact_predicates: FxHashSet<TermId> = FxHashSet::default();
    let mut replicated_predicates: FxHashSet<TermId> = FxHashSet::default();
    // Subject shard placements are cached per subject: hashing the string
    // form once per fact subject, not once per triple.
    let mut placement: FxHashMap<TermId, usize> = FxHashMap::default();

    for triple in graph.iter() {
        if fact_subjects.contains(&triple.s) {
            let shard = *placement
                .entry(triple.s)
                .or_insert_with(|| shard_of_subject(&graph.term(triple.s).to_string(), shards));
            shard_fact_triples[shard] += 1;
            fact_triples += 1;
            fact_predicates.insert(triple.p);
            on_fact(triple, shard);
        } else {
            replicated_triples += 1;
            replicated_predicates.insert(triple.p);
            on_repl(triple);
        }
    }

    let mut fact_predicates: Vec<TermId> = fact_predicates.into_iter().collect();
    fact_predicates.sort_unstable();
    let mut replicated_predicates: Vec<TermId> = replicated_predicates.into_iter().collect();
    replicated_predicates.sort_unstable();

    PartitionLayout {
        shards,
        class,
        type_predicate,
        fact_subject_count: fact_subjects.len(),
        fact_triples,
        replicated_triples,
        shard_fact_triples,
        fact_predicates,
        replicated_predicates,
    }
}

/// Splits `graph` into `shards` partitions, treating instances of
/// `observation_class` (found via `rdf:type`) as fact subjects.
///
/// If the class or `rdf:type` is absent the fact set is empty and every
/// triple is replicated — the partitioning degenerates to `n` full replicas,
/// which is always correct (if pointless), so callers never need a special
/// case for schema-less graphs.
pub fn partition(graph: &Graph, observation_class: &str, shards: usize) -> Partitioned {
    // Route fact triples and build the replicated base once; shards are then
    // clones of the base plus their fact share. Inserting the replicated
    // triples once and cloning the finished indexes is much cheaper than n
    // single-triple insert passes (and the term table / text index — the
    // expensive parts of a shard — are cloned exactly once per shard either
    // way).
    let mut base = graph.term_shell();
    let mut fact_routes: Vec<(crate::graph::Triple, usize)> = Vec::new();
    let layout = route(
        graph,
        observation_class,
        shards,
        |triple, shard| fact_routes.push((triple, shard)),
        |triple| {
            base.insert_ids(triple.s, triple.p, triple.o);
        },
    );
    let mut parts: Vec<Graph> = (1..shards).map(|_| base.clone()).collect();
    parts.push(base);
    for (triple, shard) in fact_routes {
        parts[shard].insert_ids(triple.s, triple.p, triple.o);
    }
    Partitioned {
        shards: parts,
        layout,
    }
}

/// The [`PartitionLayout`] that [`partition`] would produce, without
/// building any shard graph — what a caller re-assembling a sharded
/// deployment from per-shard snapshot artifacts needs: the shards already
/// exist on disk, only the routing metadata has to be re-derived from the
/// replica.
pub fn partition_layout(graph: &Graph, observation_class: &str, shards: usize) -> PartitionLayout {
    route(graph, observation_class, shards, |_, _| {}, |_| {})
}

/// [`partition`] specialized to the W3C Data Cube observation class the
/// generators and the paper's datasets use.
pub fn partition_observations(graph: &Graph, shards: usize) -> Partitioned {
    partition(graph, qb::OBSERVATION, shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse_turtle;

    fn cube() -> Graph {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
            @prefix qb: <http://purl.org/linked-data/cube#> .
            ex:obs1 rdf:type qb:Observation ; ex:dest ex:Germany ; ex:value 5 .
            ex:obs2 rdf:type qb:Observation ; ex:dest ex:France ; ex:value 7 .
            ex:obs3 rdf:type qb:Observation ; ex:dest ex:Germany ; ex:value 11 .
            ex:Germany ex:inContinent ex:Europe ; ex:label "Germany" .
            ex:France ex:inContinent ex:Europe ; ex:label "France" .
            ex:Europe rdf:type ex:Continent .
            "#,
            &mut g,
        )
        .expect("parse");
        g
    }

    #[test]
    fn facts_partitioned_dimensions_replicated() {
        let g = cube();
        let parts = partition_observations(&g, 2);
        assert_eq!(parts.layout.fact_subject_count, 3);
        assert_eq!(parts.layout.fact_triples, 9);
        assert_eq!(parts.layout.replicated_triples, 5);
        assert_eq!(parts.layout.shard_fact_triples.iter().sum::<usize>(), 9);
        // Every shard carries all replicated triples plus its fact share.
        for (i, shard) in parts.shards.iter().enumerate() {
            assert_eq!(
                shard.len(),
                5 + parts.layout.shard_fact_triples[i],
                "shard {i}"
            );
        }
        // Union of shard fact triples = source fact triples, no loss.
        let total: usize = parts.shards.iter().map(Graph::len).sum();
        assert_eq!(total, 9 + 2 * 5);
    }

    #[test]
    fn observation_star_is_shard_local() {
        let g = cube();
        let parts = partition_observations(&g, 4);
        let type_p = parts.layout.type_predicate.expect("rdf:type interned");
        let class = parts.layout.class.expect("qb:Observation interned");
        for shard in &parts.shards {
            for &obs in shard.subjects(type_p, class) {
                // All triples of an observation present wherever its type
                // triple landed.
                assert_eq!(shard.count_matching(Some(obs), None, None), 3);
            }
        }
    }

    #[test]
    fn predicate_roles() {
        let g = cube();
        let parts = partition_observations(&g, 2);
        let p = |iri: &str| g.iri_id(iri).expect("interned");
        assert_eq!(
            parts.layout.predicate_role(p("http://ex/dest")),
            PredicateRole::Fact
        );
        assert_eq!(
            parts.layout.predicate_role(p("http://ex/inContinent")),
            PredicateRole::Replicated
        );
        // rdf:type types both observations and ex:Europe.
        assert_eq!(
            parts.layout.predicate_role(p(rdf::TYPE)),
            PredicateRole::Mixed
        );
        assert_eq!(
            parts.layout.predicate_role(p("http://ex/Germany")),
            PredicateRole::Unused
        );
    }

    #[test]
    fn placement_is_deterministic_and_interning_independent() {
        let g = cube();
        let a = partition_observations(&g, 4);
        // Same subjects, different interning order: rebuild from scratch.
        let mut g2 = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            @prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
            @prefix qb: <http://purl.org/linked-data/cube#> .
            ex:Europe rdf:type ex:Continent .
            ex:obs3 rdf:type qb:Observation ; ex:dest ex:Germany ; ex:value 11 .
            ex:obs2 rdf:type qb:Observation ; ex:dest ex:France ; ex:value 7 .
            ex:obs1 rdf:type qb:Observation ; ex:dest ex:Germany ; ex:value 5 .
            ex:Germany ex:inContinent ex:Europe ; ex:label "Germany" .
            ex:France ex:inContinent ex:Europe ; ex:label "France" .
            "#,
            &mut g2,
        )
        .expect("parse");
        let b = partition_observations(&g2, 4);
        for name in ["http://ex/obs1", "http://ex/obs2", "http://ex/obs3"] {
            let shard_a = (0..4)
                .find(|&i| a.shards[i].count_matching(a.shards[i].iri_id(name), None, None) > 0);
            let shard_b = (0..4)
                .find(|&i| b.shards[i].count_matching(b.shards[i].iri_id(name), None, None) > 0);
            assert_eq!(shard_a, shard_b, "{name} moved between builds");
        }
    }

    #[test]
    fn no_observation_class_degenerates_to_replicas() {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:a ex:p ex:b . ex:b ex:p ex:c .
            "#,
            &mut g,
        )
        .expect("parse");
        let parts = partition_observations(&g, 3);
        assert_eq!(parts.layout.fact_triples, 0);
        assert_eq!(parts.layout.skew(), 1.0);
        for shard in &parts.shards {
            assert_eq!(shard.len(), g.len());
        }
    }

    #[test]
    fn skew_is_max_over_mean() {
        let layout = PartitionLayout {
            shards: 4,
            class: None,
            type_predicate: None,
            fact_subject_count: 0,
            fact_triples: 8,
            replicated_triples: 0,
            shard_fact_triples: vec![4, 2, 1, 1],
            fact_predicates: Vec::new(),
            replicated_predicates: Vec::new(),
        };
        assert!((layout.skew() - 2.0).abs() < 1e-9);
    }
}
