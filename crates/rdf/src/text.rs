//! Full-text index over literal values.
//!
//! The paper resolves user-provided example keywords ("Germany", "2014") to
//! dimension-member IRIs through the triplestore's full-text index
//! (Algorithm 1, line 3). This module provides the equivalent facility:
//! an inverted token index plus an exact normalized-string index over every
//! literal interned in a [`crate::Graph`].

use crate::hash::FxHashMap;
use crate::interner::TermId;

/// Splits a string into lowercase alphanumeric tokens.
///
/// `"Country of Destination"` → `["country", "of", "destination"]`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Normalizes a string for exact matching: lowercased tokens joined by a
/// single space, so `"  North   America "` and `"north america"` compare
/// equal.
pub fn normalize(text: &str) -> String {
    tokenize(text).join(" ")
}

/// Inverted index from tokens (and whole normalized strings) to the literal
/// terms containing them.
#[derive(Debug, Default, Clone)]
pub struct TextIndex {
    /// token → sorted, deduplicated literal term ids.
    postings: FxHashMap<Box<str>, Vec<TermId>>,
    /// normalized full string → literal term ids.
    exact: FxHashMap<Box<str>, Vec<TermId>>,
    indexed: usize,
}

impl TextIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a literal's lexical form under its term id.
    ///
    /// Idempotent: re-indexing an already-indexed id is a no-op, and ids may
    /// be indexed in any order (postings stay sorted, which
    /// [`TextIndex::search_all_tokens`] relies on for its binary searches).
    pub fn index_literal(&mut self, id: TermId, lexical: &str) {
        let tokens = tokenize(lexical);
        for token in &tokens {
            let posting = self
                .postings
                .entry(token.clone().into_boxed_str())
                .or_default();
            if let Err(pos) = posting.binary_search(&id) {
                posting.insert(pos, id);
            }
        }
        let key = tokens.join(" ").into_boxed_str();
        let exact = self.exact.entry(key).or_default();
        if let Err(pos) = exact.binary_search(&id) {
            exact.insert(pos, id);
            self.indexed += 1;
        }
    }

    /// Removes a literal id from the index. The caller passes the same
    /// lexical form the id was indexed under; unknown ids are a no-op.
    /// Token postings and exact entries that become empty are dropped so the
    /// index does not accumulate dead keys.
    pub fn unindex_literal(&mut self, id: TermId, lexical: &str) {
        let tokens = tokenize(lexical);
        for token in &tokens {
            if let Some(posting) = self.postings.get_mut(token.as_str()) {
                if let Ok(pos) = posting.binary_search(&id) {
                    posting.remove(pos);
                }
                if posting.is_empty() {
                    self.postings.remove(token.as_str());
                }
            }
        }
        let key = tokens.join(" ");
        let mut removed = false;
        if let Some(exact) = self.exact.get_mut(key.as_str()) {
            if let Ok(pos) = exact.binary_search(&id) {
                exact.remove(pos);
                removed = true;
            }
            if exact.is_empty() {
                self.exact.remove(key.as_str());
            }
        }
        if removed {
            self.indexed -= 1;
        }
    }

    /// `true` if `id` is currently indexed under this lexical form.
    pub fn is_indexed(&self, id: TermId, lexical: &str) -> bool {
        self.exact
            .get(normalize(lexical).as_str())
            .is_some_and(|ids| ids.binary_search(&id).is_ok())
    }

    /// Literals whose normalized lexical form equals the normalized query.
    pub fn search_exact(&self, query: &str) -> &[TermId] {
        self.exact
            .get(normalize(query).as_str())
            .map_or(&[], Vec::as_slice)
    }

    /// Literals containing *all* tokens of the query (conjunctive keyword
    /// search, the classic full-text contract).
    pub fn search_all_tokens(&self, query: &str) -> Vec<TermId> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        // Intersect postings, starting from the rarest token.
        let mut lists: Vec<&Vec<TermId>> = Vec::with_capacity(tokens.len());
        for token in &tokens {
            match self.postings.get(token.as_str()) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<TermId> = lists[0].clone();
        for list in &lists[1..] {
            result.retain(|id| list.binary_search(id).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Number of literals indexed.
    pub fn len(&self) -> usize {
        self.indexed
    }

    /// `true` if nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.indexed == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(k, v)| k.len() + v.len() * std::mem::size_of::<TermId>())
            .sum::<usize>()
            + self
                .exact
                .iter()
                .map(|(k, v)| k.len() + v.len() * std::mem::size_of::<TermId>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_non_alphanumerics() {
        assert_eq!(
            tokenize("Country of Destination"),
            ["country", "of", "destination"]
        );
        assert_eq!(tokenize("October-2014"), ["october", "2014"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("a_b"), ["a", "b"]);
    }

    #[test]
    fn normalize_collapses_whitespace_and_case() {
        assert_eq!(normalize("  North   AMERICA "), "north america");
        assert_eq!(normalize("north america"), "north america");
    }

    fn build() -> TextIndex {
        let mut idx = TextIndex::new();
        idx.index_literal(TermId(0), "Germany");
        idx.index_literal(TermId(1), "October 2014");
        idx.index_literal(TermId(2), "2014");
        idx.index_literal(TermId(3), "November 2014");
        idx
    }

    #[test]
    fn exact_search_matches_whole_normalized_string() {
        let idx = build();
        assert_eq!(idx.search_exact("germany"), &[TermId(0)]);
        assert_eq!(idx.search_exact("2014"), &[TermId(2)]);
        assert_eq!(idx.search_exact("OCTOBER 2014"), &[TermId(1)]);
        assert!(idx.search_exact("december 2014").is_empty());
    }

    #[test]
    fn token_search_is_conjunctive() {
        let idx = build();
        let hits = idx.search_all_tokens("2014");
        assert_eq!(hits, vec![TermId(1), TermId(2), TermId(3)]);
        assert_eq!(idx.search_all_tokens("october 2014"), vec![TermId(1)]);
        assert!(idx.search_all_tokens("october 2015").is_empty());
        assert!(idx.search_all_tokens("").is_empty());
    }

    #[test]
    fn repeated_token_in_one_literal_indexed_once() {
        let mut idx = TextIndex::new();
        idx.index_literal(TermId(5), "year 2014 month 2014");
        assert_eq!(idx.search_all_tokens("2014"), vec![TermId(5)]);
    }

    #[test]
    fn heap_bytes_nonzero_after_indexing() {
        assert!(build().heap_bytes() > 0);
        assert_eq!(build().len(), 4);
    }

    #[test]
    fn index_literal_is_idempotent() {
        let mut idx = build();
        idx.index_literal(TermId(2), "2014");
        assert_eq!(idx.len(), 4);
        assert_eq!(
            idx.search_all_tokens("2014"),
            vec![TermId(1), TermId(2), TermId(3)]
        );
        assert_eq!(idx.search_exact("2014"), &[TermId(2)]);
    }

    #[test]
    fn out_of_order_indexing_keeps_postings_sorted() {
        let mut idx = TextIndex::new();
        idx.index_literal(TermId(9), "alpha 2014");
        idx.index_literal(TermId(3), "beta 2014");
        idx.index_literal(TermId(6), "2014");
        // Conjunctive search binary-searches postings, so an unsorted
        // posting would silently drop hits.
        assert_eq!(
            idx.search_all_tokens("2014"),
            vec![TermId(3), TermId(6), TermId(9)]
        );
        assert_eq!(idx.search_all_tokens("beta 2014"), vec![TermId(3)]);
    }

    #[test]
    fn unindex_removes_tokens_exact_and_count() {
        let mut idx = build();
        idx.unindex_literal(TermId(1), "October 2014");
        assert_eq!(idx.len(), 3);
        assert!(idx.search_all_tokens("october").is_empty());
        assert!(idx.search_exact("october 2014").is_empty());
        assert_eq!(idx.search_all_tokens("2014"), vec![TermId(2), TermId(3)]);
        assert!(!idx.is_indexed(TermId(1), "October 2014"));
        assert!(idx.is_indexed(TermId(2), "2014"));
        // Unindexing an id that was never indexed is a no-op.
        idx.unindex_literal(TermId(42), "Germany");
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.search_exact("germany"), &[TermId(0)]);
    }

    #[test]
    fn unindex_then_reindex_round_trips() {
        let mut idx = build();
        idx.unindex_literal(TermId(2), "2014");
        idx.index_literal(TermId(2), "2014");
        assert_eq!(idx.len(), 4);
        assert_eq!(
            idx.search_all_tokens("2014"),
            vec![TermId(1), TermId(2), TermId(3)]
        );
    }
}
