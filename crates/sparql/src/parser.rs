//! Recursive-descent parser for the SPARQL subset.
//!
//! Accepts both strict SPARQL 1.1 projection syntax
//! (`(SUM(?x) AS ?total)`) and the paper's abbreviated `SUM(?x)` form
//! (Figure 2), for which a deterministic alias is generated.

use crate::ast::*;
use crate::error::SparqlError;
use re2x_rdf::hash::FxHashMap;
use re2x_rdf::{vocab, Literal};

/// Parses a query string.
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = Lexer::new(input).lex()?;
    Parser {
        tokens,
        pos: 0,
        prefixes: FxHashMap::default(),
        agg_counter: 0,
    }
    .parse_query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare word (keyword, `a`, `true`/`false`).
    Word(String),
    /// `?name`.
    Var(String),
    /// `<iri>`.
    Iri(String),
    /// `prefix:local`.
    PName(String, String),
    /// Complete literal (datatype / language already attached).
    Literal(Literal),
    /// Numeric constant.
    Number(f64),
    /// Punctuation or operator: `( ) { } . ; , / * = != < <= > >= + - && || !`.
    Sym(&'static str),
}

struct Spanned {
    tok: Tok,
    line: usize,
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> SparqlError {
        SparqlError::syntax(self.line, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn lex(mut self) -> Result<Vec<Spanned>, SparqlError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let line = self.line;
            let Some(b) = self.peek() else {
                return Ok(out);
            };
            let tok = match b {
                b'?' | b'$' => {
                    self.bump();
                    let name = self.read_name();
                    if name.is_empty() {
                        return Err(self.err("empty variable name"));
                    }
                    Tok::Var(name)
                }
                b'<' => self.lex_angle()?,
                b'"' => Tok::Literal(self.lex_literal()?),
                b'(' | b')' | b'{' | b'}' | b'.' | b';' | b',' | b'/' | b'*' | b'+' => {
                    self.bump();
                    Tok::Sym(match b {
                        b'(' => "(",
                        b')' => ")",
                        b'{' => "{",
                        b'}' => "}",
                        b'.' => ".",
                        b';' => ";",
                        b',' => ",",
                        b'/' => "/",
                        b'*' => "*",
                        _ => "+",
                    })
                }
                b'-' => {
                    // negative number or minus operator
                    if self.peek2().is_some_and(|c| c.is_ascii_digit()) {
                        self.lex_number()?
                    } else {
                        self.bump();
                        Tok::Sym("-")
                    }
                }
                b'=' => {
                    self.bump();
                    Tok::Sym("=")
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Sym("!=")
                    } else {
                        Tok::Sym("!")
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Sym(">=")
                    } else {
                        Tok::Sym(">")
                    }
                }
                b'&' => {
                    self.bump();
                    if self.peek() == Some(b'&') {
                        self.bump();
                        Tok::Sym("&&")
                    } else {
                        return Err(self.err("expected '&&'"));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        Tok::Sym("||")
                    } else {
                        return Err(self.err("expected '||'"));
                    }
                }
                b'#' => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    continue;
                }
                c if c.is_ascii_digit() => self.lex_number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let word = self.read_name();
                    if self.peek() == Some(b':') {
                        self.bump();
                        let local = self.read_local_name();
                        Tok::PName(word, local)
                    } else {
                        Tok::Word(word)
                    }
                }
                b':' => {
                    // default-prefix pname `:local`
                    self.bump();
                    let local = self.read_local_name();
                    Tok::PName(String::new(), local)
                }
                other => return Err(self.err(format!("unexpected character '{}'", other as char))),
            };
            out.push(Spanned { tok, line });
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn read_name(&mut self) -> String {
        let mut name = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                name.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    fn read_local_name(&mut self) -> String {
        let mut name = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                name.push(b as char);
                self.bump();
            } else if b == b'.'
                && self
                    .bytes
                    .get(self.pos + 1)
                    .copied()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                name.push('.');
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    /// `<` begins an IRI iff a `>` appears before any whitespace; otherwise
    /// it is the less-than operator.
    fn lex_angle(&mut self) -> Result<Tok, SparqlError> {
        let mut probe = self.pos + 1;
        let mut is_iri = false;
        while let Some(&b) = self.bytes.get(probe) {
            if b == b'>' {
                is_iri = true;
                break;
            }
            if b.is_ascii_whitespace() {
                break;
            }
            probe += 1;
        }
        if is_iri {
            self.bump(); // '<'
            let start = self.pos;
            while self.peek() != Some(b'>') {
                self.bump();
            }
            let iri = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("invalid utf-8 in IRI"))?
                .to_owned();
            self.bump(); // '>'
            Ok(Tok::Iri(iri))
        } else {
            self.bump();
            if self.peek() == Some(b'=') {
                self.bump();
                Ok(Tok::Sym("<="))
            } else {
                Ok(Tok::Sym("<"))
            }
        }
    }

    fn lex_literal(&mut self) -> Result<Literal, SparqlError> {
        self.bump(); // opening quote
        let mut lexical = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => lexical.push('\n'),
                    Some(b't') => lexical.push('\t'),
                    Some(b'r') => lexical.push('\r'),
                    Some(b'"') => lexical.push('"'),
                    Some(b'\\') => lexical.push('\\'),
                    other => {
                        return Err(
                            self.err(format!("invalid escape \\{:?}", other.map(|b| b as char)))
                        )
                    }
                },
                Some(b) if b < 0x80 => lexical.push(b as char),
                Some(b) => {
                    let extra = match b {
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        _ => 3,
                    };
                    let mut buf = vec![b];
                    for _ in 0..extra {
                        buf.push(self.bump().ok_or_else(|| self.err("truncated utf-8"))?);
                    }
                    lexical
                        .push_str(&String::from_utf8(buf).map_err(|_| self.err("invalid utf-8"))?);
                }
            }
        }
        if self.peek() == Some(b'^') && self.peek2() == Some(b'^') {
            self.bump();
            self.bump();
            if self.peek() != Some(b'<') {
                return Err(self.err("expected '<iri>' datatype after '^^'"));
            }
            match self.lex_angle()? {
                Tok::Iri(dt) => Ok(Literal::typed(lexical, dt)),
                _ => Err(self.err("expected datatype IRI")),
            }
        } else if self.peek() == Some(b'@') {
            self.bump();
            let mut tag = String::new();
            while let Some(b) = self.peek() {
                if !b.is_ascii_alphanumeric() && b != b'-' {
                    break;
                }
                self.bump();
                tag.push(b as char);
            }
            if tag.is_empty() {
                return Err(self.err("empty language tag"));
            }
            Ok(Literal::tagged(lexical, tag))
        } else {
            Ok(Literal::simple(lexical))
        }
    }

    fn lex_number(&mut self) -> Result<Tok, SparqlError> {
        let mut text = String::new();
        if self.peek() == Some(b'-') {
            text.push('-');
            self.bump();
        }
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                    text.push(b as char);
                }
                b'.' if !seen_dot
                    && !seen_exp
                    && self.peek2().is_some_and(|c| c.is_ascii_digit()) =>
                {
                    seen_dot = true;
                    self.bump();
                    text.push(b as char);
                }
                b'e' | b'E' if !seen_exp => {
                    seen_exp = true;
                    self.bump();
                    text.push(b as char);
                    if let Some(sign @ (b'+' | b'-')) = self.peek() {
                        self.bump();
                        text.push(sign as char);
                    }
                }
                _ => break,
            }
        }
        text.parse::<f64>()
            .map(Tok::Number)
            .map_err(|_| self.err(format!("malformed number '{text}'")))
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    prefixes: FxHashMap<String, String>,
    agg_counter: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |s| s.line)
    }

    fn err(&self, msg: impl Into<String>) -> SparqlError {
        SparqlError::syntax(self.line(), msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), SparqlError> {
        match self.peek() {
            Some(Tok::Sym(s)) if *s == sym => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{sym}', found {other:?}"))),
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym)
    }

    /// Case-insensitive keyword check without consuming.
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(w)) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}', found {:?}", self.peek())))
        }
    }

    fn parse_query(mut self) -> Result<Query, SparqlError> {
        while self.at_keyword("PREFIX") {
            self.bump();
            let (label, local) = match self.bump() {
                Some(Tok::PName(p, l)) => (p, l),
                other => return Err(self.err(format!("expected 'prefix:' label, got {other:?}"))),
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration label must end with ':'"));
            }
            let iri = match self.bump() {
                Some(Tok::Iri(iri)) => iri,
                other => return Err(self.err(format!("expected '<iri>' in PREFIX, got {other:?}"))),
            };
            self.prefixes.insert(label, iri);
        }

        let form = if self.at_keyword("ASK") {
            self.bump();
            QueryForm::Ask
        } else {
            self.eat_keyword("SELECT")?;
            QueryForm::Select
        };

        let mut query = Query::select_all(Vec::new());
        query.form = form;

        if form == QueryForm::Select {
            if self.at_keyword("DISTINCT") {
                self.bump();
                query.distinct = true;
            }
            if self.at_sym("*") {
                self.bump();
            } else {
                while let Some(item) = self.try_parse_select_item()? {
                    query.select.push(item);
                }
                if query.select.is_empty() {
                    return Err(self.err("SELECT requires '*' or at least one projection"));
                }
            }
            // WHERE keyword is optional in SPARQL
            if self.at_keyword("WHERE") {
                self.bump();
            }
        } else if self.at_keyword("WHERE") {
            self.bump();
        }

        query.wher = self.parse_group()?;

        if form == QueryForm::Select {
            if self.at_keyword("GROUP") {
                self.bump();
                self.eat_keyword("BY")?;
                while let Some(Tok::Var(_)) = self.peek() {
                    if let Some(Tok::Var(v)) = self.bump() {
                        query.group_by.push(v);
                    }
                }
                if query.group_by.is_empty() {
                    return Err(self.err("GROUP BY requires at least one variable"));
                }
            }
            if self.at_keyword("HAVING") {
                self.bump();
                query.having = Some(self.parse_expr()?);
            }
            if self.at_keyword("ORDER") {
                self.bump();
                self.eat_keyword("BY")?;
                loop {
                    let order = if self.at_keyword("ASC") {
                        self.bump();
                        Some(Order::Asc)
                    } else if self.at_keyword("DESC") {
                        self.bump();
                        Some(Order::Desc)
                    } else {
                        None
                    };
                    let column = if order.is_some() {
                        self.eat_sym("(")?;
                        let v = self.expect_var()?;
                        self.eat_sym(")")?;
                        v
                    } else {
                        match self.peek() {
                            Some(Tok::Var(_)) => self.expect_var()?,
                            _ => break,
                        }
                    };
                    query.order_by.push(OrderKey {
                        column,
                        order: order.unwrap_or(Order::Asc),
                    });
                }
                if query.order_by.is_empty() {
                    return Err(self.err("ORDER BY requires at least one key"));
                }
            }
            if self.at_keyword("LIMIT") {
                self.bump();
                query.limit = Some(self.expect_usize()?);
            }
            if self.at_keyword("OFFSET") {
                self.bump();
                query.offset = Some(self.expect_usize()?);
            }
        }

        match self.peek() {
            None => Ok(query),
            Some(t) => Err(self.err(format!("unexpected trailing token {t:?}"))),
        }
    }

    fn expect_var(&mut self) -> Result<String, SparqlError> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(v),
            other => Err(self.err(format!("expected variable, found {other:?}"))),
        }
    }

    fn expect_usize(&mut self) -> Result<usize, SparqlError> {
        match self.bump() {
            Some(Tok::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Ok(n as usize),
            other => Err(self.err(format!("expected non-negative integer, found {other:?}"))),
        }
    }

    /// Consumes an optional `DISTINCT` inside an aggregate call, upgrading
    /// `COUNT` to `COUNT(DISTINCT …)`; other aggregates reject it.
    fn apply_agg_distinct(&mut self, func: AggFunc) -> Result<AggFunc, SparqlError> {
        if !self.at_keyword("DISTINCT") {
            return Ok(func);
        }
        self.bump();
        match func {
            AggFunc::Count => Ok(AggFunc::CountDistinct),
            other => Err(self.err(format!(
                "DISTINCT inside {}() is not supported",
                other.keyword()
            ))),
        }
    }

    fn try_parse_agg_keyword(&self) -> Option<AggFunc> {
        if let Some(Tok::Word(w)) = self.peek() {
            let func = match w.to_ascii_uppercase().as_str() {
                "SUM" => AggFunc::Sum,
                "MIN" => AggFunc::Min,
                "MAX" => AggFunc::Max,
                "AVG" => AggFunc::Avg,
                "COUNT" => AggFunc::Count,
                _ => return None,
            };
            // must be followed by '('
            if matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.tok),
                Some(Tok::Sym("("))
            ) {
                return Some(func);
            }
        }
        None
    }

    fn auto_alias(&mut self, func: AggFunc, expr: &Expr) -> String {
        let base = match expr {
            Expr::Var(v) => format!("{}_{}", func.keyword().to_ascii_lowercase(), v),
            _ => {
                self.agg_counter += 1;
                format!("agg{}", self.agg_counter)
            }
        };
        base
    }

    fn try_parse_select_item(&mut self) -> Result<Option<SelectItem>, SparqlError> {
        match self.peek() {
            Some(Tok::Var(_)) => {
                let v = self.expect_var()?;
                Ok(Some(SelectItem::Var(v)))
            }
            // paper-style bare aggregate: SUM(?x)
            Some(Tok::Word(_)) if self.try_parse_agg_keyword().is_some() => {
                // the guard only probes; re-probe outside the guard so the
                // keyword is bound exactly once (no "checked" expect)
                let Some(func) = self.try_parse_agg_keyword() else {
                    return Ok(None);
                };
                self.bump(); // keyword
                self.eat_sym("(")?;
                let func = self.apply_agg_distinct(func)?;
                let expr = if func == AggFunc::Count && self.at_sym("*") {
                    self.bump();
                    Expr::Number(1.0)
                } else {
                    self.parse_expr()?
                };
                self.eat_sym(")")?;
                let alias = self.auto_alias(func, &expr);
                Ok(Some(SelectItem::Agg { func, expr, alias }))
            }
            // strict form: ( AGG(?x) AS ?alias )
            Some(Tok::Sym("(")) => {
                self.bump();
                let func = self
                    .try_parse_agg_keyword()
                    .ok_or_else(|| self.err("expected aggregate function after '('"))?;
                self.bump();
                self.eat_sym("(")?;
                let func = self.apply_agg_distinct(func)?;
                let expr = if func == AggFunc::Count && self.at_sym("*") {
                    self.bump();
                    Expr::Number(1.0)
                } else {
                    self.parse_expr()?
                };
                self.eat_sym(")")?;
                self.eat_keyword("AS")?;
                let alias = self.expect_var()?;
                self.eat_sym(")")?;
                Ok(Some(SelectItem::Agg { func, expr, alias }))
            }
            _ => Ok(None),
        }
    }

    fn parse_group(&mut self) -> Result<Vec<PatternElement>, SparqlError> {
        self.eat_sym("{")?;
        let mut elements = Vec::new();
        loop {
            if self.at_sym("}") {
                self.bump();
                return Ok(elements);
            }
            if self.at_keyword("FILTER") {
                self.bump();
                let expr = self.parse_expr()?;
                elements.push(PatternElement::Filter(expr));
                if self.at_sym(".") {
                    self.bump();
                }
                continue;
            }
            if self.at_keyword("OPTIONAL") {
                self.bump();
                let inner = self.parse_group()?;
                elements.push(PatternElement::Optional(inner));
                if self.at_sym(".") {
                    self.bump();
                }
                continue;
            }
            if self.at_sym("{") {
                // `{ … } UNION { … }` — a braced group followed by one or
                // more UNION branches. A bare braced group without UNION is
                // spliced into the surrounding group (equivalent scope for
                // this subset).
                let first = self.parse_group()?;
                if self.at_keyword("UNION") {
                    let mut branches = vec![first];
                    while self.at_keyword("UNION") {
                        self.bump();
                        branches.push(self.parse_group()?);
                    }
                    elements.push(PatternElement::Union(branches));
                } else {
                    elements.extend(first);
                }
                if self.at_sym(".") {
                    self.bump();
                }
                continue;
            }
            let subject = self.parse_term_pattern()?;
            loop {
                let predicate = self.parse_predicate()?;
                loop {
                    let object = self.parse_term_pattern()?;
                    elements.push(PatternElement::Triple(TriplePattern {
                        subject: subject.clone(),
                        predicate: predicate.clone(),
                        object,
                    }));
                    if self.at_sym(",") {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.at_sym(";") {
                    self.bump();
                    if self.at_sym(".") || self.at_sym("}") {
                        break;
                    }
                } else {
                    break;
                }
            }
            if self.at_sym(".") {
                self.bump();
            }
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        self.prefixes
            .get(prefix)
            .map(|base| format!("{base}{local}"))
            .ok_or_else(|| SparqlError::syntax(self.line(), format!("unknown prefix '{prefix}:'")))
    }

    fn parse_predicate(&mut self) -> Result<Predicate, SparqlError> {
        if let Some(Tok::Var(_)) = self.peek() {
            let v = self.expect_var()?;
            return Ok(Predicate::Var(v));
        }
        let mut path = vec![self.parse_path_element()?];
        while self.at_sym("/") {
            self.bump();
            path.push(self.parse_path_element()?);
        }
        Ok(Predicate::Path(path))
    }

    fn parse_path_element(&mut self) -> Result<String, SparqlError> {
        match self.bump() {
            Some(Tok::Iri(iri)) => Ok(iri),
            Some(Tok::PName(p, l)) => self.resolve_pname(&p, &l),
            Some(Tok::Word(w)) if w == "a" => Ok(vocab::rdf::TYPE.to_owned()),
            other => Err(self.err(format!("expected predicate IRI, found {other:?}"))),
        }
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, SparqlError> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(TermPattern::Var(v)),
            Some(Tok::Iri(iri)) => Ok(TermPattern::Iri(iri)),
            Some(Tok::PName(p, l)) => Ok(TermPattern::Iri(self.resolve_pname(&p, &l)?)),
            Some(Tok::Literal(l)) => Ok(TermPattern::Literal(l)),
            Some(Tok::Number(n)) => Ok(TermPattern::Literal(number_literal(n))),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_and()?;
        while self.at_sym("||") {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_relational()?;
        while self.at_sym("&&") {
            self.bump();
            let right = self.parse_relational()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr, SparqlError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Tok::Sym("=")) => Some(CmpOp::Eq),
            Some(Tok::Sym("!=")) => Some(CmpOp::Ne),
            Some(Tok::Sym("<")) => Some(CmpOp::Lt),
            Some(Tok::Sym("<=")) => Some(CmpOp::Le),
            Some(Tok::Sym(">")) => Some(CmpOp::Gt),
            Some(Tok::Sym(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::cmp(left, op, right));
        }
        if self.at_keyword("IN") {
            self.bump();
            let list = self.parse_expr_list()?;
            return Ok(Expr::In(Box::new(left), list));
        }
        if self.at_keyword("NOT") {
            self.bump();
            self.eat_keyword("IN")?;
            let list = self.parse_expr_list()?;
            return Ok(Expr::Not(Box::new(Expr::In(Box::new(left), list))));
        }
        Ok(left)
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>, SparqlError> {
        self.eat_sym("(")?;
        let mut list = Vec::new();
        if !self.at_sym(")") {
            loop {
                list.push(self.parse_expr()?);
                if self.at_sym(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_sym(")")?;
        Ok(list)
    }

    fn parse_additive(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => ArithOp::Add,
                Some(Tok::Sym("-")) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => ArithOp::Mul,
                Some(Tok::Sym("/")) => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Arith(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        if self.at_sym("!") {
            self.bump();
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        if let Some(func) = self.try_parse_agg_keyword() {
            self.bump();
            self.eat_sym("(")?;
            let func = self.apply_agg_distinct(func)?;
            let inner = if func == AggFunc::Count && self.at_sym("*") {
                self.bump();
                Expr::Number(1.0)
            } else {
                self.parse_expr()?
            };
            self.eat_sym(")")?;
            return Ok(Expr::Agg(func, Box::new(inner)));
        }
        match self.peek().cloned() {
            Some(Tok::Sym("(")) => {
                self.bump();
                let e = self.parse_expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Some(Tok::Var(_)) => {
                let v = self.expect_var()?;
                Ok(Expr::Var(v))
            }
            Some(Tok::Number(n)) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            Some(Tok::Iri(iri)) => {
                self.bump();
                Ok(Expr::Iri(iri))
            }
            Some(Tok::PName(p, l)) => {
                self.bump();
                Ok(Expr::Iri(self.resolve_pname(&p, &l)?))
            }
            Some(Tok::Literal(lit)) => {
                self.bump();
                Ok(Expr::Literal(lit))
            }
            Some(Tok::Word(w)) => {
                let func = match w.to_ascii_uppercase().as_str() {
                    "TRUE" => {
                        self.bump();
                        return Ok(Expr::Bool(true));
                    }
                    "FALSE" => {
                        self.bump();
                        return Ok(Expr::Bool(false));
                    }
                    "STR" => Func::Str,
                    "LCASE" => Func::LCase,
                    "CONTAINS" => Func::Contains,
                    "BOUND" => Func::Bound,
                    "ABS" => Func::Abs,
                    "ISIRI" | "ISURI" => Func::IsIri,
                    "ISLITERAL" => Func::IsLiteral,
                    "ISNUMERIC" => Func::IsNumeric,
                    other => return Err(self.err(format!("unknown function '{other}'"))),
                };
                self.bump();
                let args = self.parse_expr_list()?;
                let arity = match func {
                    Func::Contains => 2,
                    _ => 1,
                };
                if args.len() != arity {
                    return Err(self.err(format!(
                        "{} expects {arity} argument(s), got {}",
                        func.keyword(),
                        args.len()
                    )));
                }
                Ok(Expr::Call(func, args))
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

fn number_literal(n: f64) -> Literal {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        Literal::integer(n as i64)
    } else {
        Literal::decimal(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_figure2_query() {
        let q = parse_query(
            "SELECT ?origin ?dest SUM(?obsValue) WHERE {
                ?obs <http://ex/Country_Origin> / <http://ex/In_Continent> ?origin .
                ?obs <http://ex/Country_Destination> ?dest .
                ?obs <http://ex/Num_Applicants> ?obsValue .
            } GROUP BY ?origin ?dest",
        )
        .expect("parse");
        assert_eq!(q.form, QueryForm::Select);
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[2].name(), "sum_obsValue");
        assert_eq!(q.group_by, vec!["origin", "dest"]);
        let patterns: Vec<_> = q.triple_patterns().collect();
        assert_eq!(patterns.len(), 3);
        assert_eq!(
            patterns[0].predicate.as_path().map(<[String]>::len),
            Some(2)
        );
    }

    #[test]
    fn strict_projection_alias() {
        let q = parse_query(
            "SELECT ?d (SUM(?v) AS ?total) WHERE { ?o <http://ex/p> ?d . ?o <http://ex/m> ?v } GROUP BY ?d",
        )
        .expect("parse");
        assert_eq!(q.select[1].name(), "total");
    }

    #[test]
    fn prefixes_resolve_in_patterns_and_expressions() {
        let q = parse_query(
            "PREFIX ex: <http://ex/>
             SELECT ?x WHERE { ?x a ex:Observation . FILTER(?x != ex:bad) }",
        )
        .expect("parse");
        let patterns: Vec<_> = q.triple_patterns().collect();
        assert_eq!(
            patterns[0].predicate.as_path().map(|p| p[0].as_str()),
            Some(vocab::rdf::TYPE)
        );
        let filters: Vec<_> = q.filters().collect();
        assert!(matches!(
            filters[0],
            Expr::Cmp(_, CmpOp::Ne, b) if matches!(&**b, Expr::Iri(i) if i == "http://ex/bad")
        ));
    }

    #[test]
    fn ask_form() {
        let q = parse_query("ASK { ?s <http://ex/p> ?o }").expect("parse");
        assert_eq!(q.form, QueryForm::Ask);
        let q = parse_query("ASK WHERE { ?s <http://ex/p> ?o }").expect("parse");
        assert_eq!(q.form, QueryForm::Ask);
    }

    #[test]
    fn solution_modifiers() {
        let q = parse_query(
            "SELECT DISTINCT ?x (COUNT(*) AS ?n) WHERE { ?x <http://ex/p> ?y }
             GROUP BY ?x HAVING (COUNT(*) > 2) ORDER BY DESC(?n) ?x LIMIT 10 OFFSET 5",
        )
        .expect("parse");
        assert!(q.distinct);
        assert!(q.having.as_ref().is_some_and(Expr::has_aggregate));
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].order, Order::Desc);
        assert_eq!(q.order_by[1].order, Order::Asc);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn semicolon_and_comma_sugar() {
        let q = parse_query("SELECT * WHERE { ?o <http://ex/a> ?x ; <http://ex/b> ?y , ?z . }")
            .expect("parse");
        assert_eq!(q.triple_patterns().count(), 3);
        // all share the subject
        for t in q.triple_patterns() {
            assert_eq!(t.subject.as_var(), Some("o"));
        }
    }

    #[test]
    fn less_than_vs_iri_disambiguation() {
        let q = parse_query("SELECT ?x WHERE { ?s <http://ex/p> ?x . FILTER(?x < 10 && ?x >= 2) }")
            .expect("parse");
        assert_eq!(q.filters().count(), 1);
    }

    #[test]
    fn in_and_not_in() {
        let q = parse_query(
            "SELECT ?x WHERE { ?s <http://ex/p> ?x .
             FILTER(?x IN (<http://ex/a>, <http://ex/b>)) FILTER(?x NOT IN (3)) }",
        )
        .expect("parse");
        let filters: Vec<_> = q.filters().collect();
        assert_eq!(filters.len(), 2);
        assert!(matches!(filters[0], Expr::In(_, list) if list.len() == 2));
        assert!(matches!(filters[1], Expr::Not(_)));
    }

    #[test]
    fn string_functions_and_literals() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://ex/label> ?l .
               FILTER(CONTAINS(LCASE(STR(?l)), "germany") || ?l = "X"@en || ?l = "4"^^<http://www.w3.org/2001/XMLSchema#integer>) }"#,
        )
        .expect("parse");
        assert_eq!(q.filters().count(), 1);
    }

    #[test]
    fn negative_numbers_and_arithmetic() {
        let q =
            parse_query("SELECT ?x WHERE { ?s <http://ex/p> ?x . FILTER(?x * 2 + -3 > 1 - 0.5) }")
                .expect("parse");
        assert_eq!(q.filters().count(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_query("SELECT ?x WHERE {\n ?s ?p }").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn rejects_unknown_prefix() {
        let err = parse_query("SELECT ?x WHERE { ?x a nope:Thing }").unwrap_err();
        assert!(err.to_string().contains("unknown prefix"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_query("SELECT ?x WHERE { ?x <http://ex/p> ?y } BOGUS").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn variable_predicates_supported_for_schema_discovery() {
        let q = parse_query("SELECT DISTINCT ?p WHERE { ?s ?p ?o }").expect("parse");
        let patterns: Vec<_> = q.triple_patterns().collect();
        assert_eq!(patterns[0].predicate.as_var(), Some("p"));
        assert_eq!(q.pattern_variables(), vec!["s", "p", "o"]);
    }
}
