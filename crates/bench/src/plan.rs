//! The `plan` experiment: the planner + executor ablation the ROADMAP asks
//! for — greedy selectivity-planned pattern order vs. naive textual order,
//! and vectorized columnar execution vs. row-at-a-time extension, on the
//! dbpedia M-to-N dataset (`bench_results/plan.json`).
//!
//! The workload is written to be adversarial for a naive evaluator: each
//! query's *textual* pattern order opens with a pattern disconnected from
//! the observation star (a genre → stylistic-origin hierarchy walk), so
//! [`PlanMode::InOrder`] materializes a cartesian product of the hierarchy
//! against the fact scan before the joining pattern arrives. The greedy
//! planner ([`PlanMode::Planned`]) reorders the same text into a connected
//! chain. Every configuration's solutions are compared for exact equality
//! (the `all_identical` flag): output order is pinned by `ORDER BY` over
//! every projected variable and the playCount measure is integer-valued,
//! so f64 aggregate sums are exact regardless of accumulation order.

use crate::report::{fmt_duration, Table};
use re2x_sparql::{evaluate_full, parse_query, ExecMode, PlanMode, Query, Solutions};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const NS: &str = "http://data.example.org/dbpedia/";

/// The four plan × executor configurations swept by the experiment.
pub const CONFIGS: [(&str, PlanMode, ExecMode); 4] = [
    ("planned+columnar", PlanMode::Planned, ExecMode::Columnar),
    ("planned+row", PlanMode::Planned, ExecMode::Row),
    ("in-order+columnar", PlanMode::InOrder, ExecMode::Columnar),
    ("in-order+row", PlanMode::InOrder, ExecMode::Row),
];

/// One swept configuration.
pub struct PlanRow {
    /// Configuration label (`planned+columnar`, …).
    pub config: &'static str,
    /// Join-order strategy.
    pub mode: PlanMode,
    /// Physical executor.
    pub exec: ExecMode,
    /// Wall time for the whole workload.
    pub wall: Duration,
    /// Total solution rows produced.
    pub rows: usize,
    /// Solutions equal to the planned+columnar baseline on every query.
    pub identical: bool,
}

/// Report of the planner/executor ablation.
pub struct PlanReport {
    /// Observation (song) count of the generated dbpedia dataset.
    pub observations: usize,
    /// Number of workload queries.
    pub queries: usize,
    /// One row per configuration.
    pub rows: Vec<PlanRow>,
}

impl PlanReport {
    fn wall_of(&self, config: &str) -> Duration {
        self.rows
            .iter()
            .find(|r| r.config == config)
            .map_or(Duration::ZERO, |r| r.wall)
    }

    /// The headline number: naive in-order row execution over fully
    /// planned + vectorized execution.
    pub fn planned_speedup(&self) -> f64 {
        let planned = self.wall_of("planned+columnar");
        let naive = self.wall_of("in-order+row");
        if planned.is_zero() {
            0.0
        } else {
            naive.as_secs_f64() / planned.as_secs_f64()
        }
    }

    /// Columnar over row execution under the same (planned) join order.
    pub fn columnar_speedup(&self) -> f64 {
        let col = self.wall_of("planned+columnar");
        let row = self.wall_of("planned+row");
        if col.is_zero() {
            0.0
        } else {
            row.as_secs_f64() / col.as_secs_f64()
        }
    }

    /// All configurations produced identical solutions on every query.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }

    /// Machine-readable report (`bench_results/plan.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"observations\": {},", self.observations);
        let _ = writeln!(out, "  \"queries\": {},", self.queries);
        let _ = writeln!(out, "  \"all_identical\": {},", self.all_identical());
        let _ = writeln!(out, "  \"planned_speedup\": {:.2},", self.planned_speedup());
        let _ = writeln!(
            out,
            "  \"columnar_speedup\": {:.2},",
            self.columnar_speedup()
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"config\": \"{}\", \"wall_us\": {}, \"rows\": {}, \
                 \"identical\": {}}}{comma}",
                row.config,
                row.wall.as_micros(),
                row.rows,
                row.identical,
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Human-readable summary table.
    pub fn summary(&self) -> String {
        let mut table = Table::new(["configuration", "wall", "rows", "identical"]);
        for row in &self.rows {
            table.row([
                row.config.to_owned(),
                fmt_duration(row.wall),
                row.rows.to_string(),
                row.identical.to_string(),
            ]);
        }
        let mut out = table.render();
        let _ = writeln!(
            out,
            "\n{} adversarially-ordered queries on {} dbpedia observations; \
             planned+columnar over in-order+row: {:.2}x; \
             columnar over row (same plan): {:.2}x; identical: {}",
            self.queries,
            self.observations,
            self.planned_speedup(),
            self.columnar_speedup(),
            self.all_identical(),
        );
        out
    }
}

/// The adversarial workload: every query's textual order leads with a
/// hierarchy pattern disconnected from the observation star.
fn workload() -> Vec<Query> {
    [
        // M-to-N: songs carry 1–3 genres, genres several stylistic origins.
        format!(
            "SELECT ?g ?so (SUM(?v) AS ?total) WHERE {{
                ?g <{NS}stylisticOrigin> ?so .
                ?o <{NS}playCount> ?v .
                ?o <{NS}genre> ?g
             }} GROUP BY ?g ?so ORDER BY ?g ?so"
        ),
        // two-hop hierarchy walk ahead of the star
        format!(
            "SELECT ?so ?e (COUNT(?o) AS ?n) WHERE {{
                ?so <{NS}era> ?e .
                ?g <{NS}stylisticOrigin> ?so .
                ?o <{NS}genre> ?g .
                ?o a <{NS}CreativeWork>
             }} GROUP BY ?so ?e ORDER BY ?so ?e"
        ),
        // non-aggregate row listing with the same disconnected opening
        format!(
            "SELECT ?o ?g ?p WHERE {{
                ?g <{NS}parentGenre> ?p .
                ?o <{NS}genre> ?g
             }} ORDER BY ?o ?g ?p LIMIT 500"
        ),
    ]
    .into_iter()
    .map(|text| parse_query(&text).expect("workload query parses"))
    .collect()
}

/// Runs the ablation on a dbpedia dataset of `observations` songs.
pub fn run(observations: usize, seed: u64) -> PlanReport {
    let dataset = re2x_datagen::dbpedia::generate(observations, seed);
    let graph = &dataset.graph;
    let queries = workload();

    let mut rows: Vec<PlanRow> = Vec::new();
    let mut baseline: Vec<Solutions> = Vec::new();
    for (config, mode, exec) in CONFIGS {
        let start = Instant::now();
        let results: Vec<Solutions> = queries
            .iter()
            .map(|q| evaluate_full(graph, q, mode, exec).expect("workload query evaluates"))
            .collect();
        let wall = start.elapsed();
        // identity check outside the timed region
        let identical = baseline.is_empty() || results == baseline;
        if baseline.is_empty() {
            baseline = results.clone();
        }
        rows.push(PlanRow {
            config,
            mode,
            exec,
            wall,
            rows: results.iter().map(Solutions::len).sum(),
            identical,
        });
    }
    PlanReport {
        observations,
        queries: queries.len(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_is_identical_across_configs() {
        // Small scale: correctness of the sweep machinery, not timing (the
        // ≥1.5x speedup is gated at full scale by scripts/verify.sh).
        let report = run(120, 7);
        assert!(report.all_identical());
        assert_eq!(report.rows.len(), CONFIGS.len());
        assert!(report.rows.iter().all(|r| r.rows > 0));
        let json = report.to_json();
        assert!(json.contains("\"all_identical\": true"));
        assert!(json.contains("\"config\": \"in-order+row\""));
    }
}
