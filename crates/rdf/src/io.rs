//! Serialization: N-Triples (full) and a pragmatic Turtle subset.
//!
//! The Turtle subset covers the constructs produced by common statistical-KG
//! exports and our own serializer: `@prefix`/`PREFIX` declarations, prefixed
//! names, `a`, predicate lists (`;`), object lists (`,`), blank-node labels,
//! and numeric / boolean literal shorthand. Collections and anonymous
//! blank-node property lists are rejected with a clear error.

use crate::error::RdfError;
use crate::graph::Graph;
use crate::hash::FxHashMap;
use crate::term::{Literal, Term};
use crate::vocab;

/// Parses N-Triples input into `graph`, returning the number of (distinct)
/// triples inserted.
pub fn parse_ntriples(input: &str, graph: &mut Graph) -> Result<usize, RdfError> {
    // N-Triples is a syntactic subset of Turtle without prefixes.
    let mut parser = TurtleParser::new(input, false);
    parser.parse_into(graph)
}

/// Parses Turtle input into `graph`, returning the number of (distinct)
/// triples inserted.
pub fn parse_turtle(input: &str, graph: &mut Graph) -> Result<usize, RdfError> {
    let mut parser = TurtleParser::new(input, true);
    parser.parse_into(graph)
}

/// Serializes the whole graph as N-Triples (one triple per line, sorted for
/// deterministic output).
pub fn to_ntriples(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph
        .iter()
        .into_iter()
        .map(|t| {
            format!(
                "{} {} {} .",
                graph.term(t.s),
                graph.term(t.p),
                graph.term(t.o)
            )
        })
        .collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

struct TurtleParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    allow_turtle: bool,
    prefixes: FxHashMap<String, String>,
}

impl<'a> TurtleParser<'a> {
    fn new(input: &'a str, allow_turtle: bool) -> Self {
        TurtleParser {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            allow_turtle,
            prefixes: FxHashMap::default(),
        }
    }

    fn err(&self, message: impl Into<String>) -> RdfError {
        RdfError::syntax(self.line, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws_and_comments(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), RdfError> {
        match self.peek() {
            Some(b) if b == expected => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!(
                "expected '{}', found {:?}",
                expected as char,
                other.map(|b| b as char)
            ))),
        }
    }

    fn parse_into(&mut self, graph: &mut Graph) -> Result<usize, RdfError> {
        let mut inserted = 0;
        loop {
            self.skip_ws_and_comments();
            if self.peek().is_none() {
                return Ok(inserted);
            }
            if self.allow_turtle && self.try_parse_directive()? {
                continue;
            }
            inserted += self.parse_statement(graph)?;
        }
    }

    /// Parses `@prefix p: <iri> .` / `PREFIX p: <iri>` / `@base`. Returns
    /// `true` if a directive was consumed.
    fn try_parse_directive(&mut self) -> Result<bool, RdfError> {
        let start = self.pos;
        let at_form = self.peek() == Some(b'@');
        let keyword = if at_form {
            self.bump();
            self.read_word()
        } else {
            let w = self.read_word();
            w.to_ascii_lowercase()
        };
        match keyword.as_str() {
            "prefix" => {
                self.skip_ws_and_comments();
                let label = self.read_prefix_label()?;
                self.eat(b':')?;
                self.skip_ws_and_comments();
                let iri = self.parse_iri_ref()?;
                self.prefixes.insert(label, iri);
                self.skip_ws_and_comments();
                if at_form {
                    self.eat(b'.')?;
                } else if self.peek() == Some(b'.') {
                    self.bump();
                }
                Ok(true)
            }
            "base" => {
                self.skip_ws_and_comments();
                let _ = self.parse_iri_ref()?;
                self.skip_ws_and_comments();
                if at_form {
                    self.eat(b'.')?;
                } else if self.peek() == Some(b'.') {
                    self.bump();
                }
                Ok(true)
            }
            _ => {
                self.pos = start;
                Ok(false)
            }
        }
    }

    fn read_word(&mut self) -> String {
        let mut word = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphabetic() {
                word.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        word
    }

    fn read_prefix_label(&mut self) -> Result<String, RdfError> {
        let mut label = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                label.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        Ok(label)
    }

    /// One `subject predicateObjectList .` statement. Returns the number of
    /// distinct triples inserted.
    fn parse_statement(&mut self, graph: &mut Graph) -> Result<usize, RdfError> {
        let subject = self.parse_term(TermPosition::Subject)?;
        let s = graph.intern(subject);
        let mut inserted = 0;
        loop {
            self.skip_ws_and_comments();
            let predicate = self.parse_predicate()?;
            let p = graph.intern(predicate);
            loop {
                self.skip_ws_and_comments();
                let object = self.parse_term(TermPosition::Object)?;
                let o = graph.intern(object);
                if graph.insert_ids(s, p, o) {
                    inserted += 1;
                }
                self.skip_ws_and_comments();
                match self.peek() {
                    Some(b',') if self.allow_turtle => {
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some(b';') if self.allow_turtle => {
                    self.bump();
                    self.skip_ws_and_comments();
                    // A trailing ';' before '.' is legal Turtle.
                    if self.peek() == Some(b'.') {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.skip_ws_and_comments();
        self.eat(b'.')?;
        Ok(inserted)
    }

    fn parse_predicate(&mut self) -> Result<Term, RdfError> {
        if self.allow_turtle && self.peek() == Some(b'a') {
            // `a` only counts as rdf:type when followed by a delimiter.
            let next = self.bytes.get(self.pos + 1).copied();
            if next.is_none_or(|b| b.is_ascii_whitespace() || b == b'<') {
                self.bump();
                return Ok(Term::iri(vocab::rdf::TYPE));
            }
        }
        match self.parse_term(TermPosition::Predicate)? {
            t @ Term::Iri(_) => Ok(t),
            other => Err(self.err(format!("predicate must be an IRI, found {other}"))),
        }
    }

    fn parse_term(&mut self, position: TermPosition) -> Result<Term, RdfError> {
        self.skip_ws_and_comments();
        match self.peek() {
            Some(b'<') => Ok(Term::iri(self.parse_iri_ref()?)),
            Some(b'_') => {
                if position == TermPosition::Predicate {
                    return Err(self.err("predicate must be an IRI, found blank node"));
                }
                self.bump();
                self.eat(b':')?;
                let mut label = String::new();
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                        label.push(b as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if label.is_empty() {
                    return Err(self.err("empty blank node label"));
                }
                Ok(Term::blank(label))
            }
            Some(b'"') => {
                if position != TermPosition::Object {
                    return Err(self.err("literal allowed only in object position"));
                }
                self.parse_literal().map(Term::Literal)
            }
            Some(b'[') => Err(self.err("anonymous blank nodes '[]' are not supported")),
            Some(b'(') => Err(self.err("collections '( .. )' are not supported")),
            Some(b) if self.allow_turtle && (b.is_ascii_digit() || b == b'+' || b == b'-') => {
                if position != TermPosition::Object {
                    return Err(self.err("numeric literal allowed only in object position"));
                }
                self.parse_numeric_shorthand().map(Term::Literal)
            }
            Some(_) if self.allow_turtle => {
                // prefixed name, or `true` / `false`
                let start = self.pos;
                let pname = self.parse_pname();
                match pname {
                    Ok(term) => Ok(term),
                    Err(e) => {
                        self.pos = start;
                        Err(e)
                    }
                }
            }
            other => Err(self.err(format!(
                "unexpected {:?} while reading a term",
                other.map(|b| b as char)
            ))),
        }
    }

    fn parse_iri_ref(&mut self) -> Result<String, RdfError> {
        self.eat(b'<')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'>' {
                let iri = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in IRI"))?
                    .to_owned();
                self.bump();
                if iri.chars().any(|c| c.is_whitespace()) {
                    return Err(self.err("whitespace inside IRI"));
                }
                return Ok(iri);
            }
            if b == b'\n' {
                return Err(self.err("unterminated IRI"));
            }
            self.bump();
        }
        Err(self.err("unterminated IRI"))
    }

    fn parse_literal(&mut self) -> Result<Literal, RdfError> {
        self.eat(b'"')?;
        let mut lexical = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => lexical.push('\n'),
                    Some(b'r') => lexical.push('\r'),
                    Some(b't') => lexical.push('\t'),
                    Some(b'"') => lexical.push('"'),
                    Some(b'\\') => lexical.push('\\'),
                    Some(b'u') => lexical.push(self.parse_unicode_escape(4)?),
                    Some(b'U') => lexical.push(self.parse_unicode_escape(8)?),
                    other => {
                        return Err(
                            self.err(format!("invalid escape \\{:?}", other.map(|b| b as char)))
                        )
                    }
                },
                Some(b) if b < 0x80 => lexical.push(b as char),
                Some(b) => {
                    // Re-assemble a multi-byte UTF-8 sequence.
                    let extra = match b {
                        0xC0..=0xDF => 1,
                        0xE0..=0xEF => 2,
                        _ => 3,
                    };
                    let mut buf = vec![b];
                    for _ in 0..extra {
                        buf.push(self.bump().ok_or_else(|| self.err("truncated utf-8"))?);
                    }
                    let s = String::from_utf8(buf).map_err(|_| self.err("invalid utf-8"))?;
                    lexical.push_str(&s);
                }
            }
        }
        match self.peek() {
            Some(b'^') => {
                self.bump();
                self.eat(b'^')?;
                self.skip_ws_and_comments();
                let datatype = if self.peek() == Some(b'<') {
                    self.parse_iri_ref()?
                } else if self.allow_turtle {
                    match self.parse_pname()? {
                        Term::Iri(iri) => iri.into_string(),
                        _ => return Err(self.err("datatype must be an IRI")),
                    }
                } else {
                    return Err(self.err("expected datatype IRI after '^^'"));
                };
                Ok(Literal::typed(lexical, datatype))
            }
            Some(b'@') => {
                self.bump();
                let mut tag = String::new();
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        tag.push(b as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if tag.is_empty() {
                    return Err(self.err("empty language tag"));
                }
                Ok(Literal::tagged(lexical, tag))
            }
            _ => Ok(Literal::simple(lexical)),
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, RdfError> {
        let mut value = 0u32;
        for _ in 0..digits {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            value = value * 16 + d;
        }
        char::from_u32(value).ok_or_else(|| self.err("invalid unicode code point"))
    }

    fn parse_numeric_shorthand(&mut self) -> Result<Literal, RdfError> {
        let mut text = String::new();
        if let Some(sign @ (b'+' | b'-')) = self.peek() {
            self.bump();
            text.push(sign as char);
        }
        let mut has_dot = false;
        let mut has_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                    text.push(b as char);
                }
                b'.' if !has_dot && !has_exp => {
                    // a '.' followed by a non-digit terminates the statement
                    if !self
                        .bytes
                        .get(self.pos + 1)
                        .copied()
                        .is_some_and(|c| c.is_ascii_digit())
                    {
                        break;
                    }
                    has_dot = true;
                    self.bump();
                    text.push(b as char);
                }
                b'e' | b'E' if !has_exp => {
                    has_exp = true;
                    self.bump();
                    text.push(b as char);
                    if let Some(sign @ (b'+' | b'-')) = self.peek() {
                        self.bump();
                        text.push(sign as char);
                    }
                }
                _ => break,
            }
        }
        if text.is_empty() || text == "+" || text == "-" {
            return Err(self.err("malformed numeric literal"));
        }
        let datatype = if has_exp {
            vocab::xsd::DOUBLE
        } else if has_dot {
            vocab::xsd::DECIMAL
        } else {
            vocab::xsd::INTEGER
        };
        Ok(Literal::typed(text, datatype))
    }

    fn parse_pname(&mut self) -> Result<Term, RdfError> {
        let label = self.read_prefix_label()?;
        if self.peek() != Some(b':') {
            return match label.as_str() {
                "true" | "false" => Ok(Term::Literal(Literal::typed(label, vocab::xsd::BOOLEAN))),
                _ => Err(self.err(format!("expected ':' after prefix label '{label}'"))),
            };
        }
        self.bump();
        let Some(base) = self.prefixes.get(&label).cloned() else {
            return Err(RdfError::UnknownPrefix {
                line: self.line,
                prefix: label,
            });
        };
        let mut local = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                local.push(b as char);
                self.bump();
            } else if b == b'.'
                && self
                    .bytes
                    .get(self.pos + 1)
                    .copied()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                // internal dots are legal in local names; a trailing dot
                // terminates the statement instead.
                local.push('.');
                self.bump();
            } else {
                break;
            }
        }
        Ok(Term::iri(format!("{base}{local}")))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TermPosition {
    Subject,
    Predicate,
    Object,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntriples_round_trip() {
        let input = "\
<http://ex/obs1> <http://ex/origin> <http://ex/Syria> .
<http://ex/Syria> <http://ex/label> \"Syria\" .
<http://ex/obs1> <http://ex/applicants> \"403\"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/Syria> <http://ex/label> \"Syrie\"@fr .
_:b0 <http://ex/p> \"line\\nbreak\" .
";
        let mut g = Graph::new();
        let n = parse_ntriples(input, &mut g).expect("parse");
        assert_eq!(n, 5);
        let serialized = to_ntriples(&g);
        let mut g2 = Graph::new();
        parse_ntriples(&serialized, &mut g2).expect("reparse");
        assert_eq!(g2.len(), 5);
        assert_eq!(to_ntriples(&g2), serialized);
    }

    #[test]
    fn ntriples_rejects_prefixed_names() {
        let mut g = Graph::new();
        assert!(parse_ntriples("ex:a ex:b ex:c .", &mut g).is_err());
    }

    #[test]
    fn turtle_prefixes_and_sugar() {
        let input = "\
@prefix ex: <http://ex/> .
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
ex:obs1 a ex:Observation ;
    ex:origin ex:Syria , ex:Iraq ;
    ex:applicants 403 ;
    ex:rate 4.5 ;
    ex:scale 1.0e3 ;
    ex:valid true .
";
        let mut g = Graph::new();
        let n = parse_turtle(input, &mut g).expect("parse");
        assert_eq!(n, 7);
        let obs = g.iri_id("http://ex/obs1").expect("obs interned");
        let a = g.iri_id(vocab::rdf::TYPE).expect("rdf:type interned");
        assert_eq!(g.objects(obs, a).len(), 1);
        let applicants = g.iri_id("http://ex/applicants").expect("pred");
        let v = g.objects(obs, applicants)[0];
        assert_eq!(g.numeric_value(v), Some(403.0));
        let rate = g.iri_id("http://ex/rate").expect("pred");
        assert_eq!(g.numeric_value(g.objects(obs, rate)[0]), Some(4.5));
        let scale = g.iri_id("http://ex/scale").expect("pred");
        assert_eq!(g.numeric_value(g.objects(obs, scale)[0]), Some(1000.0));
    }

    #[test]
    fn turtle_unknown_prefix_is_reported() {
        let mut g = Graph::new();
        let err = parse_turtle("nope:a nope:b nope:c .", &mut g).unwrap_err();
        assert!(matches!(err, RdfError::UnknownPrefix { .. }), "{err}");
    }

    #[test]
    fn turtle_local_names_with_dots() {
        let input = "@prefix ex: <http://ex/> .\nex:a.b ex:p ex:c .";
        let mut g = Graph::new();
        parse_turtle(input, &mut g).expect("parse");
        assert!(g.iri_id("http://ex/a.b").is_some());
    }

    #[test]
    fn literal_escapes_and_unicode() {
        let input = r#"<http://ex/s> <http://ex/p> "tab\there é" ."#;
        let mut g = Graph::new();
        parse_ntriples(input, &mut g).expect("parse");
        let t = g.iter()[0];
        let lit = g.term(t.o).as_literal().expect("literal");
        assert_eq!(lit.lexical(), "tab\there é");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let input = "# header\n\n<http://ex/s> <http://ex/p> <http://ex/o> . # trailing\n";
        let mut g = Graph::new();
        assert_eq!(parse_ntriples(input, &mut g).expect("parse"), 1);
    }

    #[test]
    fn duplicate_triples_counted_once() {
        let input = "<http://ex/s> <http://ex/p> <http://ex/o> .\n<http://ex/s> <http://ex/p> <http://ex/o> .";
        let mut g = Graph::new();
        assert_eq!(parse_ntriples(input, &mut g).expect("parse"), 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn unsupported_constructs_error_clearly() {
        let mut g = Graph::new();
        let e = parse_turtle(
            "@prefix ex: <http://ex/> .\nex:s ex:p [ ex:q ex:r ] .",
            &mut g,
        )
        .unwrap_err();
        assert!(e.to_string().contains("not supported"));
        let e = parse_turtle("@prefix ex: <http://ex/> .\nex:s ex:p (1 2) .", &mut g).unwrap_err();
        assert!(e.to_string().contains("not supported"));
    }

    #[test]
    fn error_line_numbers_are_accurate() {
        let input = "<http://ex/s> <http://ex/p> <http://ex/o> .\n<http://ex/s> <http://ex/p> .";
        let mut g = Graph::new();
        let err = parse_ntriples(input, &mut g).unwrap_err();
        match err {
            RdfError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn language_tagged_round_trip() {
        let input = "<http://ex/s> <http://ex/p> \"Wien\"@de-AT .";
        let mut g = Graph::new();
        parse_ntriples(input, &mut g).expect("parse");
        let t = g.iter()[0];
        assert_eq!(
            g.term(t.o).as_literal().and_then(|l| l.language()),
            Some("de-at")
        );
    }
}
