//! Integration tests of the observability layer (`re2x-obs`) threaded
//! through the whole pipeline: span nesting in the exported JSONL event
//! log, query provenance reconciling exactly with [`EndpointStats`] —
//! serially and under `bootstrap_parallel` — per-phase cache accounting,
//! and the `trace` experiment's "endpoint dominates" claim.

use re2x_cube::{bootstrap, bootstrap_parallel, BootstrapConfig};
use re2x_obs::{events_to_jsonl, TraceEvent, Tracer};
use re2x_sparql::{CachingEndpoint, LocalEndpoint, SparqlEndpoint, TracingEndpoint};
use re2xolap::{RefineOp, Session, SessionConfig};
use std::collections::HashMap;
use std::time::Duration;

/// Runs the full pipeline (bootstrap → synthesize → choose → refine →
/// apply) over the running-example dataset with the given tracer.
fn run_pipeline(tracer: &Tracer, parallel: bool) -> re2x_sparql::EndpointStats {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = TracingEndpoint::new(LocalEndpoint::new(graph), tracer.clone());

    let config = BootstrapConfig::new(&dataset.observation_class).with_tracer(tracer.clone());
    let report = if parallel {
        bootstrap_parallel(&endpoint, &config).expect("bootstrap")
    } else {
        bootstrap(&endpoint, &config).expect("bootstrap")
    };

    let mut session = Session::new(
        &endpoint,
        &report.schema,
        SessionConfig {
            tracer: tracer.clone(),
            ..SessionConfig::default()
        },
    );
    let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
    session.choose(outcome.queries[0].clone()).expect("runs");
    let dis = session.refinements(RefineOp::Disaggregate).expect("refine");
    session
        .apply(dis.into_iter().next().expect("one"))
        .expect("runs");
    endpoint.stats()
}

#[test]
fn jsonl_spans_nest_and_self_is_bounded_by_wall() {
    let tracer = Tracer::enabled();
    run_pipeline(&tracer, true);
    let events = tracer.take_events();

    // every exit matches exactly one enter, with the same path
    let mut entered: HashMap<u64, &str> = HashMap::new();
    let mut exited = 0usize;
    for event in &events {
        match event {
            TraceEvent::Enter { span, path, .. } => {
                let fresh = entered.insert(*span, path).is_none();
                assert!(fresh, "span id {span} entered twice");
            }
            TraceEvent::Exit {
                span,
                path,
                wall,
                self_time,
                ..
            } => {
                let enter_path = entered
                    .get(span)
                    .unwrap_or_else(|| panic!("exit of span {span} without an enter"));
                assert_eq!(enter_path, path, "exit path mismatch for span {span}");
                assert!(
                    self_time <= wall,
                    "span {path}: self {self_time:?} > wall {wall:?}"
                );
                exited += 1;
            }
            TraceEvent::Query { .. } | TraceEvent::Cache { .. } => {}
        }
    }
    assert_eq!(exited, entered.len(), "every entered span also exited");
    assert!(entered.len() >= 10, "pipeline produced a real span tree");

    // parent links nest: every child's path extends its parent's path
    let paths: HashMap<u64, String> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Enter { span, path, .. } => Some((*span, path.clone())),
            _ => None,
        })
        .collect();
    for event in &events {
        if let TraceEvent::Enter {
            path,
            parent: Some(parent),
            ..
        } = event
        {
            let parent_path = &paths[parent];
            assert!(
                path.starts_with(&format!("{parent_path}/")),
                "child {path} does not extend parent {parent_path}"
            );
        }
    }

    // the JSONL export carries one object per event
    let jsonl = events_to_jsonl(&events);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), events.len());
    for line in lines {
        assert!(line.starts_with("{\"type\":\""), "not an object: {line}");
        assert!(line.ends_with('}'), "truncated line: {line}");
    }
}

#[test]
fn provenance_sums_to_endpoint_stats_serial() {
    let tracer = Tracer::enabled();
    let stats = run_pipeline(&tracer, false);
    let attributed: u64 = tracer.provenance().iter().map(|(_, s)| s.queries()).sum();
    assert_eq!(attributed, stats.total_queries());
}

#[test]
fn provenance_sums_to_endpoint_stats_under_bootstrap_parallel() {
    let tracer = Tracer::enabled();
    let stats = run_pipeline(&tracer, true);
    let provenance = tracer.provenance();
    let attributed: u64 = provenance.iter().map(|(_, s)| s.queries()).sum();
    assert_eq!(attributed, stats.total_queries());
    // the parallel dimension crawls attribute to the bootstrap subtree
    let bootstrap_queries: u64 = provenance
        .iter()
        .filter(|(path, _)| path.contains("bootstrap"))
        .map(|(_, s)| s.queries())
        .sum();
    assert!(bootstrap_queries > 0, "bootstrap spans carry queries");
    // per-kind totals reconcile too, not just the grand total
    let selects: u64 = provenance.iter().map(|(_, s)| s.selects).sum();
    let asks: u64 = provenance.iter().map(|(_, s)| s.asks).sum();
    let keywords: u64 = provenance.iter().map(|(_, s)| s.keyword_searches).sum();
    assert_eq!(selects, stats.selects);
    assert_eq!(asks, stats.asks);
    assert_eq!(keywords, stats.keyword_searches);
}

#[test]
fn cache_outcomes_attribute_per_phase() {
    let tracer = Tracer::enabled();
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = CachingEndpoint::new(LocalEndpoint::new(graph)).with_tracer(tracer.clone());

    let query = re2x_sparql::parse_query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 3").expect("parses");
    {
        let _warm = tracer.span("phase.warmup");
        endpoint.select(&query).expect("runs");
    }
    {
        let _probe = tracer.span("phase.probe");
        endpoint.select(&query).expect("hit");
        endpoint.select(&query).expect("hit");
    }

    let provenance = tracer.provenance();
    let of = |phase: &str| {
        provenance
            .iter()
            .find(|(p, _)| p == phase)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    };
    assert_eq!(of("phase.warmup").cache_misses, 1);
    assert_eq!(of("phase.warmup").cache_hits, 0);
    assert_eq!(of("phase.probe").cache_hits, 2);
    assert_eq!(of("phase.probe").cache_misses, 0);

    // per-phase cache events sum to the endpoint's aggregate counters
    let stats = endpoint.stats();
    let hits: u64 = provenance.iter().map(|(_, s)| s.cache_hits).sum();
    let misses: u64 = provenance.iter().map(|(_, s)| s.cache_misses).sum();
    assert_eq!(hits, stats.cache_hits);
    assert_eq!(misses, stats.cache_misses);
}

#[test]
fn trace_experiment_endpoint_dominates() {
    // With injected per-query latency the endpoint accounts for ≥ 80% of
    // pipeline wall time — the paper's motivating observation, and the
    // acceptance bar for the `repro trace` artifact.
    let report = re2x_bench::trace::run(Duration::from_millis(2));
    assert!(
        report.endpoint_fraction() >= 0.8,
        "endpoint fraction {:.2} below 0.8 (wall {:?}, busy {:?})",
        report.endpoint_fraction(),
        report.pipeline_wall,
        report.stats.busy,
    );
    let json = report.to_json();
    assert!(json.contains("\"endpoint_fraction\""));
    assert!(json.contains("\"phases\""));
}
