//! forbid-unsafe FIRE fixture: a crate root (linted as `src/lib.rs`)
//! missing the `#![forbid(unsafe_code)]` attribute.

#![warn(missing_docs)]

pub fn harmless() {}
