//! lock-order FIRE fixture: two registered locks acquired in both
//! nesting orders — `fx.alpha -> fx.beta` in `forward` and
//! `fx.beta -> fx.alpha` in `backward` — so the workspace graph has a
//! cycle and a thread interleaving can deadlock.

use std::sync::Mutex;

pub struct Pair {
    // lock-order: fx.alpha
    alpha: Mutex<u32>,
    // lock-order: fx.beta
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = lock_or_recover(&self.alpha);
        let b = lock_or_recover(&self.beta);
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = lock_or_recover(&self.beta);
        let a = lock_or_recover(&self.alpha);
        *a + *b
    }
}
