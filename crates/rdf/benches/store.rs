//! Micro-benchmarks of the triple store: bulk insert throughput, pattern
//! scans through each index, and full-text lookup.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use re2x_rdf::{Graph, Literal, Term};

const N: usize = 50_000;

fn build_graph() -> Graph {
    let mut g = Graph::new();
    let dest = g.intern_iri("http://ex/dest");
    let value = g.intern_iri("http://ex/value");
    let label = g.intern_iri("http://ex/label");
    let members: Vec<_> = (0..100)
        .map(|i| {
            let m = g.intern_iri(format!("http://ex/member/{i}"));
            let l = g.intern_literal(Literal::simple(format!("Member {i}")));
            g.insert_ids(m, label, l);
            m
        })
        .collect();
    for j in 0..N {
        let obs = g.intern_iri(format!("http://ex/obs/{j}"));
        g.insert_ids(obs, dest, members[j % members.len()]);
        let v = g.intern_literal(Literal::integer((j % 977) as i64));
        g.insert_ids(obs, value, v);
    }
    g
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(10);

    group.throughput(Throughput::Elements(N as u64 * 2));
    group.bench_function("bulk_insert_100k_triples", |b| {
        b.iter_batched(Graph::new, |_g| build_graph(), BatchSize::PerIteration)
    });

    let g = build_graph();
    let dest = g.iri_id("http://ex/dest").expect("pred");
    let member0 = g.iri_id("http://ex/member/0").expect("member");

    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("scan_by_predicate", |b| {
        b.iter(|| {
            let mut n = 0usize;
            g.for_each_matching(None, Some(dest), None, |_| n += 1);
            n
        })
    });

    group.throughput(Throughput::Elements((N / 100) as u64));
    group.bench_function("scan_by_predicate_object", |b| {
        b.iter(|| g.subjects(dest, member0).len())
    });

    group.throughput(Throughput::Elements(1));
    group.bench_function("text_exact_lookup", |b| {
        b.iter(|| g.literals_matching_exact("Member 42").len())
    });

    group.bench_function("count_matching_wildcards", |b| {
        b.iter(|| g.count_matching(None, None, None))
    });
    group.finish();

    // serialization throughput
    let mut ser = c.benchmark_group("serialization");
    ser.sample_size(10);
    ser.throughput(Throughput::Elements(g.len() as u64));
    ser.bench_function("to_ntriples", |b| b.iter(|| re2x_rdf::io::to_ntriples(&g)));
    let text = re2x_rdf::io::to_ntriples(&g);
    ser.bench_function("parse_ntriples", |b| {
        b.iter_batched(
            Graph::new,
            |mut fresh| {
                re2x_rdf::io::parse_ntriples(&text, &mut fresh).expect("parse");
                fresh
            },
            BatchSize::PerIteration,
        )
    });
    ser.finish();

    // keep Term in the public surface exercised
    let _ = Term::iri("http://ex/x");
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
