//! Bootstrap discovery against the three Table 3 generators: the crawler
//! must recover exactly the schema shape each generator commits to, from
//! nothing but {endpoint, observation class}.

use re2x_cube::{bootstrap, qb, BootstrapConfig};
use re2x_datagen::Dataset;
use re2x_sparql::LocalEndpoint;

fn prepare(mut dataset: Dataset) -> (Dataset, LocalEndpoint, re2x_cube::BootstrapReport) {
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let report =
        bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class)).expect("bootstrap");
    (dataset, endpoint, report)
}

#[test]
fn eurostat_shape_is_exact() {
    // 2 000 observations ≥ the largest base pool (171 countries), so every
    // member is reachable and the Table 3 row is reproduced exactly.
    let (dataset, _ep, report) = prepare(re2x_datagen::eurostat::generate(2_000, 1));
    let stats = report.schema.stats();
    assert_eq!(stats.dimensions, dataset.expected.dimensions);
    assert_eq!(stats.measures, dataset.expected.measures);
    assert_eq!(stats.levels, dataset.expected.levels);
    assert_eq!(stats.members, dataset.expected.members, "N_D = 373");
    // the destination hierarchy reaches exactly 2 continents and 5 regions
    let geo = report
        .schema
        .dimension_by_predicate("http://data.example.org/eurostat/geo")
        .expect("geo dimension");
    let counts: Vec<(usize, usize)> = report
        .schema
        .levels_of(geo)
        .map(|l| (l.depth(), l.member_count))
        .collect();
    assert!(counts.contains(&(1, 32)), "{counts:?}");
    assert!(
        counts.contains(&(2, 2)) && counts.contains(&(2, 5)),
        "{counts:?}"
    );
}

#[test]
fn production_shape_is_exact_when_covered() {
    // the product pool (6 153) is the largest base level: with 7 000
    // observations every member is used
    let (dataset, _ep, report) = prepare(re2x_datagen::production::generate(7_000, 1));
    let stats = report.schema.stats();
    assert_eq!(stats.dimensions, 7);
    assert_eq!(stats.levels, 9);
    assert_eq!(stats.members, dataset.expected.members, "N_D = 6444");
}

#[test]
fn dbpedia_structure_holds_at_any_scale() {
    let (dataset, _ep, report) = prepare(re2x_datagen::dbpedia::generate(2_000, 1));
    let stats = report.schema.stats();
    assert_eq!(stats.dimensions, 5);
    assert_eq!(stats.levels, 23, "the 23-level tree is scale-independent");
    assert_eq!(stats.hierarchies, 14, "|H| = 14 as in Table 3");
    // member counts undershoot at this scale (artists pool not covered)
    assert!(stats.members < dataset.expected.members);
    // deep level exists: genre → stylisticOrigin → era
    let era = report.schema.levels().iter().find(|l| l.depth() == 3);
    assert!(era.is_some());
}

#[test]
fn vgraph_is_orders_of_magnitude_smaller_than_the_store() {
    let (_dataset, ep, report) = prepare(re2x_datagen::eurostat::generate(2_000, 1));
    let store = re2x_sparql::SparqlEndpoint::graph(&ep).heap_bytes();
    let vgraph = report.schema.heap_bytes();
    assert!(
        vgraph * 100 < store,
        "vgraph {vgraph} B should be ≪ store {store} B"
    );
}

#[test]
fn qb_annotations_describe_the_discovered_schema() {
    let (_dataset, _ep, report) = prepare(re2x_datagen::eurostat::generate(500, 1));
    let mut annotations = re2x_rdf::Graph::new();
    let inserted = qb::annotate(&report.schema, &mut annotations);
    assert!(inserted > 0);
    let type_p = annotations
        .iri_id(re2x_rdf::vocab::rdf::TYPE)
        .expect("typed");
    let dim_c = annotations
        .iri_id(re2x_rdf::vocab::qb::DIMENSION_PROPERTY)
        .expect("dims");
    assert_eq!(
        annotations.subjects(type_p, dim_c).len(),
        report.schema.dimensions().len()
    );
    let lvl_c = annotations
        .iri_id(re2x_rdf::vocab::qb4o::LEVEL_PROPERTY)
        .expect("levels");
    assert_eq!(
        annotations.subjects(type_p, lvl_c).len(),
        report.schema.levels().len()
    );
}

#[test]
fn bootstrap_is_deterministic() {
    let (_d1, _e1, r1) = prepare(re2x_datagen::eurostat::generate(1_000, 9));
    let (_d2, _e2, r2) = prepare(re2x_datagen::eurostat::generate(1_000, 9));
    assert_eq!(r1.schema.stats(), r2.schema.stats());
    assert_eq!(r1.endpoint_queries, r2.endpoint_queries);
    let paths1: Vec<_> = r1.schema.levels().iter().map(|l| l.path.clone()).collect();
    let paths2: Vec<_> = r2.schema.levels().iter().map(|l| l.path.clone()).collect();
    assert_eq!(paths1, paths2);
}

#[test]
fn annotated_store_can_skip_the_crawl() {
    // bootstrap → annotate → import: stores carrying QB(+re2x) metadata
    // reconstruct the schema without any crawling
    let (_dataset, ep, report) = prepare(re2x_datagen::eurostat::generate(800, 2));
    let mut annotations = re2x_rdf::Graph::new();
    qb::annotate(&report.schema, &mut annotations);
    let imported = qb::from_annotations(&annotations).expect("import");
    assert_eq!(imported.stats(), report.schema.stats());
    assert_eq!(imported.observation_count, report.schema.observation_count);
    // every level keeps its path, count and dimension
    for level in report.schema.levels() {
        let found = imported.level_by_path(&level.path).expect("kept");
        assert_eq!(imported.level(found).member_count, level.member_count);
    }
    let _ = ep;
}
