#!/usr/bin/env bash
# Full offline verification gate: tier-1 (release build + tests) plus the
# complete workspace test suite, with warnings promoted to errors.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export CARGO_NET_OFFLINE="true"

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "== bench targets compile (bench-criterion) =="
cargo build --offline -p re2x-bench --benches --features bench-criterion

echo "== trace experiment (smallest dataset, offline) =="
# The trace experiment runs on the in-memory running-example generator —
# no datasets, no network — and must emit a well-formed trace.json.
cargo run --release --offline -p re2x-bench --bin repro -- --out bench_results trace
if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool bench_results/trace.json > /dev/null
    echo "trace.json: valid JSON"
else
    # no python3 in the environment: fall back to a structural spot-check
    grep -q '"endpoint_fraction"' bench_results/trace.json
    echo "trace.json: present (python3 unavailable, structural check only)"
fi

echo "verify: OK"
