//! Example-driven Subset refinements (Problem 2b, Section 6.2): Top-k and
//! percentile-based dicing on aggregated measure values.
//!
//! Both operate on the *results* of the current query (they are offered
//! after the user has seen them) and emit refined queries whose `HAVING`
//! clause reproduces the chosen threshold, so the refinement is a plain
//! SPARQL query the user can keep, re-run, or refine further.

use crate::query_model::{measure_value_var, MeasureColumn, OlapQuery};
use crate::refine::{Refinement, RefinementKind};
use re2x_cube::VirtualSchemaGraph;
use re2x_rdf::Graph;
use re2x_sparql::{CmpOp, Expr, Order, Solutions};

/// Default percentile boundaries, coarse on top where extremes live.
pub const DEFAULT_PERCENTILES: [u8; 4] = [25, 50, 75, 90];

/// Top-k / bottom-k refinements: for every measure column and both
/// orderings, find the threshold that keeps the example's tuple in the
/// result and cut there (the paper's boundary-walk algorithm).
pub fn topk(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    solutions: &Solutions,
    graph: &Graph,
) -> Vec<Refinement> {
    let mut out = Vec::new();
    let matching = query.matching_rows(solutions, graph);
    if matching.is_empty() {
        return out;
    }
    for column in &query.measure_columns {
        let Some(col) = solutions.column(&column.alias) else {
            continue;
        };
        for order in [Order::Desc, Order::Asc] {
            // rows ordered by the measure
            let mut ordered: Vec<(usize, f64)> = solutions
                .rows
                .iter()
                .enumerate()
                .filter_map(|(r, row)| {
                    row[col]
                        .as_ref()
                        .and_then(|v| v.as_number(graph))
                        .map(|n| (r, n))
                })
                .collect();
            ordered.sort_by(|a, b| a.1.total_cmp(&b.1));
            if order == Order::Desc {
                ordered.reverse();
            }
            // walk until an example row whose successor is not an example
            // row; the successor's value is the exclusive threshold. The
            // cut additionally needs a *strict* value gap — with a tie at
            // the boundary the strict HAVING comparison would drop the
            // example row itself.
            let mut found: Option<(usize, f64)> = None; // (k, threshold)
            for i in 0..ordered.len() {
                if !matching.contains(&ordered[i].0) {
                    continue;
                }
                let Some(&(next_row, next_value)) = ordered.get(i + 1) else {
                    // the example row is the last one: the whole set is the
                    // top-k already, nothing to cut
                    break;
                };
                if !matching.contains(&next_row) && next_value != ordered[i].1 {
                    found = Some((i + 1, next_value));
                    break;
                }
            }
            let Some((k, threshold)) = found else {
                continue;
            };
            out.push(build_topk(schema, query, column, k, order, threshold));
        }
    }
    out
}

fn build_topk(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    column: &MeasureColumn,
    k: usize,
    order: Order,
    threshold: f64,
) -> Refinement {
    let mut refined = query.clone();
    let cmp = match order {
        Order::Desc => CmpOp::Gt,
        Order::Asc => CmpOp::Lt,
    };
    let condition = Expr::cmp(
        Expr::Agg(
            column.agg,
            Box::new(Expr::var(measure_value_var(column.measure))),
        ),
        cmp,
        Expr::Number(threshold),
    );
    refined.query.having = Some(match refined.query.having.take() {
        Some(existing) => Expr::And(Box::new(existing), Box::new(condition)),
        None => condition,
    });
    let measure_label = &schema.measure(column.measure).label;
    let direction = match order {
        Order::Desc => "top",
        Order::Asc => "bottom",
    };
    let explanation = format!(
        "Keep only the {direction}-{k} results by {}({measure_label})",
        column.agg.keyword()
    );
    refined.description = format!("{} — {explanation}", query.description);
    Refinement {
        query: refined,
        kind: RefinementKind::TopK {
            measure_alias: column.alias.clone(),
            k,
            order,
        },
        explanation,
    }
}

/// Percentile-based refinements: compute percentile boundaries of every
/// measure column and emit one refinement per interval that contains an
/// example-matching tuple.
pub fn percentile(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    solutions: &Solutions,
    graph: &Graph,
    boundaries: &[u8],
) -> Vec<Refinement> {
    let mut out = Vec::new();
    let matching = query.matching_rows(solutions, graph);
    if matching.is_empty() {
        return out;
    }
    for column in &query.measure_columns {
        let Some(col) = solutions.column(&column.alias) else {
            continue;
        };
        let mut values: Vec<f64> = solutions
            .rows
            .iter()
            .filter_map(|row| row[col].as_ref().and_then(|v| v.as_number(graph)))
            .collect();
        if values.is_empty() {
            continue;
        }
        values.sort_by(f64::total_cmp);
        // interval bounds: [0, b1), [b1, b2), …, [b_last, 100]
        let mut pcts: Vec<u8> = vec![0];
        pcts.extend(boundaries.iter().copied().filter(|&b| b > 0 && b < 100));
        pcts.push(100);
        pcts.dedup();
        let example_values: Vec<f64> = matching
            .iter()
            .filter_map(|&r| {
                solutions.rows[r][col]
                    .as_ref()
                    .and_then(|v| v.as_number(graph))
            })
            .collect();
        for w in pcts.windows(2) {
            let (lo_pct, hi_pct) = (w[0], w[1]);
            let lo = percentile_value(&values, lo_pct);
            let hi = percentile_value(&values, hi_pct);
            let inclusive_top = hi_pct == 100;
            let inside = |v: f64| v >= lo && if inclusive_top { v <= hi } else { v < hi };
            if !example_values.iter().any(|&v| inside(v)) {
                continue;
            }
            out.push(build_percentile(
                schema, query, column, lo_pct, hi_pct, lo, hi,
            ));
        }
    }
    out
}

/// Nearest-rank percentile of a sorted slice.
fn percentile_value(sorted: &[f64], pct: u8) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = (f64::from(pct) / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_arguments)]
fn build_percentile(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    column: &MeasureColumn,
    lo_pct: u8,
    hi_pct: u8,
    lo: f64,
    hi: f64,
) -> Refinement {
    let mut refined = query.clone();
    let agg = |e| Expr::Agg(column.agg, Box::new(e));
    let var = Expr::var(measure_value_var(column.measure));
    let lower = Expr::cmp(agg(var.clone()), CmpOp::Ge, Expr::Number(lo));
    let upper_op = if hi_pct == 100 { CmpOp::Le } else { CmpOp::Lt };
    let upper = Expr::cmp(agg(var), upper_op, Expr::Number(hi));
    let condition = Expr::And(Box::new(lower), Box::new(upper));
    refined.query.having = Some(match refined.query.having.take() {
        Some(existing) => Expr::And(Box::new(existing), Box::new(condition)),
        None => condition,
    });
    let measure_label = &schema.measure(column.measure).label;
    let explanation = format!(
        "Keep results whose {}({measure_label}) lies between the {lo_pct}th and {hi_pct}th percentile",
        column.agg.keyword()
    );
    refined.description = format!("{} — {explanation}", query.description);
    Refinement {
        query: refined,
        kind: RefinementKind::Percentile {
            measure_alias: column.alias.clone(),
            lower_pct: lo_pct,
            upper_pct: hi_pct,
        },
        explanation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_model::{ExampleBinding, GroupColumn, MeasureColumn};
    use re2x_sparql::{AggFunc, Query, Value};

    /// A fabricated query + result set: 5 destinations with SUMs
    /// 8030 (Germany), 5011, 1220, 120, 45 — like Table 2 of the paper.
    fn fixture() -> (VirtualSchemaGraph, OlapQuery, Solutions, Graph) {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        let dest = v.add_dimension("http://ex/dest", "Country of Destination");
        let m = v.add_measure("http://ex/applicants", "Num Applicants");
        let level = v.add_level(dest, vec!["http://ex/dest".into()], 5, vec![], "Country");
        let mut graph = Graph::new();
        let countries = ["Germany", "France", "Italy", "Austria", "Malta"];
        let sums = [8030.0, 5011.0, 1220.0, 120.0, 45.0];
        let rows = countries
            .iter()
            .zip(sums)
            .map(|(c, s)| {
                let id = graph.intern_iri(format!("http://ex/{c}"));
                vec![Some(Value::Term(id)), Some(Value::Number(s))]
            })
            .collect();
        let solutions = Solutions {
            vars: vec!["dest".into(), "sum_applicants".into()],
            rows,
        };
        let query = OlapQuery {
            query: Query::select_all(vec![]),
            group_columns: vec![GroupColumn {
                var: "dest".into(),
                level,
            }],
            measure_columns: vec![MeasureColumn {
                alias: "sum_applicants".into(),
                measure: m,
                agg: AggFunc::Sum,
            }],
            example: vec![vec![ExampleBinding {
                keyword: "Germany".into(),
                member_iri: "http://ex/Germany".into(),
                label: "Germany".into(),
                level,
            }]],
            description: "Q".into(),
        };
        (v, query, solutions, graph)
    }

    #[test]
    fn topk_desc_cuts_right_below_the_example() {
        let (v, q, sols, g) = fixture();
        let refinements = topk(&v, &q, &sols, &g);
        // Germany is the global top: Desc gives top-1 (> 5011); Asc walks
        // from the bottom — Germany is last, no successor → only Desc.
        assert_eq!(refinements.len(), 1);
        let r = &refinements[0];
        match &r.kind {
            RefinementKind::TopK { k, order, .. } => {
                assert_eq!(*k, 1);
                assert_eq!(*order, Order::Desc);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let having = r.query.query.having.as_ref().expect("having");
        assert!(
            matches!(having, Expr::Cmp(_, CmpOp::Gt, b) if matches!(**b, Expr::Number(n) if n == 5011.0))
        );
        assert!(r.explanation.contains("top-1"));
        assert!(r.explanation.contains("SUM(Num Applicants)"));
    }

    #[test]
    fn topk_for_mid_ranked_example_produces_both_directions() {
        let (v, mut q, sols, g) = fixture();
        q.example[0][0].member_iri = "http://ex/Italy".into();
        q.example[0][0].label = "Italy".into();
        let refinements = topk(&v, &q, &sols, &g);
        assert_eq!(refinements.len(), 2);
        let ks: Vec<(usize, Order)> = refinements
            .iter()
            .map(|r| match &r.kind {
                RefinementKind::TopK { k, order, .. } => (*k, *order),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        // Italy is 3rd from the top and 3rd from the bottom
        assert!(ks.contains(&(3, Order::Desc)));
        assert!(ks.contains(&(3, Order::Asc)));
    }

    #[test]
    fn topk_without_example_match_offers_nothing() {
        let (v, mut q, sols, g) = fixture();
        q.example[0][0].member_iri = "http://ex/Nowhere".into();
        assert!(topk(&v, &q, &sols, &g).is_empty());
    }

    #[test]
    fn percentile_intervals_containing_example() {
        let (v, q, sols, g) = fixture();
        let refinements = percentile(&v, &q, &sols, &g, &DEFAULT_PERCENTILES);
        // Germany (8030) sits only in the [90,100] interval.
        assert_eq!(refinements.len(), 1);
        match &refinements[0].kind {
            RefinementKind::Percentile {
                lower_pct,
                upper_pct,
                ..
            } => {
                assert_eq!(*lower_pct, 90);
                assert_eq!(*upper_pct, 100);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(refinements[0]
            .explanation
            .contains("90th and 100th percentile"));
    }

    #[test]
    fn percentile_value_nearest_rank() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_value(&values, 0), 1.0);
        assert_eq!(percentile_value(&values, 50), 3.0);
        assert_eq!(percentile_value(&values, 100), 5.0);
        assert!(percentile_value(&[], 50).is_nan());
    }

    #[test]
    fn having_composes_with_existing_conditions() {
        let (v, q, sols, g) = fixture();
        let first = topk(&v, &q, &sols, &g).remove(0);
        // apply topk again on the refined query: existing HAVING is kept
        let second = topk(&v, &first.query, &sols, &g).remove(0);
        let having = second.query.query.having.as_ref().expect("having");
        assert!(matches!(having, Expr::And(..)));
    }
}
