#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2x-cube
//!
//! The statistical-knowledge-graph layer of the RE²xOLAP reproduction:
//!
//! * the multidimensional model — [`Dimension`]s, [`Measure`]s, hierarchy
//!   [`LevelNode`]s (Section 3 of the paper),
//! * the **Virtual Schema Graph** ([`VirtualSchemaGraph`]) — the paper's
//!   central optimization: a level-granularity in-memory summary of the
//!   dimension hierarchies (Section 5.2),
//! * the [`bootstrap()`] crawler that discovers the schema automatically
//!   given only a SPARQL endpoint and the observation class,
//! * QB/QB4OLAP annotation emission ([`qb`]),
//! * label utilities for presenting schema elements to users.

pub mod bootstrap;
pub mod labels;
pub mod model;
pub mod patterns;
pub mod qb;
pub mod vgraph;

pub use bootstrap::{
    bootstrap, bootstrap_async, bootstrap_parallel, refresh, BootstrapConfig, BootstrapReport,
    RefreshReport,
};
pub use model::{Dimension, DimensionId, LevelId, LevelNode, Measure, MeasureId};
pub use vgraph::{SchemaStats, VirtualSchemaGraph};
