//! Query evaluation: BGP matching with greedy join ordering, filters,
//! grouping, aggregation, and solution modifiers.
//!
//! The evaluator extends partial bindings pattern by pattern. Patterns are
//! ordered greedily by estimated selectivity (constant-bound index counts),
//! the classic heuristic that makes star-shaped OLAP patterns over
//! observations run in time proportional to the matching observations
//! rather than the full store.

mod columnar;

use crate::ast::*;
use crate::error::SparqlError;
use crate::expr::{eval_expr, EvalContext};
use crate::value::{Solutions, Value};
use re2x_rdf::hash::FxHashMap;
use re2x_rdf::{Graph, Term, TermId};

/// Join-order planning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Greedy selectivity-based ordering from index statistics (the
    /// default).
    #[default]
    Planned,
    /// Evaluate patterns in textual order (the ablation baseline).
    InOrder,
}

/// Physical execution strategy for flat basic graph patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Sorted-ID merge joins over columnar batches of interned term ids
    /// (the default). Falls back to [`ExecMode::Row`] automatically for
    /// shapes the columnar kernel does not cover (FILTER-interleaved
    /// blocks, OPTIONAL/UNION children).
    #[default]
    Columnar,
    /// Binding-at-a-time row extension (the reference executor).
    Row,
}

/// Evaluates a query against a graph.
pub fn evaluate(graph: &Graph, query: &Query) -> Result<Solutions, SparqlError> {
    evaluate_full(graph, query, PlanMode::Planned, ExecMode::Columnar)
}

/// Evaluates a query with an explicit planning strategy.
pub fn evaluate_with(
    graph: &Graph,
    query: &Query,
    mode: PlanMode,
) -> Result<Solutions, SparqlError> {
    evaluate_full(graph, query, mode, ExecMode::Columnar)
}

/// Evaluates a query with explicit planning and execution strategies.
pub fn evaluate_full(
    graph: &Graph,
    query: &Query,
    mode: PlanMode,
    exec: ExecMode,
) -> Result<Solutions, SparqlError> {
    if let Some(solutions) = try_index_only_distinct(graph, query) {
        return Ok(solutions);
    }
    let compiled = Compiled::with_modes(graph, query, mode, exec)?;
    if query.form == QueryForm::Select {
        // Index-statistic fast paths, applied identically in every
        // PlanMode × ExecMode combination so the cross-mode byte-identity
        // guarantee holds:
        //
        // * single-pattern `COUNT` answered from `Graph::count_matching`
        //   without materializing a single row;
        // * single-variable DISTINCT / COUNT(DISTINCT) shapes answered by
        //   candidate enumeration + existence probes instead of a full join.
        if let Some(solutions) = compiled.try_pattern_count(graph) {
            return Ok(solutions);
        }
        if let Some(rows) = compiled.try_distinct_probe(graph) {
            return compiled.project(graph, rows);
        }
    }
    let rows = compiled.run_bgp(graph, query.form == QueryForm::Ask)?;
    match query.form {
        QueryForm::Ask => Ok(Solutions {
            vars: vec!["ask".to_owned()],
            rows: vec![vec![Some(Value::Bool(!rows.is_empty()))]],
        }),
        QueryForm::Select => compiled.project(graph, rows),
    }
}

/// Evaluates an `ASK` query (or any query, testing for non-emptiness).
pub fn evaluate_ask(graph: &Graph, query: &Query) -> Result<bool, SparqlError> {
    let compiled = Compiled::new(graph, query)?;
    let rows = compiled.run_bgp(graph, true)?;
    Ok(!rows.is_empty())
}

/// Renders the evaluation plan of a query without executing it: the chosen
/// join order with per-pattern index-cardinality estimates and the step at
/// which each filter applies.
pub fn explain(graph: &Graph, query: &Query) -> Result<String, SparqlError> {
    use std::fmt::Write as _;
    let compiled = Compiled::new(graph, query)?;
    let prebound = vec![false; compiled.var_names.len()];
    let order = compiled.plan_block(graph, &compiled.root, &prebound);
    let filter_step = compiled.filter_schedule(&compiled.root, &order, &prebound);
    let mut bound = prebound;
    let mut out = String::new();
    let slot_name = |slot: Slot, bound: &[bool]| match slot {
        Slot::Const(id) => graph.term(id).to_string(),
        Slot::Absent => "<absent-constant>".to_owned(),
        Slot::Var(v) => {
            let name = &compiled.var_names[v];
            let display = match name.strip_prefix('\u{1}') {
                Some(internal) => format!("?_{internal}"),
                None => format!("?{name}"),
            };
            if bound[v] {
                format!("{display}*")
            } else {
                display
            }
        }
    };
    for (step, &pi) in order.iter().enumerate() {
        let p = compiled.root.patterns[pi];
        let estimate = compiled.pattern_cost(graph, p, &bound);
        let _ = writeln!(
            out,
            "{step:>2}. {} {} {}   (cost estimate {estimate})",
            slot_name(p.s, &bound),
            slot_name(p.p, &bound),
            slot_name(p.o, &bound),
        );
        for slot in [p.s, p.p, p.o] {
            if let Slot::Var(v) = slot {
                bound[v] = true;
            }
        }
        for (fi, filter) in compiled.root.filters.iter().enumerate() {
            if filter_step[fi] == step {
                let _ = writeln!(out, "    filter {}", crate::pretty::expr(&filter.expr));
            }
        }
    }
    for (fi, filter) in compiled.root.filters.iter().enumerate() {
        if filter_step[fi] == usize::MAX {
            let _ = writeln!(out, "then: filter {}", crate::pretty::expr(&filter.expr));
        }
    }
    for child in &compiled.root.children {
        match child {
            Child::Optional(inner) => {
                let _ = writeln!(
                    out,
                    "then: left-join OPTIONAL block ({} pattern(s))",
                    inner.patterns.len()
                );
            }
            Child::Union(branches) => {
                let _ = writeln!(out, "then: UNION of {} branch(es)", branches.len());
            }
        }
    }
    if query.is_aggregate() {
        let _ = writeln!(out, "then: group by {:?} + aggregate", query.group_by);
    }
    if query.having.is_some() {
        let _ = writeln!(out, "then: HAVING");
    }
    if !query.order_by.is_empty() {
        let _ = writeln!(out, "then: sort");
    }
    Ok(out)
}

/// Index-only answering of `SELECT DISTINCT ?x WHERE { <one pattern> }`
/// shapes whose answer is a key set of one of the store's indexes — the
/// schema-discovery probes RE²xOLAP issues per interaction ("which
/// predicates arrive at this member?") stay O(distinct answers) instead of
/// O(triples), exactly as predicate-indexed stores answer them.
fn try_index_only_distinct(graph: &Graph, query: &Query) -> Option<Solutions> {
    if query.form != QueryForm::Select
        || !query.distinct
        || query.select.len() != 1
        || !query.group_by.is_empty()
        || query.having.is_some()
        || !query.order_by.is_empty()
        || query.limit.is_some()
        || query.offset.is_some()
        || query.wher.len() != 1
    {
        return None;
    }
    let SelectItem::Var(projected) = &query.select[0] else {
        return None;
    };
    let PatternElement::Triple(t) = &query.wher[0] else {
        return None;
    };
    let ids = match (&t.subject, &t.predicate, &t.object) {
        // DISTINCT ?p WHERE { ?x ?p <o> }  → OSP key union (predicates into o)
        (TermPattern::Var(s), Predicate::Var(p), TermPattern::Iri(o))
            if p == projected && s != p =>
        {
            graph.predicates_into(graph.iri_id(o)?)
        }
        // DISTINCT ?p WHERE { <s> ?p ?x } → SPO keys (predicates from s)
        (TermPattern::Iri(s), Predicate::Var(p), TermPattern::Var(o))
            if p == projected && o != p =>
        {
            graph.predicates_from(graph.iri_id(s)?)
        }
        // DISTINCT ?o WHERE { ?x <p> ?o } → POS keys (objects of p)
        (TermPattern::Var(s), Predicate::Path(path), TermPattern::Var(o))
            if o == projected && s != o && path.len() == 1 =>
        {
            let mut objects = graph.objects_of_predicate(graph.iri_id(&path[0])?);
            objects.sort_unstable();
            objects
        }
        _ => return None,
    };
    Some(Solutions {
        vars: vec![projected.clone()],
        rows: ids
            .into_iter()
            .map(|id| vec![Some(Value::Term(id))])
            .collect(),
    })
}

/// A term slot of a flattened triple pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Slot {
    /// A constant already interned in the graph.
    Const(TermId),
    /// A constant that is *not* in the graph: the pattern cannot match.
    Absent,
    /// A variable, by registry index.
    Var(usize),
}

/// A triple pattern flattened to slots (paths desugared to chains).
#[derive(Debug, Clone, Copy)]
struct FlatPattern {
    s: Slot,
    p: Slot,
    o: Slot,
}

/// Candidate-enumeration guard: probing must be estimated at least this
/// many times cheaper than the best single-pattern scan before it is
/// preferred over the ordinary join.
const PROBE_COST_FACTOR: u64 = 8;

/// Upper bound on recursive probe steps before the fast path abandons the
/// query back to the ordinary executor (a deterministic escape hatch for
/// adversarial shapes whose estimates mislead).
const PROBE_STEP_BUDGET: u64 = 1 << 20;

/// Residual scan size below which an existence probe stops recursing into
/// candidate domains and just runs the seeded depth-first search — at this
/// size the search is cheaper than any further estimation.
const PROBE_SEEDED_THRESHOLD: u64 = 64;

/// An enumerable candidate domain for one unbound variable, chosen by
/// [`Compiled::best_domain`] from O(1) index statistics and materialized
/// lazily by [`Compiled::materialize_domain`].
#[derive(Debug, Clone, Copy)]
enum DomainSource {
    /// Objects of `(s, p, ?v)` — a posting-list slice.
    ObjectsBetween(usize, TermId, TermId),
    /// All distinct objects of predicate `p` — `(?s, p, ?v)`.
    ObjectsOfPredicate(usize, TermId),
    /// Subjects of `(?v, p, o)` — a posting-list slice.
    SubjectsBetween(usize, TermId, TermId),
    /// Predicates linking `(s, ?v, o)`.
    PredicatesBetween(usize, TermId, TermId),
    /// Predicates leaving subject `s` — `(s, ?v, ?o)`.
    PredicatesFrom(usize, TermId),
    /// Predicates arriving at object `o` — `(?s, ?v, o)`.
    PredicatesInto(usize, TermId),
    /// Every predicate in the graph — `(?s, ?v, ?o)`.
    AllPredicates(usize),
}

/// A candidate domain being consumed: index-backed slices stream with no
/// setup cost, derived domains (key scans) arrive materialized.
enum DomainIter<'g> {
    Slice(std::slice::Iter<'g, TermId>),
    Owned(std::vec::IntoIter<TermId>),
}

impl DomainIter<'_> {
    /// Work already spent producing this domain: zero for index-backed
    /// slices, the materialized length for derived domains.
    fn setup_cost(&self) -> u64 {
        match self {
            DomainIter::Slice(_) => 0,
            DomainIter::Owned(it) => it.len() as u64,
        }
    }
}

impl Iterator for DomainIter<'_> {
    type Item = TermId;

    fn next(&mut self) -> Option<TermId> {
        match self {
            DomainIter::Slice(it) => it.next().copied(),
            DomainIter::Owned(it) => it.next(),
        }
    }
}

/// A filter with the registry indexes of its variables.
struct CompiledFilter {
    expr: Expr,
    vars: Vec<usize>,
}

/// A nested child of a group: an `OPTIONAL` block or a `UNION`
/// alternation.
enum Child {
    Optional(Block),
    Union(Vec<Block>),
}

/// One `{ … }` group, compiled: its own triple patterns and filters plus
/// nested children in textual order.
struct Block {
    patterns: Vec<FlatPattern>,
    filters: Vec<CompiledFilter>,
    children: Vec<Child>,
}

struct Compiled {
    /// var name → registry index; internal path variables carry a `\u{1}`
    /// prefix so they can never collide with user variables.
    var_names: Vec<String>,
    var_index: FxHashMap<String, usize>,
    root: Block,
    query: Query,
    mode: PlanMode,
    exec: ExecMode,
}

impl Compiled {
    fn new(graph: &Graph, query: &Query) -> Result<Self, SparqlError> {
        Compiled::with_modes(graph, query, PlanMode::Planned, ExecMode::Columnar)
    }

    fn with_modes(
        graph: &Graph,
        query: &Query,
        mode: PlanMode,
        exec: ExecMode,
    ) -> Result<Self, SparqlError> {
        let mut c = Compiled {
            var_names: Vec::new(),
            var_index: FxHashMap::default(),
            root: Block {
                patterns: Vec::new(),
                filters: Vec::new(),
                children: Vec::new(),
            },
            query: query.clone(),
            mode,
            exec,
        };
        let mut internal = 0usize;
        c.root = c.compile_elements(graph, &query.wher, &mut internal)?;
        Ok(c)
    }

    fn compile_elements(
        &mut self,
        graph: &Graph,
        elements: &[PatternElement],
        internal: &mut usize,
    ) -> Result<Block, SparqlError> {
        let mut block = Block {
            patterns: Vec::new(),
            filters: Vec::new(),
            children: Vec::new(),
        };
        for element in elements {
            match element {
                PatternElement::Triple(t) => {
                    let s = self.slot_of(graph, &t.subject);
                    let o = self.slot_of(graph, &t.object);
                    match &t.predicate {
                        Predicate::Var(v) => {
                            let p = Slot::Var(self.var(v));
                            block.patterns.push(FlatPattern { s, p, o });
                        }
                        Predicate::Path(path) => {
                            // Desugar `s p1/p2/p3 o` into a chain through
                            // fresh internal variables.
                            let mut current = s;
                            for (i, pred) in path.iter().enumerate() {
                                let p = match graph.iri_id(pred) {
                                    Some(id) => Slot::Const(id),
                                    None => Slot::Absent,
                                };
                                let next = if i + 1 == path.len() {
                                    o
                                } else {
                                    *internal += 1;
                                    Slot::Var(self.var(&format!("\u{1}path{internal}")))
                                };
                                block.patterns.push(FlatPattern {
                                    s: current,
                                    p,
                                    o: next,
                                });
                                current = next;
                            }
                        }
                    }
                }
                PatternElement::Filter(expr) => {
                    if expr.has_aggregate() {
                        return Err(SparqlError::invalid(
                            "aggregate calls are not allowed in WHERE filters (use HAVING)",
                        ));
                    }
                    let mut names = Vec::new();
                    expr.variables(&mut names);
                    let vars = names.iter().map(|n| self.var(n)).collect();
                    block.filters.push(CompiledFilter {
                        expr: expr.clone(),
                        vars,
                    });
                }
                PatternElement::Optional(inner) => {
                    let child = self.compile_elements(graph, inner, internal)?;
                    block.children.push(Child::Optional(child));
                }
                PatternElement::Union(branches) => {
                    let compiled: Result<Vec<Block>, SparqlError> = branches
                        .iter()
                        .map(|b| self.compile_elements(graph, b, internal))
                        .collect();
                    block.children.push(Child::Union(compiled?));
                }
            }
        }
        Ok(block)
    }

    fn var(&mut self, name: &str) -> usize {
        if let Some(&i) = self.var_index.get(name) {
            return i;
        }
        let i = self.var_names.len();
        self.var_names.push(name.to_owned());
        self.var_index.insert(name.to_owned(), i);
        i
    }

    fn slot_of(&mut self, graph: &Graph, tp: &TermPattern) -> Slot {
        match tp {
            TermPattern::Var(v) => Slot::Var(self.var(v)),
            TermPattern::Iri(iri) => graph.iri_id(iri).map_or(Slot::Absent, Slot::Const),
            TermPattern::Literal(l) => graph
                .term_id(&Term::Literal(l.clone()))
                .map_or(Slot::Absent, Slot::Const),
        }
    }

    /// Greedy join order for one block's patterns: repeatedly pick the
    /// cheapest pattern given the variables bound so far (`prebound` marks
    /// variables the surrounding group already binds). Equal-cost
    /// candidates tie-break on the lower pattern index, so structurally
    /// identical queries always produce the same plan (`remaining` is kept
    /// in ascending index order for exactly this reason). In
    /// [`PlanMode::InOrder`], keeps the textual order.
    fn plan_block(&self, graph: &Graph, block: &Block, prebound: &[bool]) -> Vec<usize> {
        if self.mode == PlanMode::InOrder {
            return (0..block.patterns.len()).collect();
        }
        let mut remaining: Vec<usize> = (0..block.patterns.len()).collect();
        let mut bound = prebound.to_vec();
        let mut order = Vec::with_capacity(remaining.len());
        let shares_bound_var = |p: FlatPattern, bound: &[bool]| {
            [p.s, p.p, p.o].iter().any(|slot| match slot {
                Slot::Var(v) => bound[*v],
                _ => false,
            })
        };
        while !remaining.is_empty() {
            // Prefer patterns connected to the variables bound so far —
            // joining a disconnected pattern would build a cartesian
            // product of intermediate results. Fall back to any pattern
            // when none is connected (genuinely disconnected components,
            // and the very first pattern).
            let anything_bound = bound.iter().any(|&b| b);
            let connected_only = anything_bound
                && remaining
                    .iter()
                    .any(|&i| shares_bound_var(block.patterns[i], &bound));
            let mut best: Option<(u64, usize)> = None;
            for &i in &remaining {
                if connected_only && !shares_bound_var(block.patterns[i], &bound) {
                    continue;
                }
                let cost = self.pattern_cost(graph, block.patterns[i], &bound);
                // `remaining` is ascending, so `<` keeps the first (lowest
                // index) among equal-cost candidates: a deterministic plan.
                if best.is_none_or(|b| (cost, i) < b) {
                    best = Some((cost, i));
                }
            }
            let Some((_, pick)) = best else {
                // unreachable (remaining is non-empty), but a truncated
                // plan only costs performance, never correctness
                break;
            };
            order.push(pick);
            remaining.retain(|&i| i != pick);
            for slot in [
                block.patterns[pick].s,
                block.patterns[pick].p,
                block.patterns[pick].o,
            ] {
                if let Slot::Var(v) = slot {
                    bound[v] = true;
                }
            }
        }
        order
    }

    /// Cost estimate for a pattern: index cardinality for the constant
    /// positions, discounted by how many positions a prior pattern already
    /// binds (a bound variable behaves like a constant at run time).
    fn pattern_cost(&self, graph: &Graph, p: FlatPattern, bound: &[bool]) -> u64 {
        let classify = |slot: Slot| match slot {
            Slot::Const(id) => (Some(id), true),
            Slot::Absent => (None, true),
            Slot::Var(v) => (None, bound[v]),
        };
        let (s, s_fixed) = classify(p.s);
        let (pp, p_fixed) = classify(p.p);
        let (o, o_fixed) = classify(p.o);
        if matches!(p.s, Slot::Absent) || matches!(p.p, Slot::Absent) || matches!(p.o, Slot::Absent)
        {
            return 0; // cannot match anything: evaluate first, terminate early
        }
        let base = graph.count_matching(s, pp, o) as u64;
        let fixed = u64::from(s_fixed) + u64::from(p_fixed) + u64::from(o_fixed);
        // Each run-time-bound position divides the expected fan-out; the
        // +1 keeps fully-scanned patterns strictly more expensive.
        (base + 1) >> (2 * fixed).min(20)
    }

    /// Runs the WHERE block, returning binding rows over the variable
    /// registry. With `stop_at_first`, returns at most one row.
    fn run_bgp(
        &self,
        graph: &Graph,
        stop_at_first: bool,
    ) -> Result<Vec<Vec<Option<TermId>>>, SparqlError> {
        let seed = vec![vec![None; self.var_names.len()]];
        if stop_at_first && self.root.children.is_empty() {
            // ASK / existence checks over a flat group: depth-first with
            // early termination — the first complete solution ends the
            // search, so selective probes never materialize the full join.
            let prebound = vec![false; self.var_names.len()];
            let order = self.plan_block(graph, &self.root, &prebound);
            let filter_step = self.filter_schedule(&self.root, &order, &prebound);
            let start = vec![None; self.var_names.len()];
            return Ok(
                match self.search_first(graph, &self.root, &order, &filter_step, 0, &start) {
                    Some(row) => vec![row],
                    None => Vec::new(),
                },
            );
        }
        if self.exec == ExecMode::Columnar && !stop_at_first && columnar::eligible(self) {
            // flat filter-free block: sorted-ID merge joins over columnar
            // batches, byte-identical to the row path below
            return Ok(columnar::run(self, graph));
        }
        let mut rows = self.eval_block(graph, &self.root, seed)?;
        if stop_at_first {
            rows.truncate(1);
        }
        Ok(rows)
    }

    // ---- distinct-domain probing ------------------------------------------

    /// Fast path for `SELECT (COUNT(…) AS ?n)` over exactly one triple
    /// pattern with no filters: the answer is [`Graph::count_matching`] —
    /// an O(1) index statistic — so e.g. the bootstrap's observation-count
    /// query never materializes its N rows. The output matches the general
    /// path exactly, including the implicit single group that yields one
    /// `COUNT = 0` row for an empty match.
    fn try_pattern_count(&self, graph: &Graph) -> Option<Solutions> {
        let query = &self.query;
        if !query.group_by.is_empty()
            || query.having.is_some()
            || !query.order_by.is_empty()
            || query.limit.is_some()
            || query.offset.is_some()
            || !self.root.children.is_empty()
            || !self.root.filters.is_empty()
            || self.root.patterns.len() != 1
            || query.select.len() != 1
        {
            return None;
        }
        let SelectItem::Agg {
            func: AggFunc::Count,
            expr,
            alias,
        } = &query.select[0]
        else {
            return None;
        };
        let pattern = &self.root.patterns[0];
        let slots = [pattern.s, pattern.p, pattern.o];
        // A variable repeated inside the pattern constrains matches beyond
        // what the index counts can see.
        for (i, a) in slots.iter().enumerate() {
            if matches!(a, Slot::Var(_)) && slots[i + 1..].contains(a) {
                return None;
            }
        }
        match expr {
            // COUNT(1): counts every row.
            Expr::Number(_) => {}
            // COUNT(?v): only when the pattern binds ?v in every row.
            Expr::Var(v) => {
                let tv = self.var_index.get(v.as_str()).copied()?;
                if !slots.iter().any(|s| matches!(s, Slot::Var(x) if *x == tv)) {
                    return None;
                }
            }
            _ => return None,
        }
        let resolve = |slot: Slot| match slot {
            Slot::Const(id) => Ok(Some(id)),
            Slot::Var(_) => Ok(None),
            Slot::Absent => Err(()),
        };
        let count = match (resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)) {
            (Ok(s), Ok(p), Ok(o)) => graph.count_matching(s, p, o),
            _ => 0, // an absent constant matches nothing
        };
        Some(Solutions {
            vars: vec![alias.clone()],
            rows: vec![vec![Some(Value::Number(count as f64))]],
        })
    }

    /// Fast path for `SELECT DISTINCT ?v` / `SELECT (COUNT(DISTINCT ?v) …)`
    /// over a flat group: instead of materializing the full join and
    /// deduplicating, enumerate candidate values for a variable from an
    /// index key set (objects of a predicate, predicates leaving a subject,
    /// …) and decide each candidate with an early-exit existence search.
    ///
    /// This is what keeps RE²xOLAP's bootstrap *schema-bound*: its member
    /// counts and member-predicate discovery are exactly these shapes, and
    /// probing answers them in time proportional to the schema (members ×
    /// predicates), not the observation count — the paper's Virtuoso
    /// endpoint gets the same effect from predicate-indexed DISTINCT
    /// answering.
    ///
    /// Returns synthetic binding rows (one per distinct value, ascending by
    /// term id) that flow through the ordinary [`Compiled::project`], so
    /// output formatting, aggregation and DISTINCT semantics are shared
    /// with the general path, or `None` when the shape is not eligible or
    /// probing is not estimated to win.
    fn try_distinct_probe(&self, graph: &Graph) -> Option<Vec<Vec<Option<TermId>>>> {
        let query = &self.query;
        if !query.group_by.is_empty()
            || query.having.is_some()
            || !query.order_by.is_empty()
            || query.limit.is_some()
            || query.offset.is_some()
            || !self.root.children.is_empty()
            || self.root.patterns.is_empty()
            || query.select.len() != 1
        {
            return None;
        }
        let target = match &query.select[0] {
            SelectItem::Var(v) if query.distinct => v,
            SelectItem::Agg {
                func: AggFunc::CountDistinct,
                expr: Expr::Var(v),
                ..
            } => v,
            _ => return None,
        };
        let tv = *self.var_index.get(target.as_str())?;
        let appears = self.root.patterns.iter().any(|p| {
            [p.s, p.p, p.o]
                .iter()
                .any(|slot| matches!(slot, Slot::Var(v) if *v == tv))
        });
        if !appears {
            return None;
        }
        let row = vec![None; self.var_names.len()];
        // Only probe when the join is genuinely more expensive than
        // candidate enumeration; tiny graphs stay on the ordinary executor.
        let scan = self.scan_cost(graph, &row)?;
        let (_, estimate) = self.best_domain(graph, &self.root.patterns, &row)?;
        if estimate.saturating_mul(PROBE_COST_FACTOR) >= scan {
            return None;
        }
        let mut out: Vec<TermId> = Vec::new();
        let mut budget = PROBE_STEP_BUDGET;
        if !self.probe_distinct(graph, row, tv, &mut out, &mut budget) {
            return None;
        }
        out.sort_unstable();
        out.dedup();
        let width = self.var_names.len();
        Some(
            out.into_iter()
                .map(|id| {
                    let mut r = vec![None; width];
                    r[tv] = Some(id);
                    r
                })
                .collect(),
        )
    }

    /// Collects into `out` the distinct values `row[tv]` takes over every
    /// solution extending `row`. Returns `false` to abandon the fast path
    /// entirely (budget exhausted); the caller then falls back to the
    /// ordinary executor, so abandonment only costs time, never answers.
    fn probe_distinct(
        &self,
        graph: &Graph,
        row: Vec<Option<TermId>>,
        tv: usize,
        out: &mut Vec<TermId>,
        budget: &mut u64,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        // A decidable filter that already fails means nothing extends this
        // row — prune before any scan.
        if !self.bound_filters_pass(graph, &row) {
            return true;
        }
        if let Some(value) = row[tv] {
            // Target bound: one existence probe decides it.
            return match self.probe_exists(graph, row, budget) {
                Some(true) => {
                    out.push(value);
                    true
                }
                Some(false) => true,
                None => false,
            };
        }
        let Some(scan) = self.scan_cost(graph, &row) else {
            return true; // some pattern cannot match: no solutions here
        };
        let candidate = self.best_domain(graph, &self.root.patterns, &row);
        match candidate {
            Some((source, estimate)) if estimate.saturating_mul(PROBE_COST_FACTOR) < scan => {
                let (var, domain) = self.stream_domain(graph, source);
                for c in domain {
                    let mut next = row.clone();
                    next[var] = Some(c);
                    if !self.probe_distinct(graph, next, tv, out, budget) {
                        return false;
                    }
                }
                true
            }
            _ => {
                // No cheap domain left: run the residual join normally from
                // the seeded row and harvest the target column.
                let Ok(rows) = self.eval_block(graph, &self.root, vec![row]) else {
                    return false;
                };
                out.extend(
                    rows.into_iter()
                        .filter_map(|r| r.get(tv).copied().flatten()),
                );
                true
            }
        }
    }

    /// Three-valued existence probe: does some solution extend `row`?
    /// `None` means the step budget ran out and the whole fast path must
    /// be abandoned. Bound filters prune eagerly, and large residual scans
    /// recurse through the cheapest candidate domain — so filter variables
    /// (e.g. the `?x` of the bootstrap's `FILTER(isNumeric(?x))` predicate
    /// discovery) get bound from small index key sets and decided by the
    /// filter in O(1), instead of being enumerated by an O(N) scan that
    /// rejects every binding one by one.
    fn probe_exists(
        &self,
        graph: &Graph,
        row: Vec<Option<TermId>>,
        budget: &mut u64,
    ) -> Option<bool> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        if !self.bound_filters_pass(graph, &row) {
            return Some(false);
        }
        let Some(scan) = self.scan_cost(graph, &row) else {
            return Some(false); // some pattern provably matches nothing
        };
        if scan <= PROBE_SEEDED_THRESHOLD {
            return Some(self.seeded_exists(graph, &row));
        }
        match self.best_domain(graph, &self.root.patterns, &row) {
            Some((source, estimate)) if estimate.saturating_mul(PROBE_COST_FACTOR) < scan => {
                // Candidates are charged as they are *tried* (each nested
                // probe costs a step), not by the domain's length: an
                // existence probe that succeeds on an early candidate of a
                // million-entry posting run must stay O(1), or bootstrap's
                // member probes degrade to linear scans at scale. Derived
                // domains still pay the materialization they already did,
                // so an adversarial cascade of them hits the budget.
                let (var, domain) = self.stream_domain(graph, source);
                *budget = budget.saturating_sub(domain.setup_cost());
                for c in domain {
                    let mut next = row.clone();
                    next[var] = Some(c);
                    match self.probe_exists(graph, next, budget) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => return None,
                    }
                }
                Some(false)
            }
            _ => Some(self.seeded_exists(graph, &row)),
        }
    }

    /// `false` if some filter whose variables are all bound in `row`
    /// rejects it — then no solution can extend `row` and the whole
    /// subtree is pruned. Evaluation errors reject, per SPARQL filter
    /// semantics; filters with unbound variables are not yet decidable and
    /// pass (they are enforced later, at the search/join leaves).
    fn bound_filters_pass(&self, graph: &Graph, row: &[Option<TermId>]) -> bool {
        let ctx = RowContext {
            compiled: self,
            graph,
        };
        self.root.filters.iter().all(|f| {
            if !f
                .vars
                .iter()
                .all(|&v| row.get(v).copied().flatten().is_some())
            {
                return true;
            }
            eval_expr(&f.expr, &ctx, row)
                .and_then(|v| v.as_bool())
                .unwrap_or(false)
        })
    }

    /// `true` if some solution extends `row` — a depth-first existence
    /// search planned for the seeded bindings, with the standard filter
    /// schedule.
    fn seeded_exists(&self, graph: &Graph, row: &[Option<TermId>]) -> bool {
        let prebound: Vec<bool> = row.iter().map(Option::is_some).collect();
        let order = self.plan_block(graph, &self.root, &prebound);
        let filter_step = self.filter_schedule(&self.root, &order, &prebound);
        self.search_first(graph, &self.root, &order, &filter_step, 0, row)
            .is_some()
    }

    /// The most expensive scan any single pattern forces under the current
    /// bindings — the probe-vs-join decision heuristic: a join over these
    /// patterns has to enumerate *some* pattern's matches unrestricted, and
    /// intermediate results are typically on the order of the largest one.
    /// `None` when some pattern provably matches nothing (no solutions).
    fn scan_cost(&self, graph: &Graph, row: &[Option<TermId>]) -> Option<u64> {
        let mut max = 0u64;
        for p in &self.root.patterns {
            let resolve = |slot: Slot| -> Result<Option<TermId>, ()> {
                match slot {
                    Slot::Const(id) => Ok(Some(id)),
                    Slot::Absent => Err(()),
                    Slot::Var(v) => Ok(row.get(v).copied().flatten()),
                }
            };
            let (Ok(s), Ok(pp), Ok(o)) = (resolve(p.s), resolve(p.p), resolve(p.o)) else {
                return None; // an absent constant: the block is empty
            };
            let count = graph.count_matching(s, pp, o) as u64;
            if count == 0 {
                return None;
            }
            max = max.max(count);
        }
        Some(max)
    }

    /// The cheapest enumerable candidate domain for any still-unbound
    /// variable: `(source, estimated size)`. Estimates are O(1) index
    /// statistics; nothing is materialized until a domain is chosen.
    fn best_domain(
        &self,
        graph: &Graph,
        patterns: &[FlatPattern],
        row: &[Option<TermId>],
    ) -> Option<(DomainSource, u64)> {
        let resolve = |slot: Slot| -> Option<TermId> {
            match slot {
                Slot::Const(id) => Some(id),
                Slot::Var(v) => row.get(v).copied().flatten(),
                Slot::Absent => None,
            }
        };
        let unbound = |slot: Slot| -> Option<usize> {
            match slot {
                Slot::Var(v) if row.get(v).copied().flatten().is_none() => Some(v),
                _ => None,
            }
        };
        let mut best: Option<(DomainSource, u64)> = None;
        let mut consider = |source: DomainSource, estimate: u64| {
            if best.is_none_or(|(_, b)| estimate < b) {
                best = Some((source, estimate));
            }
        };
        for p in patterns {
            let (s, pp, o) = (resolve(p.s), resolve(p.p), resolve(p.o));
            if let Some(v) = unbound(p.o) {
                match (s, pp) {
                    (Some(s), Some(pid)) => {
                        consider(
                            DomainSource::ObjectsBetween(v, s, pid),
                            graph.objects(s, pid).len() as u64,
                        );
                    }
                    (None, Some(pid)) => {
                        consider(
                            DomainSource::ObjectsOfPredicate(v, pid),
                            graph.predicate_stats(pid).distinct_objects as u64,
                        );
                    }
                    _ => {}
                }
            }
            if let Some(v) = unbound(p.s) {
                if let (Some(pid), Some(o)) = (pp, o) {
                    consider(
                        DomainSource::SubjectsBetween(v, pid, o),
                        graph.subjects(pid, o).len() as u64,
                    );
                }
            }
            if let Some(v) = unbound(p.p) {
                match (s, o) {
                    (Some(s), Some(o)) => consider(
                        DomainSource::PredicatesBetween(v, s, o),
                        graph.predicates_between(s, o).len() as u64,
                    ),
                    (Some(s), None) => consider(
                        DomainSource::PredicatesFrom(v, s),
                        // upper bound: triples leaving s
                        graph.count_matching(Some(s), None, None) as u64,
                    ),
                    (None, Some(o)) => consider(
                        DomainSource::PredicatesInto(v, o),
                        // upper bound: triples arriving at o (the distinct
                        // count is not tracked; this stays conservative)
                        graph.count_matching(None, None, Some(o)) as u64,
                    ),
                    (None, None) => consider(
                        DomainSource::AllPredicates(v),
                        graph.predicates().len() as u64,
                    ),
                }
            }
        }
        best
    }

    /// Opens a chosen candidate domain for consumption: `(variable,
    /// candidates)`. Every domain is a superset of the values its variable
    /// can take in the pattern it came from, which is all probing soundness
    /// needs. Index-backed domains (posting runs) stream straight off the
    /// index — opening one costs nothing, so an existence probe that hits
    /// on an early candidate never pays for the run's length.
    fn stream_domain<'g>(&self, graph: &'g Graph, source: DomainSource) -> (usize, DomainIter<'g>) {
        match source {
            DomainSource::ObjectsBetween(v, s, p) => {
                (v, DomainIter::Slice(graph.objects(s, p).iter()))
            }
            DomainSource::ObjectsOfPredicate(v, p) => (
                v,
                DomainIter::Owned(graph.objects_of_predicate(p).into_iter()),
            ),
            DomainSource::SubjectsBetween(v, p, o) => {
                (v, DomainIter::Slice(graph.subjects(p, o).iter()))
            }
            DomainSource::PredicatesBetween(v, s, o) => {
                (v, DomainIter::Slice(graph.predicates_between(s, o).iter()))
            }
            DomainSource::PredicatesFrom(v, s) => {
                (v, DomainIter::Owned(graph.predicates_from(s).into_iter()))
            }
            DomainSource::PredicatesInto(v, o) => {
                (v, DomainIter::Owned(graph.predicates_into(o).into_iter()))
            }
            DomainSource::AllPredicates(v) => {
                (v, DomainIter::Owned(graph.predicates().into_iter()))
            }
        }
    }

    /// The step at which each of a block's filters applies during its
    /// pattern join: the earliest step after which all the filter's
    /// variables are bound; `usize::MAX` for filters whose variables the
    /// join never fully binds (they run after the block's children).
    fn filter_schedule(&self, block: &Block, order: &[usize], prebound: &[bool]) -> Vec<usize> {
        let mut bound = prebound.to_vec();
        let mut schedule = vec![usize::MAX; block.filters.len()];
        for (fi, filter) in block.filters.iter().enumerate() {
            if filter.vars.iter().all(|&v| bound[v]) {
                schedule[fi] = 0; // already decidable from the input row
            }
        }
        for (step, &pi) in order.iter().enumerate() {
            for slot in [
                block.patterns[pi].s,
                block.patterns[pi].p,
                block.patterns[pi].o,
            ] {
                if let Slot::Var(v) = slot {
                    bound[v] = true;
                }
            }
            for (fi, filter) in block.filters.iter().enumerate() {
                if schedule[fi] == usize::MAX && filter.vars.iter().all(|&v| bound[v]) {
                    schedule[fi] = step;
                }
            }
        }
        schedule
    }

    /// Evaluates one group against a set of input rows: joins the group's
    /// patterns, then its children (OPTIONAL = left join, UNION = branch
    /// concatenation), then any filters whose variables only the children
    /// could bind.
    fn eval_block(
        &self,
        graph: &Graph,
        block: &Block,
        input: Vec<Vec<Option<TermId>>>,
    ) -> Result<Vec<Vec<Option<TermId>>>, SparqlError> {
        if input.is_empty() {
            return Ok(input);
        }
        // Variables bound on entry (uniform across input rows produced by
        // pattern joins; after an OPTIONAL boundness can vary per row — the
        // plan only uses this as a heuristic, correctness is per-row).
        let prebound: Vec<bool> = (0..self.var_names.len())
            .map(|v| input.iter().any(|r| r[v].is_some()))
            .collect();
        let order = self.plan_block(graph, block, &prebound);
        let filter_step = self.filter_schedule(block, &order, &prebound);
        let ctx = RowContext {
            compiled: self,
            graph,
        };

        let mut rows = input;
        // filters decidable before any pattern runs
        for (fi, filter) in block.filters.iter().enumerate() {
            if filter_step[fi] == 0 && order.is_empty() {
                rows.retain(|row| {
                    eval_expr(&filter.expr, &ctx, row.as_slice())
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false)
                });
            }
        }
        for (step, &pi) in order.iter().enumerate() {
            let pattern = block.patterns[pi];
            let mut next: Vec<Vec<Option<TermId>>> = Vec::new();
            for row in &rows {
                self.extend_row(graph, pattern, row, &mut next);
            }
            rows = next;
            for (fi, filter) in block.filters.iter().enumerate() {
                if filter_step[fi] == step {
                    rows.retain(|row| {
                        eval_expr(&filter.expr, &ctx, row.as_slice())
                            .and_then(|v| v.as_bool())
                            .unwrap_or(false)
                    });
                }
            }
            if rows.is_empty() {
                return Ok(rows);
            }
        }

        // children, in textual order
        for child in &block.children {
            match child {
                Child::Optional(inner) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for row in rows {
                        let extensions = self.eval_block(graph, inner, vec![row.clone()])?;
                        if extensions.is_empty() {
                            out.push(row); // left join: keep the row unextended
                        } else {
                            out.extend(extensions);
                        }
                    }
                    rows = out;
                }
                Child::Union(branches) => {
                    let mut out = Vec::new();
                    for branch in branches {
                        out.extend(self.eval_block(graph, branch, rows.clone())?);
                    }
                    rows = out;
                }
            }
            if rows.is_empty() {
                return Ok(rows);
            }
        }

        // deferred filters: variables only bindable by children (e.g.
        // FILTER(!BOUND(?x)) negation patterns)
        for (fi, filter) in block.filters.iter().enumerate() {
            if filter_step[fi] == usize::MAX {
                rows.retain(|row| {
                    eval_expr(&filter.expr, &ctx, row.as_slice())
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false)
                });
            }
        }
        Ok(rows)
    }

    /// Depth-first search for one complete solution of a flat block:
    /// extends the binding through the planned pattern order, applying each
    /// filter at its scheduled step (deferred filters at the final step),
    /// and returns on the first full row.
    fn search_first(
        &self,
        graph: &Graph,
        block: &Block,
        order: &[usize],
        filter_step: &[usize],
        step: usize,
        row: &[Option<TermId>],
    ) -> Option<Vec<Option<TermId>>> {
        let ctx = RowContext {
            compiled: self,
            graph,
        };
        if step == order.len() {
            // no-pattern / trailing filters
            for filter in &block.filters {
                if !eval_expr(&filter.expr, &ctx, row)
                    .and_then(|v| v.as_bool())
                    .unwrap_or(false)
                {
                    return None;
                }
            }
            return Some(row.to_vec());
        }
        let last_step = order.len() - 1;
        let pattern = block.patterns[order[step]];
        let mut found: Option<Vec<Option<TermId>>> = None;
        self.extend_row_until(graph, pattern, row, |candidate| {
            for (fi, filter) in block.filters.iter().enumerate() {
                let due = filter_step[fi] == step
                    || (step == last_step && filter_step[fi] == usize::MAX)
                    || (step == 0 && filter_step[fi] == 0);
                if due
                    && !eval_expr(&filter.expr, &ctx, candidate.as_slice())
                        .and_then(|v| v.as_bool())
                        .unwrap_or(false)
                {
                    return false; // next candidate
                }
            }
            match self.search_first(graph, block, order, filter_step, step + 1, &candidate) {
                Some(hit) => {
                    found = Some(hit);
                    true // stop: a full solution exists
                }
                None => false,
            }
        });
        found
    }

    fn extend_row(
        &self,
        graph: &Graph,
        pattern: FlatPattern,
        row: &[Option<TermId>],
        out: &mut Vec<Vec<Option<TermId>>>,
    ) {
        self.extend_row_until(graph, pattern, row, |extended| {
            out.push(extended);
            false
        });
    }

    /// Lazily enumerates the consistent extensions of `row` through
    /// `pattern`, stopping when `f` returns `true`. The existence search
    /// ([`Compiled::search_first`]) relies on this to avoid materializing
    /// whole candidate lists.
    fn extend_row_until(
        &self,
        graph: &Graph,
        pattern: FlatPattern,
        row: &[Option<TermId>],
        mut f: impl FnMut(Vec<Option<TermId>>) -> bool,
    ) -> bool {
        let resolve = |slot: Slot| -> Result<Option<TermId>, ()> {
            match slot {
                Slot::Const(id) => Ok(Some(id)),
                Slot::Absent => Err(()),
                Slot::Var(v) => Ok(row[v]),
            }
        };
        let (Ok(s), Ok(p), Ok(o)) = (resolve(pattern.s), resolve(pattern.p), resolve(pattern.o))
        else {
            return false; // a constant absent from the graph: no matches
        };
        graph.for_each_matching_until(s, p, o, |t| {
            let mut new_row: Option<Vec<Option<TermId>>> = None;
            for (slot, value) in [(pattern.s, t.s), (pattern.p, t.p), (pattern.o, t.o)] {
                if let Slot::Var(v) = slot {
                    let current = new_row.as_ref().map_or(row[v], |r| r[v]);
                    match current {
                        Some(existing) if existing != value => return false,
                        Some(_) => {}
                        None => {
                            let r = new_row.get_or_insert_with(|| row.to_vec());
                            r[v] = Some(value);
                        }
                    }
                }
            }
            f(new_row.unwrap_or_else(|| row.to_vec()))
        })
    }

    /// Turns binding rows into the projected solution sequence, handling
    /// grouping, aggregation, HAVING, DISTINCT, ORDER BY and LIMIT/OFFSET.
    fn project(
        &self,
        graph: &Graph,
        rows: Vec<Vec<Option<TermId>>>,
    ) -> Result<Solutions, SparqlError> {
        let query = &self.query;
        let aggregating = query.is_aggregate();

        // Determine output columns.
        let items: Vec<SelectItem> = if query.select.is_empty() {
            if aggregating {
                query
                    .group_by
                    .iter()
                    .map(|v| SelectItem::Var(v.clone()))
                    .collect()
            } else {
                self.var_names
                    .iter()
                    .filter(|n| !n.starts_with('\u{1}'))
                    .map(|n| SelectItem::Var(n.clone()))
                    .collect()
            }
        } else {
            query.select.clone()
        };

        let mut out_rows: Vec<Vec<Option<Value>>> = Vec::new();
        if aggregating {
            // validate: projected plain vars must be grouped
            for item in &items {
                if let SelectItem::Var(v) = item {
                    if !query.group_by.iter().any(|g| g == v) {
                        return Err(SparqlError::invalid(format!(
                            "variable ?{v} is projected but neither grouped nor aggregated"
                        )));
                    }
                }
            }
            let group_idx: Vec<usize> = query
                .group_by
                .iter()
                .map(|g| {
                    self.var_index.get(g).copied().ok_or_else(|| {
                        SparqlError::invalid(format!("GROUP BY variable ?{g} not in WHERE"))
                    })
                })
                .collect::<Result<_, _>>()?;

            let mut groups: FxHashMap<Vec<Option<TermId>>, Vec<usize>> = FxHashMap::default();
            let mut group_order: Vec<Vec<Option<TermId>>> = Vec::new();
            for (ri, row) in rows.iter().enumerate() {
                let key: Vec<Option<TermId>> = group_idx.iter().map(|&i| row[i]).collect();
                groups
                    .entry(key.clone())
                    .or_insert_with(|| {
                        group_order.push(key);
                        Vec::new()
                    })
                    .push(ri);
            }
            // Implicit single group for aggregates without GROUP BY, but
            // only if there are rows (SPARQL returns one row with e.g.
            // COUNT()=0 for an empty match; we follow that).
            if query.group_by.is_empty() && group_order.is_empty() {
                group_order.push(Vec::new());
                groups.insert(Vec::new(), Vec::new());
            }

            for key in &group_order {
                let members = &groups[key];
                let ctx = GroupContext {
                    compiled: self,
                    graph,
                    rows: &rows,
                    members,
                    group_by: &query.group_by,
                    key,
                };
                if let Some(having) = &query.having {
                    let keep = ctx.eval(having).and_then(|v| v.as_bool()).unwrap_or(false);
                    if !keep {
                        continue;
                    }
                }
                let mut out = Vec::with_capacity(items.len());
                for item in &items {
                    match item {
                        SelectItem::Var(v) => out.push(ctx.group_var(v).map(Value::Term)),
                        SelectItem::Agg { func, expr, .. } => {
                            out.push(ctx.aggregate(*func, expr));
                        }
                    }
                }
                out_rows.push(out);
            }
        } else {
            if query.having.is_some() {
                return Err(SparqlError::invalid("HAVING requires aggregation"));
            }
            for row in &rows {
                let mut out = Vec::with_capacity(items.len());
                for item in &items {
                    match item {
                        SelectItem::Var(v) => {
                            let value =
                                self.var_index.get(v).and_then(|&i| row[i]).map(Value::Term);
                            out.push(value);
                        }
                        SelectItem::Agg { .. } => {
                            return Err(SparqlError::invalid(
                                "aggregate select item outside aggregation",
                            ));
                        }
                    }
                }
                out_rows.push(out);
            }
        }

        let vars: Vec<String> = items.iter().map(|i| i.name().to_owned()).collect();

        if query.distinct {
            let mut seen: re2x_rdf::hash::FxHashSet<Vec<DedupKey>> = Default::default();
            out_rows.retain(|row| {
                let key: Vec<DedupKey> = row.iter().map(DedupKey::of).collect();
                seen.insert(key)
            });
        }

        if !query.order_by.is_empty() {
            let key_cols: Vec<(usize, Order)> = query
                .order_by
                .iter()
                .map(|k| {
                    vars.iter()
                        .position(|v| *v == k.column)
                        .map(|i| (i, k.order))
                        .ok_or_else(|| {
                            SparqlError::invalid(format!(
                                "ORDER BY column ?{} is not projected",
                                k.column
                            ))
                        })
                })
                .collect::<Result<_, _>>()?;
            out_rows.sort_by(|a, b| {
                for &(col, order) in &key_cols {
                    let ord = match (&a[col], &b[col]) {
                        (Some(x), Some(y)) => x.compare(y, graph),
                        (None, Some(_)) => std::cmp::Ordering::Less,
                        (Some(_), None) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    };
                    let ord = if order == Order::Desc {
                        ord.reverse()
                    } else {
                        ord
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let offset = query.offset.unwrap_or(0);
        if offset > 0 {
            out_rows.drain(..offset.min(out_rows.len()));
        }
        if let Some(limit) = query.limit {
            out_rows.truncate(limit);
        }

        Ok(Solutions {
            vars,
            rows: out_rows,
        })
    }
}

/// Structural key for `DISTINCT` deduplication — avoids formatting values
/// to strings on a hot path. Shared with the sharded merge layer, which
/// must deduplicate merged rows with exactly the semantics of local
/// `DISTINCT`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum DedupKey {
    Unbound,
    Term(TermId),
    Number(u64),
    Bool(bool),
    Str(String),
}

impl DedupKey {
    pub(crate) fn of(cell: &Option<Value>) -> DedupKey {
        match cell {
            None => DedupKey::Unbound,
            Some(Value::Term(id)) => DedupKey::Term(*id),
            Some(Value::Number(n)) => DedupKey::Number(n.to_bits()),
            Some(Value::Bool(b)) => DedupKey::Bool(*b),
            Some(Value::Str(s)) => DedupKey::Str(s.clone()),
        }
    }
}

/// Expression context over one binding row (WHERE filters).
pub(crate) struct RowContext<'a> {
    compiled: &'a Compiled,
    graph: &'a Graph,
}

impl<'a> EvalContext for RowContext<'a> {
    type Row = [Option<TermId>];

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn lookup(&self, name: &str, row: &Self::Row) -> Option<Value> {
        let &i = self.compiled.var_index.get(name)?;
        row.get(i).copied().flatten().map(Value::Term)
    }

    fn aggregate(&self, _func: AggFunc, _expr: &Expr, _row: &Self::Row) -> Option<Value> {
        None // aggregates rejected in WHERE filters at compile time
    }
}

/// Expression context over one group (HAVING and aggregate projection).
struct GroupContext<'a> {
    compiled: &'a Compiled,
    graph: &'a Graph,
    rows: &'a [Vec<Option<TermId>>],
    members: &'a [usize],
    group_by: &'a [String],
    key: &'a [Option<TermId>],
}

impl<'a> GroupContext<'a> {
    fn group_var(&self, name: &str) -> Option<TermId> {
        let pos = self.group_by.iter().position(|g| g == name)?;
        self.key.get(pos).copied().flatten()
    }

    fn eval(&self, expr: &Expr) -> Option<Value> {
        eval_expr(expr, self, &())
    }

    fn aggregate(&self, func: AggFunc, expr: &Expr) -> Option<Value> {
        let row_ctx = RowContext {
            compiled: self.compiled,
            graph: self.graph,
        };
        let mut count = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut numeric_count = 0usize;
        let mut distinct: re2x_rdf::hash::FxHashSet<DedupKey> = Default::default();
        for &ri in self.members {
            let row = &self.rows[ri];
            let Some(v) = eval_expr(expr, &row_ctx, row.as_slice()) else {
                continue;
            };
            count += 1;
            if func == AggFunc::CountDistinct {
                distinct.insert(DedupKey::of(&Some(v.clone())));
            }
            if let Some(n) = v.as_number(self.graph) {
                numeric_count += 1;
                sum += n;
                min = min.min(n);
                max = max.max(n);
            }
        }
        match func {
            AggFunc::Count => Some(Value::Number(count as f64)),
            AggFunc::CountDistinct => Some(Value::Number(distinct.len() as f64)),
            AggFunc::CountNumeric => Some(Value::Number(numeric_count as f64)),
            // Unbound (not 0) when no binding was numeric, matching
            // Avg/Min/Max — a spurious `SUM = 0` would satisfy HAVING
            // filters over groups that carry no numeric data at all.
            AggFunc::Sum => (numeric_count > 0).then_some(Value::Number(sum)),
            AggFunc::Avg => {
                if numeric_count == 0 {
                    None
                } else {
                    Some(Value::Number(sum / numeric_count as f64))
                }
            }
            AggFunc::Min => (numeric_count > 0).then_some(Value::Number(min)),
            AggFunc::Max => (numeric_count > 0).then_some(Value::Number(max)),
        }
    }
}

impl<'a> EvalContext for GroupContext<'a> {
    type Row = ();

    fn graph(&self) -> &Graph {
        self.graph
    }

    fn lookup(&self, name: &str, _row: &()) -> Option<Value> {
        self.group_var(name).map(Value::Term)
    }

    fn aggregate(&self, func: AggFunc, expr: &Expr, _row: &()) -> Option<Value> {
        GroupContext::aggregate(self, func, expr)
    }
}
