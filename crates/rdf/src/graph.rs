//! The indexed in-memory triple store.
//!
//! [`Graph`] maintains three two-level indexes (SPO, POS, OSP) so every
//! triple-pattern access path — any combination of bound/unbound subject,
//! predicate, object — is answered without scanning unrelated triples. This
//! is the standard indexing scheme of native RDF stores and the property the
//! SPARQL evaluator in `re2x-sparql` relies on for its selectivity
//! estimates.
//!
//! Each index lives in one of two physical forms (see [`Index`]):
//!
//! * **dynamic** — nested hash maps, grown triple-by-triple through
//!   [`Graph::insert_ids`]; the form every generated or parsed graph has;
//! * **frozen** — flat compressed-sparse-row arrays ([`FrozenIndex`]),
//!   bulk-built by the snapshot loader in a handful of large allocations.
//!   The first mutation thaws a frozen index back into nested maps.
//!
//! Two invariants beyond plain index coverage, holding in both forms:
//!
//! * **Posting lists are sorted by [`TermId`].** Every posting list of the
//!   three indexes is kept sorted (binary-search insertion in dynamic form,
//!   sorted by construction in frozen form), so membership tests are
//!   `O(log n)` and the slices returned by
//!   [`Graph::objects`]/[`Graph::subjects`]/[`Graph::predicates_between`]
//!   are sorted adjacency views the vectorized merge-join executor in
//!   `re2x-sparql` intersects directly.
//! * **Per-predicate statistics are incremental.** Triple counts and
//!   distinct-subject counts per predicate are maintained in the
//!   insert/remove paths (and restored verbatim by the snapshot loader), so
//!   the query planner's cardinality estimates
//!   ([`Graph::predicate_cardinality`], [`Graph::predicate_stats`]) are
//!   `O(1)` lookups instead of index walks.

use crate::hash::FxHashMap;
use crate::interner::{Interner, TermId};
use crate::term::{Literal, Term};
use crate::text::TextIndex;
use std::borrow::Cow;
use std::sync::Arc;

/// A triple of interned term ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject.
    pub s: TermId,
    /// Predicate.
    pub p: TermId,
    /// Object.
    pub o: TermId,
}

type TwoLevelIndex = FxHashMap<TermId, FxHashMap<TermId, Vec<TermId>>>;

/// A two-level index in its bulk-loaded form: compressed sparse rows,
/// twice. Outer keys are strictly ascending; each owns a contiguous run of
/// strictly ascending inner keys; each of those owns a contiguous, strictly
/// ascending run of the concatenated posting array.
///
/// The whole structure is five flat arrays — the snapshot loader fills
/// them with large sequential writes instead of the one-hash-map-plus-one-
/// `Vec` allocation *per key* the dynamic form costs, which is what makes
/// loading a snapshot several times faster than re-running generation.
/// Lookups binary-search the sorted key arrays instead of hashing.
///
/// Offsets are `u32`, capping a snapshot-loadable graph at 2^32 − 1
/// triples — far above the 90M-triple top rung of the scale experiment,
/// and half the footprint of `usize` offsets at that scale.
#[derive(Debug, Default, Clone)]
pub(crate) struct FrozenIndex {
    /// Outer keys, strictly ascending.
    pub(crate) outer_ids: Vec<TermId>,
    /// End offset (exclusive) of each outer key's run in `inner_ids`;
    /// a run starts where the previous one ended (the first at 0).
    pub(crate) outer_ends: Vec<u32>,
    /// Inner keys, grouped by outer key, strictly ascending per group.
    pub(crate) inner_ids: Vec<TermId>,
    /// End offset (exclusive) of each inner key's run in `postings`.
    pub(crate) inner_ends: Vec<u32>,
    /// All posting lists, concatenated in (outer, inner) order.
    pub(crate) postings: Vec<TermId>,
}

impl FrozenIndex {
    /// Range of outer group `g` in the inner arrays.
    #[inline]
    fn inner_range(&self, g: usize) -> (usize, usize) {
        let start = if g == 0 {
            0
        } else {
            self.outer_ends[g - 1] as usize
        };
        (start, self.outer_ends[g] as usize)
    }

    /// Range of inner entry `k` in the posting array.
    #[inline]
    fn postings_range(&self, k: usize) -> (usize, usize) {
        let start = if k == 0 {
            0
        } else {
            self.inner_ends[k - 1] as usize
        };
        (start, self.inner_ends[k] as usize)
    }

    /// The posting list under `(a, b)`, or the empty slice.
    fn get(&self, a: TermId, b: TermId) -> &[TermId] {
        let Ok(g) = self.outer_ids.binary_search(&a) else {
            return &[];
        };
        let (gs, ge) = self.inner_range(g);
        let Ok(i) = self.inner_ids[gs..ge].binary_search(&b) else {
            return &[];
        };
        let (ps, pe) = self.postings_range(gs + i);
        &self.postings[ps..pe]
    }

    /// Total postings under outer key `a` — `O(log outer)`: the posting
    /// runs of one group are contiguous, so the count is one subtraction.
    fn outer_posting_count(&self, a: TermId) -> usize {
        let Ok(g) = self.outer_ids.binary_search(&a) else {
            return 0;
        };
        let (gs, ge) = self.inner_range(g);
        if ge == gs {
            return 0;
        }
        let start = if gs == 0 {
            0
        } else {
            self.inner_ends[gs - 1] as usize
        };
        self.inner_ends[ge - 1] as usize - start
    }

    /// Rebuilds the nested-map form — the thaw path when a snapshot-loaded
    /// graph is mutated. `O(index)`, paid once per index.
    fn to_dynamic(&self) -> TwoLevelIndex {
        let mut map =
            TwoLevelIndex::with_capacity_and_hasher(self.outer_ids.len(), Default::default());
        for (g, &a) in self.outer_ids.iter().enumerate() {
            let (gs, ge) = self.inner_range(g);
            let mut inner: FxHashMap<TermId, Vec<TermId>> =
                FxHashMap::with_capacity_and_hasher(ge - gs, Default::default());
            for k in gs..ge {
                let (ps, pe) = self.postings_range(k);
                inner.insert(self.inner_ids[k], self.postings[ps..pe].to_vec());
            }
            map.insert(a, inner);
        }
        map
    }

    /// Builds the frozen form from nested maps — the snapshot writer's path
    /// for graphs that were grown dynamically. Sorts each key set once.
    fn from_dynamic(map: &TwoLevelIndex) -> FrozenIndex {
        let inner_total: usize = map.values().map(FxHashMap::len).sum();
        let posting_total: usize = map.values().flat_map(|m| m.values()).map(Vec::len).sum();
        let mut frozen = FrozenIndex {
            outer_ids: Vec::with_capacity(map.len()),
            outer_ends: Vec::with_capacity(map.len()),
            inner_ids: Vec::with_capacity(inner_total),
            inner_ends: Vec::with_capacity(inner_total),
            postings: Vec::with_capacity(posting_total),
        };
        let mut outer: Vec<TermId> = map.keys().copied().collect();
        outer.sort_unstable();
        for a in outer {
            let Some(inner) = map.get(&a) else {
                continue;
            };
            let mut keys: Vec<TermId> = inner.keys().copied().collect();
            keys.sort_unstable();
            for b in keys {
                let Some(postings) = inner.get(&b) else {
                    continue;
                };
                frozen.postings.extend_from_slice(postings);
                frozen.inner_ids.push(b);
                frozen.inner_ends.push(frozen.postings.len() as u32);
            }
            frozen.outer_ids.push(a);
            frozen.outer_ends.push(frozen.inner_ids.len() as u32);
        }
        frozen
    }

    fn heap_bytes(&self) -> usize {
        self.outer_ids.capacity() * std::mem::size_of::<TermId>()
            + self.outer_ends.capacity() * std::mem::size_of::<u32>()
            + self.inner_ids.capacity() * std::mem::size_of::<TermId>()
            + self.inner_ends.capacity() * std::mem::size_of::<u32>()
            + self.postings.capacity() * std::mem::size_of::<TermId>()
    }
}

/// One of the graph's three indexes, in dynamic (nested maps) or frozen
/// ([`FrozenIndex`]) form. Reads serve either form transparently; the
/// first mutation [`Index::thaw`]s a frozen index back into maps.
///
/// Invariant: `frozen.is_some()` implies `dynamic` is empty — exactly one
/// form holds data at any time.
#[derive(Debug, Default, Clone)]
pub(crate) struct Index {
    frozen: Option<FrozenIndex>,
    dynamic: TwoLevelIndex,
}

impl Index {
    /// Wraps a bulk-built frozen index — the snapshot loader's constructor.
    pub(crate) fn from_frozen(frozen: FrozenIndex) -> Index {
        Index {
            frozen: Some(frozen),
            dynamic: TwoLevelIndex::default(),
        }
    }

    /// The posting list under `(a, b)`, or the empty slice.
    pub(crate) fn get(&self, a: TermId, b: TermId) -> &[TermId] {
        if let Some(frozen) = &self.frozen {
            return frozen.get(a, b);
        }
        self.dynamic
            .get(&a)
            .and_then(|m| m.get(&b))
            .map_or(&[], Vec::as_slice)
    }

    /// `true` if any posting list exists under outer key `a`.
    pub(crate) fn contains_outer(&self, a: TermId) -> bool {
        if let Some(frozen) = &self.frozen {
            return frozen.outer_ids.binary_search(&a).is_ok();
        }
        self.dynamic.contains_key(&a)
    }

    /// The inner keys under outer key `a` (sorted in frozen form, hash
    /// order in dynamic form — callers that need an order sort).
    pub(crate) fn inner_keys(&self, a: TermId) -> Vec<TermId> {
        if let Some(frozen) = &self.frozen {
            let Ok(g) = frozen.outer_ids.binary_search(&a) else {
                return Vec::new();
            };
            let (gs, ge) = frozen.inner_range(g);
            return frozen.inner_ids[gs..ge].to_vec();
        }
        self.dynamic
            .get(&a)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Total postings under outer key `a`.
    pub(crate) fn outer_posting_count(&self, a: TermId) -> usize {
        if let Some(frozen) = &self.frozen {
            return frozen.outer_posting_count(a);
        }
        self.dynamic
            .get(&a)
            .map_or(0, |m| m.values().map(Vec::len).sum())
    }

    /// Invokes `f` on every `(inner key, postings)` pair under `a` until it
    /// returns `true`. Returns whether iteration stopped early.
    pub(crate) fn for_each_inner_until(
        &self,
        a: TermId,
        mut f: impl FnMut(TermId, &[TermId]) -> bool,
    ) -> bool {
        if let Some(frozen) = &self.frozen {
            let Ok(g) = frozen.outer_ids.binary_search(&a) else {
                return false;
            };
            let (gs, ge) = frozen.inner_range(g);
            for k in gs..ge {
                let (ps, pe) = frozen.postings_range(k);
                if f(frozen.inner_ids[k], &frozen.postings[ps..pe]) {
                    return true;
                }
            }
            return false;
        }
        if let Some(inner) = self.dynamic.get(&a) {
            for (&b, postings) in inner {
                if f(b, postings) {
                    return true;
                }
            }
        }
        false
    }

    /// Invokes `f` on every `(outer, inner, postings)` entry until it
    /// returns `true`. Returns whether iteration stopped early.
    pub(crate) fn for_each_until(
        &self,
        mut f: impl FnMut(TermId, TermId, &[TermId]) -> bool,
    ) -> bool {
        if let Some(frozen) = &self.frozen {
            for (g, &a) in frozen.outer_ids.iter().enumerate() {
                let (gs, ge) = frozen.inner_range(g);
                for k in gs..ge {
                    let (ps, pe) = frozen.postings_range(k);
                    if f(a, frozen.inner_ids[k], &frozen.postings[ps..pe]) {
                        return true;
                    }
                }
            }
            return false;
        }
        for (&a, inner) in &self.dynamic {
            for (&b, postings) in inner {
                if f(a, b, postings) {
                    return true;
                }
            }
        }
        false
    }

    /// Invokes `f` on every `(outer, inner, postings)` entry in ascending
    /// `(outer, inner)` order — the canonical stream the snapshot writer
    /// and content digest consume. Free on the frozen form (it *is* that
    /// order); sorts the key sets on the dynamic form.
    pub(crate) fn for_each_sorted(&self, mut f: impl FnMut(TermId, TermId, &[TermId])) {
        if let Some(frozen) = &self.frozen {
            for (g, &a) in frozen.outer_ids.iter().enumerate() {
                let (gs, ge) = frozen.inner_range(g);
                for k in gs..ge {
                    let (ps, pe) = frozen.postings_range(k);
                    f(a, frozen.inner_ids[k], &frozen.postings[ps..pe]);
                }
            }
            return;
        }
        let mut outer: Vec<TermId> = self.dynamic.keys().copied().collect();
        outer.sort_unstable();
        for a in outer {
            let Some(inner) = self.dynamic.get(&a) else {
                continue;
            };
            let mut keys: Vec<TermId> = inner.keys().copied().collect();
            keys.sort_unstable();
            for b in keys {
                let Some(postings) = inner.get(&b) else {
                    continue;
                };
                f(a, b, postings);
            }
        }
    }

    /// The frozen form — borrowed if the index already is frozen, built by
    /// one sort pass otherwise. The snapshot writer's view.
    pub(crate) fn freeze_view(&self) -> Cow<'_, FrozenIndex> {
        if let Some(frozen) = &self.frozen {
            Cow::Borrowed(frozen)
        } else {
            Cow::Owned(FrozenIndex::from_dynamic(&self.dynamic))
        }
    }

    /// Mutable access to the nested-map form, converting a frozen index
    /// first (`O(index)`, paid once — after that the index stays dynamic).
    pub(crate) fn thaw(&mut self) -> &mut TwoLevelIndex {
        if let Some(frozen) = self.frozen.take() {
            self.dynamic = frozen.to_dynamic();
        }
        &mut self.dynamic
    }

    fn heap_bytes(&self) -> usize {
        if let Some(frozen) = &self.frozen {
            return frozen.heap_bytes();
        }
        self.dynamic
            .values()
            .map(|m| {
                m.values()
                    .map(|v| v.capacity() * std::mem::size_of::<TermId>() + 16)
                    .sum::<usize>()
                    + 16
            })
            .sum()
    }
}

/// Incrementally maintained statistics for one predicate.
///
/// Updated on every [`Graph::insert_ids`]/[`Graph::remove_ids`], so reads
/// are `O(1)`; the distinct-object count comes for free from the POS
/// index's key set and is reported alongside in
/// [`Graph::predicate_stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples using the predicate.
    pub triples: usize,
    /// Number of distinct subjects appearing with the predicate.
    pub distinct_subjects: usize,
    /// Number of distinct objects appearing with the predicate.
    pub distinct_objects: usize,
}

/// An in-memory RDF graph with full index coverage and a full-text index
/// over its literals.
///
/// The term table and text index — by far the heaviest parts of a loaded
/// graph — live behind copy-on-write handles: cloning a graph (or building
/// shards via [`Graph::term_shell`]) shares them until a clone interns a
/// new term or (un)indexes a literal, at which point only that clone pays
/// for a deep copy.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    pub(crate) interner: Arc<Interner>,
    /// subject → predicate → objects.
    pub(crate) spo: Index,
    /// predicate → object → subjects.
    pub(crate) pos: Index,
    /// object → subject → predicates.
    pub(crate) osp: Index,
    pub(crate) len: usize,
    /// predicate → incrementally maintained counts; entries are dropped
    /// when a predicate's last triple is removed, so iteration never sees
    /// fully-deleted predicates.
    pub(crate) pred_stats: FxHashMap<TermId, PredicateStats>,
    pub(crate) text: Arc<TextIndex>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- term management -------------------------------------------------

    /// Interns an arbitrary term.
    pub fn intern(&mut self, term: Term) -> TermId {
        let fresh = self.interner.get(&term).is_none();
        let is_literal_lexical = term.as_literal().map(|l| l.lexical().to_owned());
        let id = Arc::make_mut(&mut self.interner).intern(term);
        if fresh {
            if let Some(lexical) = is_literal_lexical {
                Arc::make_mut(&mut self.text).index_literal(id, &lexical);
            }
        }
        id
    }

    /// Interns an IRI.
    pub fn intern_iri(&mut self, iri: impl Into<String>) -> TermId {
        self.intern(Term::iri(iri))
    }

    /// Interns a literal.
    pub fn intern_literal(&mut self, literal: Literal) -> TermId {
        self.intern(Term::Literal(literal))
    }

    /// Looks up the id of a term without interning.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.interner.get(term)
    }

    /// Looks up the id of an IRI without interning.
    pub fn iri_id(&self, iri: &str) -> Option<TermId> {
        self.interner.get(&Term::iri(iri))
    }

    /// Resolves an id to its term.
    #[inline]
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.resolve(id)
    }

    /// Cached numeric value of a literal term.
    #[inline]
    pub fn numeric_value(&self, id: TermId) -> Option<f64> {
        self.interner.numeric_value(id)
    }

    /// Access to the underlying interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Access to the full-text index.
    pub fn text_index(&self) -> &TextIndex {
        &self.text
    }

    /// A graph that shares this graph's term table and text index (zero-copy
    /// `Arc` clones) but holds no triples.
    ///
    /// This is the starting point for building partitions whose `TermId`s
    /// align with the source graph: solutions produced against a shell-built
    /// shard resolve correctly against the original graph's interner. Note
    /// the cloned text index covers *all* of the source's literals, not just
    /// the ones the caller later inserts.
    pub fn term_shell(&self) -> Graph {
        Graph {
            interner: self.interner.clone(),
            spo: Index::default(),
            pos: Index::default(),
            osp: Index::default(),
            len: 0,
            pred_stats: FxHashMap::default(),
            text: self.text.clone(),
        }
    }

    /// Assembles a graph directly from pre-built frozen indexes — the
    /// snapshot loader's constructor, which bypasses per-triple insertion
    /// entirely. Callers are responsible for the index invariants (sorted
    /// runs, mirror agreement, exact `len` and statistics); the snapshot
    /// round-trip property suite is what holds this to account.
    pub(crate) fn from_snapshot_parts(
        interner: Arc<Interner>,
        spo: FrozenIndex,
        pos: FrozenIndex,
        osp: FrozenIndex,
        len: usize,
        pred_stats: FxHashMap<TermId, PredicateStats>,
        text: Arc<TextIndex>,
    ) -> Graph {
        Graph {
            interner,
            spo: Index::from_frozen(spo),
            pos: Index::from_frozen(pos),
            osp: Index::from_frozen(osp),
            len,
            pred_stats,
            text,
        }
    }

    // ---- mutation ---------------------------------------------------------

    /// Inserts a triple of already-interned ids. Returns `false` if it was
    /// already present. Posting lists stay sorted (binary-search
    /// insertion), and the per-predicate statistics are updated in place.
    /// On a snapshot-loaded graph the first insert thaws the frozen indexes
    /// back into their mutable form.
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let objects = self.spo.thaw().entry(s).or_default().entry(p).or_default();
        let fresh_subject = objects.is_empty();
        let Err(slot) = objects.binary_search(&o) else {
            return false;
        };
        objects.insert(slot, o);
        let by_object = self.pos.thaw().entry(p).or_default();
        let fresh_pred_object = !by_object.contains_key(&o);
        let subjects = by_object.entry(o).or_default();
        if let Err(slot) = subjects.binary_search(&s) {
            subjects.insert(slot, s);
        }
        let fresh_object = !self.osp.contains_outer(o);
        let predicates = self.osp.thaw().entry(o).or_default().entry(s).or_default();
        if let Err(slot) = predicates.binary_search(&p) {
            predicates.insert(slot, p);
        }
        self.len += 1;
        let stats = self.pred_stats.entry(p).or_default();
        stats.triples += 1;
        stats.distinct_subjects += usize::from(fresh_subject);
        stats.distinct_objects += usize::from(fresh_pred_object);
        if fresh_object {
            // A literal unindexed by a prior removal becomes searchable again
            // the moment a triple uses it as an object.
            if let Some(lexical) = self
                .interner
                .resolve(o)
                .as_literal()
                .map(|l| l.lexical().to_owned())
            {
                if !self.text.is_indexed(o, &lexical) {
                    Arc::make_mut(&mut self.text).index_literal(o, &lexical);
                }
            }
        }
        true
    }

    /// Interns the three terms and inserts the triple.
    pub fn insert(&mut self, s: Term, p: Term, o: Term) -> bool {
        let s = self.intern(s);
        let p = self.intern(p);
        let o = self.intern(o);
        self.insert_ids(s, p, o)
    }

    /// Removes a triple. Returns `false` if it was not present.
    ///
    /// The per-predicate statistics shrink in lockstep (an add→remove→add
    /// cycle leaves them exact), and index entries emptied by the removal
    /// are pruned so enumerations
    /// (`predicates_from`, `objects_of_predicate`, …) and the planner's
    /// cardinality estimates never see fully-deleted terms, and a literal
    /// object no longer used by any triple is dropped from the full-text
    /// index (it resurfaces if a triple re-adopts it, see
    /// [`Graph::insert_ids`]).
    pub fn remove_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        // Absent triples are rejected on the read path, so a missed remove
        // never thaws a frozen index.
        if !self.contains_ids(s, p, o) {
            return false;
        }
        let mut emptied_subject = false;
        {
            let spo = self.spo.thaw();
            let Some(by_p) = spo.get_mut(&s) else {
                return false;
            };
            let Some(objects) = by_p.get_mut(&p) else {
                return false;
            };
            let Ok(pos_o) = objects.binary_search(&o) else {
                return false;
            };
            objects.remove(pos_o);
            if objects.is_empty() {
                emptied_subject = true;
                by_p.remove(&p);
                if by_p.is_empty() {
                    spo.remove(&s);
                }
            }
        }
        // The SPO index held the triple, so the mirror indexes hold it too;
        // the lookups below cannot miss. They are written as non-panicking
        // if-lets all the same: a (hypothetically) desynced mirror degrades
        // to a stale posting instead of poisoning every lock above us, and
        // the index-agreement property suite would catch the desync.
        let mut emptied_pred_object = false;
        let pos = self.pos.thaw();
        if let Some(by_o) = pos.get_mut(&p) {
            if let Some(subjects) = by_o.get_mut(&o) {
                if let Ok(i) = subjects.binary_search(&s) {
                    subjects.remove(i);
                }
                if subjects.is_empty() {
                    emptied_pred_object = true;
                    by_o.remove(&o);
                    if by_o.is_empty() {
                        pos.remove(&p);
                    }
                }
            }
        }
        let osp = self.osp.thaw();
        if let Some(by_s) = osp.get_mut(&o) {
            if let Some(predicates) = by_s.get_mut(&s) {
                if let Ok(i) = predicates.binary_search(&p) {
                    predicates.remove(i);
                }
                if predicates.is_empty() {
                    by_s.remove(&s);
                    if by_s.is_empty() {
                        osp.remove(&o);
                    }
                }
            }
        }
        self.len -= 1;
        if let Some(stats) = self.pred_stats.get_mut(&p) {
            stats.triples -= 1;
            stats.distinct_subjects -= usize::from(emptied_subject);
            stats.distinct_objects -= usize::from(emptied_pred_object);
            if stats.triples == 0 {
                self.pred_stats.remove(&p);
            }
        }
        if !self.osp.contains_outer(o) {
            if let Some(lexical) = self
                .interner
                .resolve(o)
                .as_literal()
                .map(|l| l.lexical().to_owned())
            {
                Arc::make_mut(&mut self.text).unindex_literal(o, &lexical);
            }
        }
        true
    }

    // ---- lookup -----------------------------------------------------------

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the graph has no triples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test (binary search over the sorted posting list).
    pub fn contains_ids(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.get(s, p).binary_search(&o).is_ok()
    }

    /// Objects of `(s, p, ?)`, sorted by id.
    pub fn objects(&self, s: TermId, p: TermId) -> &[TermId] {
        self.spo.get(s, p)
    }

    /// Subjects of `(?, p, o)`, sorted by id.
    pub fn subjects(&self, p: TermId, o: TermId) -> &[TermId] {
        self.pos.get(p, o)
    }

    /// Predicates of `(s, ?, o)`, sorted by id.
    pub fn predicates_between(&self, s: TermId, o: TermId) -> &[TermId] {
        self.osp.get(o, s)
    }

    /// Distinct predicates leaving `s`.
    pub fn predicates_from(&self, s: TermId) -> Vec<TermId> {
        self.spo.inner_keys(s)
    }

    /// Distinct predicates arriving at `o`.
    pub fn predicates_into(&self, o: TermId) -> Vec<TermId> {
        let mut preds: Vec<TermId> = Vec::new();
        self.osp.for_each_inner_until(o, |_, predicates| {
            preds.extend_from_slice(predicates);
            false
        });
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Every predicate currently used by at least one triple, sorted by id
    /// (the key set of the incremental statistics, so `O(predicates)`).
    pub fn predicates(&self) -> Vec<TermId> {
        let mut preds: Vec<TermId> = self.pred_stats.keys().copied().collect();
        preds.sort_unstable();
        preds
    }

    /// Distinct objects appearing with predicate `p` (POS index keys).
    pub fn objects_of_predicate(&self, p: TermId) -> Vec<TermId> {
        self.pos.inner_keys(p)
    }

    /// Number of triples with predicate `p` — an `O(1)` lookup of the
    /// incrementally maintained count (the planner calls this inside its
    /// greedy ordering loop, so it must not walk the POS index).
    pub fn predicate_cardinality(&self, p: TermId) -> usize {
        self.pred_stats.get(&p).map_or(0, |st| st.triples)
    }

    /// Incrementally maintained statistics for predicate `p`: triple count
    /// and distinct subject/object counts, all `O(1)`.
    pub fn predicate_stats(&self, p: TermId) -> PredicateStats {
        self.pred_stats.get(&p).copied().unwrap_or_default()
    }

    /// Number of triples matching a pattern (`None` = wildcard) without
    /// materializing them.
    pub fn count_matching(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains_ids(s, p, o)),
            (Some(s), Some(p), None) => self.objects(s, p).len(),
            (None, Some(p), Some(o)) => self.subjects(p, o).len(),
            (Some(s), None, Some(o)) => self.predicates_between(s, o).len(),
            (Some(s), None, None) => self.spo.outer_posting_count(s),
            (None, Some(p), None) => self.predicate_cardinality(p),
            (None, None, Some(o)) => self.osp.outer_posting_count(o),
            (None, None, None) => self.len,
        }
    }

    /// Invokes `f` for every triple matching the pattern (`None` =
    /// wildcard). Uses the most selective index for the bound positions.
    pub fn for_each_matching(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: impl FnMut(Triple),
    ) {
        self.for_each_matching_until(s, p, o, |t| {
            f(t);
            false
        });
    }

    /// Like [`Graph::for_each_matching`], but stops as soon as `f` returns
    /// `true` (existence probes stay lazy). Returns whether iteration was
    /// stopped early.
    pub fn for_each_matching_until(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: impl FnMut(Triple) -> bool,
    ) -> bool {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains_ids(s, p, o) {
                    return f(Triple { s, p, o });
                }
                false
            }
            (Some(s), Some(p), None) => {
                for &o in self.objects(s, p) {
                    if f(Triple { s, p, o }) {
                        return true;
                    }
                }
                false
            }
            (None, Some(p), Some(o)) => {
                for &s in self.subjects(p, o) {
                    if f(Triple { s, p, o }) {
                        return true;
                    }
                }
                false
            }
            (Some(s), None, Some(o)) => {
                for &p in self.predicates_between(s, o) {
                    if f(Triple { s, p, o }) {
                        return true;
                    }
                }
                false
            }
            (Some(s), None, None) => self.spo.for_each_inner_until(s, |p, objects| {
                objects.iter().any(|&o| f(Triple { s, p, o }))
            }),
            (None, Some(p), None) => self.pos.for_each_inner_until(p, |o, subjects| {
                subjects.iter().any(|&s| f(Triple { s, p, o }))
            }),
            (None, None, Some(o)) => self.osp.for_each_inner_until(o, |s, predicates| {
                predicates.iter().any(|&p| f(Triple { s, p, o }))
            }),
            (None, None, None) => self
                .spo
                .for_each_until(|s, p, objects| objects.iter().any(|&o| f(Triple { s, p, o }))),
        }
    }

    /// Collects the triples matching a pattern.
    pub fn matching(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_matching(s, p, o, |t| out.push(t));
        out
    }

    /// Iterates every triple.
    pub fn iter(&self) -> Vec<Triple> {
        self.matching(None, None, None)
    }

    /// Every triple in ascending `(s, p, o)` order — the canonical stream
    /// the snapshot writer serializes and the content digest hashes. Free
    /// on a frozen index; only the hash-map key sets need sorting on a
    /// dynamic one (posting lists are sorted by invariant).
    pub fn iter_sorted(&self) -> Vec<Triple> {
        let mut out = Vec::with_capacity(self.len);
        self.spo.for_each_sorted(|s, p, objects| {
            for &o in objects {
                out.push(Triple { s, p, o });
            }
        });
        out
    }

    /// Literal terms whose normalized lexical form equals the query.
    pub fn literals_matching_exact(&self, query: &str) -> Vec<TermId> {
        self.text.search_exact(query).to_vec()
    }

    /// Literal terms containing all tokens of the query.
    pub fn literals_matching_keywords(&self, query: &str) -> Vec<TermId> {
        self.text.search_all_tokens(query)
    }

    /// Approximate heap footprint in bytes (store + interner + text index).
    pub fn heap_bytes(&self) -> usize {
        self.spo.heap_bytes()
            + self.pos.heap_bytes()
            + self.osp.heap_bytes()
            + self.interner.heap_bytes()
            + self.text.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Graph, TermId, TermId, TermId, TermId, TermId) {
        let mut g = Graph::new();
        let obs = g.intern_iri("http://ex/obs1");
        let origin = g.intern_iri("http://ex/countryOrigin");
        let syria = g.intern_iri("http://ex/Syria");
        let label = g.intern_iri("http://ex/hasLabel");
        let lit = g.intern_literal(Literal::simple("Syria"));
        assert!(g.insert_ids(obs, origin, syria));
        assert!(g.insert_ids(syria, label, lit));
        (g, obs, origin, syria, label, lit)
    }

    /// The sample graph with every index round-tripped through the frozen
    /// form — so each test body below exercises both physical forms.
    fn frozen_copy(g: &Graph) -> Graph {
        let mut frozen = g.clone();
        frozen.spo = Index::from_frozen(g.spo.freeze_view().into_owned());
        frozen.pos = Index::from_frozen(g.pos.freeze_view().into_owned());
        frozen.osp = Index::from_frozen(g.osp.freeze_view().into_owned());
        frozen
    }

    #[test]
    fn insert_is_idempotent() {
        let (mut g, obs, origin, syria, ..) = sample();
        assert_eq!(g.len(), 2);
        assert!(!g.insert_ids(obs, origin, syria));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn all_eight_access_paths_agree() {
        let (dynamic, obs, origin, syria, label, lit) = sample();
        for g in [&dynamic, &frozen_copy(&dynamic)] {
            let all = g.iter();
            assert_eq!(all.len(), 2);
            // fully bound
            assert_eq!(g.matching(Some(obs), Some(origin), Some(syria)).len(), 1);
            assert!(g.matching(Some(obs), Some(origin), Some(lit)).is_empty());
            // two bound
            assert_eq!(g.matching(Some(obs), Some(origin), None).len(), 1);
            assert_eq!(g.matching(None, Some(label), Some(lit)).len(), 1);
            assert_eq!(g.matching(Some(syria), None, Some(lit)).len(), 1);
            // one bound
            assert_eq!(g.matching(Some(syria), None, None).len(), 1);
            assert_eq!(g.matching(None, Some(origin), None).len(), 1);
            assert_eq!(g.matching(None, None, Some(syria)).len(), 1);
            // counts agree with materialization
            for s in [None, Some(obs)] {
                for p in [None, Some(origin)] {
                    for o in [None, Some(syria)] {
                        assert_eq!(g.count_matching(s, p, o), g.matching(s, p, o).len());
                    }
                }
            }
        }
    }

    #[test]
    fn helper_accessors() {
        let (dynamic, obs, origin, syria, label, lit) = sample();
        for g in [&dynamic, &frozen_copy(&dynamic)] {
            assert_eq!(g.objects(obs, origin), &[syria]);
            assert_eq!(g.subjects(label, lit), &[syria]);
            assert_eq!(g.predicates_between(obs, syria), &[origin]);
            assert_eq!(g.predicates_from(syria), vec![label]);
            assert_eq!(g.predicates_into(syria), vec![origin]);
            assert_eq!(g.predicate_cardinality(origin), 1);
            assert_eq!(g.predicate_cardinality(lit), 0);
        }
    }

    #[test]
    fn remove_updates_all_indexes() {
        let (g, obs, origin, syria, ..) = sample();
        for mut g in [g.clone(), frozen_copy(&g)] {
            assert!(g.remove_ids(obs, origin, syria));
            assert!(!g.remove_ids(obs, origin, syria));
            assert_eq!(g.len(), 1);
            assert!(g.matching(None, Some(origin), None).is_empty());
            assert!(g.matching(None, None, Some(syria)).is_empty());
            assert!(g.matching(Some(obs), None, None).is_empty());
        }
    }

    #[test]
    fn frozen_indexes_thaw_on_insert() {
        let (dynamic, obs, origin, ..) = sample();
        let mut g = frozen_copy(&dynamic);
        let berlin = g.intern_iri("http://ex/Berlin");
        assert!(g.insert_ids(obs, origin, berlin));
        assert_eq!(g.len(), 3);
        let mut objects = g.objects(obs, origin).to_vec();
        objects.sort_unstable();
        assert!(objects.contains(&berlin));
        assert!(g.objects(obs, origin).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g.subjects(origin, berlin), &[obs]);
        assert_eq!(g.predicates_between(obs, berlin), &[origin]);
    }

    #[test]
    fn text_index_wired_to_interning() {
        let (g, .., lit) = sample();
        assert_eq!(g.literals_matching_exact("syria"), vec![lit]);
        assert_eq!(g.literals_matching_keywords("SYRIA"), vec![lit]);
        assert!(g.literals_matching_exact("germany").is_empty());
    }

    #[test]
    fn reinterning_literal_does_not_duplicate_text_entries() {
        let mut g = Graph::new();
        let a = g.intern_literal(Literal::simple("Asia"));
        let b = g.intern_literal(Literal::simple("Asia"));
        assert_eq!(a, b);
        assert_eq!(g.literals_matching_exact("asia"), vec![a]);
    }

    #[test]
    fn removing_triple_unindexes_orphaned_literal() {
        let (mut g, .., label, lit) = sample();
        let syria = g.iri_id("http://ex/Syria").unwrap();
        assert_eq!(g.literals_matching_exact("syria"), vec![lit]);
        assert!(g.remove_ids(syria, label, lit));
        // The literal is no longer reachable through any triple, so keyword
        // resolution must not surface it.
        assert!(g.literals_matching_exact("syria").is_empty());
        assert!(g.literals_matching_keywords("syria").is_empty());
        // Re-adopting the literal makes it searchable again.
        assert!(g.insert_ids(syria, label, lit));
        assert_eq!(g.literals_matching_exact("syria"), vec![lit]);
    }

    #[test]
    fn shared_literal_stays_indexed_until_last_use_removed() {
        let mut g = Graph::new();
        let a = g.intern_iri("http://ex/a");
        let b = g.intern_iri("http://ex/b");
        let label = g.intern_iri("http://ex/label");
        let lit = g.intern_literal(Literal::simple("Asia"));
        g.insert_ids(a, label, lit);
        g.insert_ids(b, label, lit);
        assert!(g.remove_ids(a, label, lit));
        // Another triple still uses the object: it must stay searchable.
        assert_eq!(g.literals_matching_exact("asia"), vec![lit]);
        assert!(g.remove_ids(b, label, lit));
        assert!(g.literals_matching_exact("asia").is_empty());
    }

    #[test]
    fn removal_prunes_empty_index_entries() {
        let (g, obs, origin, syria, label, lit) = sample();
        for mut g in [g.clone(), frozen_copy(&g)] {
            assert!(g.remove_ids(obs, origin, syria));
            // Enumerations over index keys must not report fully-deleted terms.
            assert!(g.predicates_from(obs).is_empty());
            assert!(g.objects_of_predicate(origin).is_empty());
            assert!(g.predicates_into(syria).is_empty());
            assert_eq!(g.predicate_cardinality(origin), 0);
            for (s, p, o) in [
                (Some(obs), None, None),
                (None, Some(origin), None),
                (None, None, Some(syria)),
            ] {
                assert_eq!(g.count_matching(s, p, o), 0);
            }
            // A partially-deleted term keeps its remaining entries.
            assert_eq!(g.predicates_from(syria), vec![label]);
            assert_eq!(g.objects_of_predicate(label), vec![lit]);
        }
    }

    #[test]
    fn term_shell_shares_terms_but_no_triples() {
        let (g, obs, origin, syria, _, lit) = sample();
        let shell = g.term_shell();
        assert!(shell.is_empty());
        assert_eq!(shell.iri_id("http://ex/obs1"), Some(obs));
        assert_eq!(shell.literals_matching_exact("syria"), vec![lit]);
        let mut shard = shell;
        assert!(shard.insert_ids(obs, origin, syria));
        assert_eq!(shard.len(), 1);
        assert_eq!(g.len(), 2);
    }

    /// Recomputes a predicate's statistics the slow way, for comparison
    /// against the incrementally maintained counts.
    fn recount(g: &Graph, p: TermId) -> PredicateStats {
        let triples = g.matching(None, Some(p), None);
        let mut subjects: Vec<TermId> = triples.iter().map(|t| t.s).collect();
        subjects.sort_unstable();
        subjects.dedup();
        let mut objects: Vec<TermId> = triples.iter().map(|t| t.o).collect();
        objects.sort_unstable();
        objects.dedup();
        PredicateStats {
            triples: triples.len(),
            distinct_subjects: subjects.len(),
            distinct_objects: objects.len(),
        }
    }

    #[test]
    fn add_remove_add_keeps_predicate_counts_exact() {
        let mut g = Graph::new();
        let s1 = g.intern_iri("http://ex/s1");
        let s2 = g.intern_iri("http://ex/s2");
        let p = g.intern_iri("http://ex/p");
        let o1 = g.intern_iri("http://ex/o1");
        let o2 = g.intern_iri("http://ex/o2");
        // add: two subjects, two objects, three triples
        for (s, o) in [(s1, o1), (s1, o2), (s2, o1)] {
            assert!(g.insert_ids(s, p, o));
        }
        assert_eq!(g.predicate_cardinality(p), 3);
        assert_eq!(g.predicate_stats(p), recount(&g, p));
        // remove down to zero, checking the stats track every step
        assert!(g.remove_ids(s1, p, o2));
        assert_eq!(g.predicate_stats(p), recount(&g, p));
        assert_eq!(g.predicate_stats(p).distinct_objects, 1);
        assert!(g.remove_ids(s1, p, o1));
        assert_eq!(g.predicate_stats(p), recount(&g, p));
        assert_eq!(g.predicate_stats(p).distinct_subjects, 1);
        assert!(g.remove_ids(s2, p, o1));
        assert_eq!(g.predicate_cardinality(p), 0);
        assert_eq!(g.predicate_stats(p), PredicateStats::default());
        // re-add: counts must come back exact, not doubled or stale
        assert!(g.insert_ids(s1, p, o1));
        assert!(g.insert_ids(s2, p, o2));
        assert_eq!(g.predicate_cardinality(p), 2);
        assert_eq!(
            g.predicate_stats(p),
            PredicateStats {
                triples: 2,
                distinct_subjects: 2,
                distinct_objects: 2,
            }
        );
        assert_eq!(g.predicate_stats(p), recount(&g, p));
        // duplicate insert must not disturb the counts
        assert!(!g.insert_ids(s1, p, o1));
        assert_eq!(g.predicate_stats(p), recount(&g, p));
    }

    #[test]
    fn posting_lists_are_sorted() {
        let mut g = Graph::new();
        let p = g.intern_iri("http://ex/p");
        let s = g.intern_iri("http://ex/s");
        // intern objects first so ids are allocated, then insert in a
        // deliberately non-ascending order
        let objects: Vec<TermId> = (0..20)
            .map(|i| g.intern_iri(format!("http://ex/o{i}")))
            .collect();
        for &o in objects.iter().rev() {
            g.insert_ids(s, p, o);
        }
        for &o in objects.iter().skip(7) {
            g.insert_ids(o, p, s);
        }
        assert!(g.objects(s, p).windows(2).all(|w| w[0] < w[1]));
        assert!(g.subjects(p, s).windows(2).all(|w| w[0] < w[1]));
        let mid = objects[10];
        assert!(g.predicates_between(s, mid).windows(2).all(|w| w[0] < w[1]));
        assert!(g.contains_ids(s, p, mid));
        assert!(g.remove_ids(s, p, mid));
        assert!(!g.contains_ids(s, p, mid));
        assert!(g.objects(s, p).windows(2).all(|w| w[0] < w[1]));
    }

    /// Freezing and thawing are mutually inverse: a frozen copy answers
    /// every access path identically, and iter_sorted (the canonical
    /// stream) is bit-for-bit the same.
    #[test]
    fn freeze_thaw_round_trip_preserves_every_view() {
        let mut g = Graph::new();
        let terms: Vec<TermId> = (0..30)
            .map(|i| g.intern_iri(format!("http://ex/t{i}")))
            .collect();
        // dense little graph with shared subjects/objects across predicates
        for i in 0..30usize {
            for j in 0..5usize {
                g.insert_ids(terms[i], terms[(i + j) % 7], terms[(i * j + 3) % 30]);
            }
        }
        let frozen = frozen_copy(&g);
        assert_eq!(g.iter_sorted(), frozen.iter_sorted());
        for t in g.iter_sorted() {
            assert_eq!(g.objects(t.s, t.p), frozen.objects(t.s, t.p));
            assert_eq!(g.subjects(t.p, t.o), frozen.subjects(t.p, t.o));
            assert_eq!(
                g.predicates_between(t.s, t.o),
                frozen.predicates_between(t.s, t.o)
            );
            for (s, p, o) in [
                (Some(t.s), None, None),
                (None, Some(t.p), None),
                (None, None, Some(t.o)),
            ] {
                assert_eq!(g.count_matching(s, p, o), frozen.count_matching(s, p, o));
                let mut a = g.matching(s, p, o);
                let mut b = frozen.matching(s, p, o);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
        // thaw back by mutating, then compare the canonical stream again
        let mut thawed = frozen.clone();
        let extra = thawed.intern_iri("http://ex/extra");
        assert!(thawed.insert_ids(extra, terms[0], terms[1]));
        assert!(thawed.remove_ids(extra, terms[0], terms[1]));
        assert_eq!(g.iter_sorted(), thawed.iter_sorted());
    }

    #[test]
    fn insert_terms_convenience() {
        let mut g = Graph::new();
        assert!(g.insert(
            Term::iri("http://ex/s"),
            Term::iri("http://ex/p"),
            Term::from(Literal::integer(5)),
        ));
        assert_eq!(g.len(), 1);
        let o = g.iter()[0].o;
        assert_eq!(g.numeric_value(o), Some(5.0));
    }
}
