//! Expression evaluation shared by `FILTER` (row context) and `HAVING` /
//! aggregate projection (group context).
//!
//! SPARQL expression errors (type errors, unbound variables, division by
//! zero) are modelled as `None`; a filter keeps a solution only when its
//! expression evaluates to `Some(true)`.

use crate::ast::{AggFunc, ArithOp, CmpOp, Expr, Func};
use crate::value::Value;
use re2x_rdf::{Graph, Term};

/// Environment against which expressions are evaluated.
pub trait EvalContext {
    /// The row representation this context resolves variables from.
    type Row: ?Sized;

    /// The graph (for term resolution and numeric coercion).
    fn graph(&self) -> &Graph;

    /// Resolves a variable to a value, `None` if unbound.
    fn lookup(&self, name: &str, row: &Self::Row) -> Option<Value>;

    /// Computes an aggregate, `None` if aggregates are illegal here.
    fn aggregate(&self, func: AggFunc, expr: &Expr, row: &Self::Row) -> Option<Value>;
}

/// Evaluates `expr`; `None` represents the SPARQL error value.
pub fn eval_expr<C: EvalContext>(expr: &Expr, ctx: &C, row: &C::Row) -> Option<Value> {
    let graph = ctx.graph();
    match expr {
        Expr::Var(v) => ctx.lookup(v, row),
        Expr::Iri(iri) => Some(
            graph
                .iri_id(iri)
                .map_or_else(|| Value::Str(iri.clone()), Value::Term),
        ),
        Expr::Literal(l) => Some(
            graph
                .term_id(&Term::Literal(l.clone()))
                .map_or_else(|| literal_value(l), Value::Term),
        ),
        Expr::Number(n) => Some(Value::Number(*n)),
        Expr::Bool(b) => Some(Value::Bool(*b)),
        Expr::Not(e) => eval_expr(e, ctx, row)?.as_bool().map(|b| Value::Bool(!b)),
        Expr::And(a, b) => {
            let left = eval_expr(a, ctx, row).and_then(|v| v.as_bool());
            let right = eval_expr(b, ctx, row).and_then(|v| v.as_bool());
            match (left, right) {
                (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                (Some(true), Some(true)) => Some(Value::Bool(true)),
                _ => None,
            }
        }
        Expr::Or(a, b) => {
            let left = eval_expr(a, ctx, row).and_then(|v| v.as_bool());
            let right = eval_expr(b, ctx, row).and_then(|v| v.as_bool());
            match (left, right) {
                (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                (Some(false), Some(false)) => Some(Value::Bool(false)),
                _ => None,
            }
        }
        Expr::Cmp(a, op, b) => {
            let left = eval_expr(a, ctx, row)?;
            let right = eval_expr(b, ctx, row)?;
            let result = match op {
                CmpOp::Eq => left.equals(&right, graph),
                CmpOp::Ne => !left.equals(&right, graph),
                CmpOp::Lt => left.compare(&right, graph).is_lt(),
                CmpOp::Le => left.compare(&right, graph).is_le(),
                CmpOp::Gt => left.compare(&right, graph).is_gt(),
                CmpOp::Ge => left.compare(&right, graph).is_ge(),
            };
            Some(Value::Bool(result))
        }
        Expr::Arith(a, op, b) => {
            let left = eval_expr(a, ctx, row)?.as_number(graph)?;
            let right = eval_expr(b, ctx, row)?.as_number(graph)?;
            let value = match op {
                ArithOp::Add => left + right,
                ArithOp::Sub => left - right,
                ArithOp::Mul => left * right,
                ArithOp::Div => {
                    if right == 0.0 {
                        return None;
                    }
                    left / right
                }
            };
            Some(Value::Number(value))
        }
        Expr::In(e, list) => {
            let needle = eval_expr(e, ctx, row)?;
            for item in list {
                let candidate = eval_expr(item, ctx, row)?;
                if needle.equals(&candidate, graph) {
                    return Some(Value::Bool(true));
                }
            }
            Some(Value::Bool(false))
        }
        Expr::Call(func, args) => match func {
            Func::Bound => match &args[0] {
                Expr::Var(v) => Some(Value::Bool(ctx.lookup(v, row).is_some())),
                _ => None,
            },
            Func::Str => {
                let v = eval_expr(&args[0], ctx, row)?;
                Some(Value::Str(v.string_form(graph)))
            }
            Func::LCase => {
                let v = eval_expr(&args[0], ctx, row)?;
                Some(Value::Str(v.string_form(graph).to_lowercase()))
            }
            Func::Contains => {
                let hay = eval_expr(&args[0], ctx, row)?.string_form(graph);
                let needle = eval_expr(&args[1], ctx, row)?.string_form(graph);
                Some(Value::Bool(hay.contains(&needle)))
            }
            Func::Abs => {
                let n = eval_expr(&args[0], ctx, row)?.as_number(graph)?;
                Some(Value::Number(n.abs()))
            }
            Func::IsIri => {
                let v = eval_expr(&args[0], ctx, row)?;
                Some(Value::Bool(matches!(
                    v,
                    Value::Term(id) if graph.term(id).is_iri()
                )))
            }
            Func::IsLiteral => {
                let v = eval_expr(&args[0], ctx, row)?;
                let is_lit = match v {
                    Value::Term(id) => graph.term(id).is_literal(),
                    Value::Str(_) | Value::Number(_) => true,
                    Value::Bool(_) => true,
                };
                Some(Value::Bool(is_lit))
            }
            Func::IsNumeric => {
                let v = eval_expr(&args[0], ctx, row)?;
                let is_num = match v {
                    Value::Term(id) => graph.numeric_value(id).is_some(),
                    Value::Number(_) => true,
                    Value::Str(_) | Value::Bool(_) => false,
                };
                Some(Value::Bool(is_num))
            }
        },
        Expr::Agg(func, inner) => ctx.aggregate(*func, inner, row),
    }
}

/// A literal constant that is not interned in the graph, as a value.
fn literal_value(l: &re2x_rdf::Literal) -> Value {
    if let Some(n) = l.as_f64() {
        Value::Number(n)
    } else {
        Value::Str(l.lexical().to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::hash::FxHashMap;
    use re2x_rdf::Literal;

    /// A trivial context backed by a name→value map.
    struct MapContext {
        graph: Graph,
        bindings: FxHashMap<String, Value>,
    }

    impl EvalContext for MapContext {
        type Row = ();

        fn graph(&self) -> &Graph {
            &self.graph
        }

        fn lookup(&self, name: &str, _row: &()) -> Option<Value> {
            self.bindings.get(name).cloned()
        }

        fn aggregate(&self, _f: AggFunc, _e: &Expr, _row: &()) -> Option<Value> {
            None
        }
    }

    fn ctx() -> MapContext {
        let mut graph = Graph::new();
        let num = graph.intern_literal(Literal::integer(10));
        let txt = graph.intern_literal(Literal::simple("Germany"));
        let mut bindings = FxHashMap::default();
        bindings.insert("n".to_owned(), Value::Term(num));
        bindings.insert("label".to_owned(), Value::Term(txt));
        MapContext { graph, bindings }
    }

    fn eval(c: &MapContext, e: &Expr) -> Option<Value> {
        eval_expr(e, c, &())
    }

    #[test]
    fn comparisons_are_numeric_aware() {
        let c = ctx();
        let e = Expr::cmp(Expr::var("n"), CmpOp::Gt, Expr::Number(9.5));
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
        let e = Expr::cmp(Expr::var("n"), CmpOp::Lt, Expr::Number(2.0));
        assert_eq!(eval(&c, &e), Some(Value::Bool(false)));
    }

    #[test]
    fn unbound_variable_is_an_error_not_false() {
        let c = ctx();
        let e = Expr::cmp(Expr::var("missing"), CmpOp::Eq, Expr::Number(1.0));
        assert_eq!(eval(&c, &e), None);
        // but BOUND observes it
        let e = Expr::Call(Func::Bound, vec![Expr::var("missing")]);
        assert_eq!(eval(&c, &e), Some(Value::Bool(false)));
    }

    #[test]
    fn three_valued_logic() {
        let c = ctx();
        let err = Expr::var("missing");
        // false && error = false
        let e = Expr::And(Box::new(Expr::Bool(false)), Box::new(err.clone()));
        assert_eq!(eval(&c, &e), Some(Value::Bool(false)));
        // true && error = error
        let e = Expr::And(Box::new(Expr::Bool(true)), Box::new(err.clone()));
        assert_eq!(eval(&c, &e), None);
        // true || error = true
        let e = Expr::Or(Box::new(err.clone()), Box::new(Expr::Bool(true)));
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
        // false || error = error
        let e = Expr::Or(Box::new(err), Box::new(Expr::Bool(false)));
        assert_eq!(eval(&c, &e), None);
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let c = ctx();
        let e = Expr::Arith(
            Box::new(Expr::var("n")),
            ArithOp::Mul,
            Box::new(Expr::Number(2.0)),
        );
        assert_eq!(eval(&c, &e), Some(Value::Number(20.0)));
        let e = Expr::Arith(
            Box::new(Expr::var("n")),
            ArithOp::Div,
            Box::new(Expr::Number(0.0)),
        );
        assert_eq!(eval(&c, &e), None);
    }

    #[test]
    fn string_functions() {
        let c = ctx();
        let e = Expr::Call(
            Func::Contains,
            vec![
                Expr::Call(
                    Func::LCase,
                    vec![Expr::Call(Func::Str, vec![Expr::var("label")])],
                ),
                Expr::Literal(Literal::simple("germ")),
            ],
        );
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
        let e = Expr::Call(Func::Abs, vec![Expr::Number(-4.0)]);
        assert_eq!(eval(&c, &e), Some(Value::Number(4.0)));
    }

    #[test]
    fn in_list_matching() {
        let c = ctx();
        let e = Expr::In(
            Box::new(Expr::var("n")),
            vec![Expr::Number(9.0), Expr::Number(10.0)],
        );
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
        let e = Expr::In(Box::new(Expr::var("n")), vec![Expr::Number(9.0)]);
        assert_eq!(eval(&c, &e), Some(Value::Bool(false)));
    }

    #[test]
    fn uninterned_constants_fall_back_to_value_semantics() {
        let c = ctx();
        // "Germany" IS interned; compare against an uninterned literal with
        // the same lexical form — equality via string form.
        let e = Expr::cmp(
            Expr::var("label"),
            CmpOp::Eq,
            Expr::Literal(Literal::simple("Germany")),
        );
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
        // Uninterned numeric literal behaves numerically.
        let e = Expr::cmp(
            Expr::var("n"),
            CmpOp::Eq,
            Expr::Literal(Literal::integer(10)),
        );
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
    }

    #[test]
    fn term_kind_predicates() {
        let mut c = ctx();
        let iri = c.graph.intern_iri("http://ex/Germany");
        c.bindings.insert("iri".to_owned(), Value::Term(iri));
        let is = |f: Func, v: &str| {
            eval_expr(&Expr::Call(f, vec![Expr::var(v)]), &c, &())
                .and_then(|v| v.as_bool())
                .expect("defined")
        };
        assert!(is(Func::IsIri, "iri"));
        assert!(!is(Func::IsIri, "n"));
        assert!(is(Func::IsLiteral, "n"));
        assert!(is(Func::IsLiteral, "label"));
        assert!(!is(Func::IsLiteral, "iri"));
        assert!(is(Func::IsNumeric, "n"));
        assert!(!is(Func::IsNumeric, "label"));
        assert!(!is(Func::IsNumeric, "iri"));
    }

    #[test]
    fn not_negates_and_propagates_errors() {
        let c = ctx();
        let e = Expr::Not(Box::new(Expr::Bool(false)));
        assert_eq!(eval(&c, &e), Some(Value::Bool(true)));
        let e = Expr::Not(Box::new(Expr::var("missing")));
        assert_eq!(eval(&c, &e), None);
    }
}
