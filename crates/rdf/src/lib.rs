#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2x-rdf
//!
//! An in-memory, indexed RDF triple store used as the storage substrate of
//! the RE²xOLAP reproduction.
//!
//! The crate provides:
//!
//! * [`Term`] / [`Literal`] — the RDF term model (IRIs, blank nodes, typed
//!   and language-tagged literals).
//! * [`Interner`] / [`TermId`] — term interning so that the rest of the
//!   system works on dense `u32` identifiers instead of strings.
//! * [`Graph`] — a triple store with SPO/POS/OSP indexes supporting all
//!   eight triple-pattern access paths.
//! * [`TextIndex`] — an inverted full-text index over literal values,
//!   mirroring the full-text index the paper relies on in its triplestore
//!   (Virtuoso) for resolving example keywords to IRIs.
//! * N-Triples and a pragmatic Turtle subset parser/serializer ([`io`]).
//! * Well-known vocabulary constants ([`vocab`]): RDF, RDFS, XSD, and the
//!   W3C RDF Data Cube (QB) vocabulary used by statistical KGs.
//!
//! The store is deliberately single-node and in-memory: the paper's
//! algorithms interact with the data exclusively through SPARQL (see the
//! `re2x-sparql` crate), so any conformant store can be swapped in behind
//! that seam.
//!
//! ```
//! use re2x_rdf::{Graph, io::parse_turtle};
//!
//! let mut graph = Graph::new();
//! parse_turtle(r#"
//!     @prefix ex: <http://ex/> .
//!     ex:obs1 ex:dest ex:Germany ; ex:applicants 42 .
//!     ex:Germany <http://www.w3.org/2000/01/rdf-schema#label> "Germany" .
//! "#, &mut graph).unwrap();
//!
//! // indexed pattern access
//! let dest = graph.iri_id("http://ex/dest").unwrap();
//! assert_eq!(graph.matching(None, Some(dest), None).len(), 1);
//! // full-text keyword resolution
//! assert_eq!(graph.literals_matching_exact("germany").len(), 1);
//! ```

pub mod error;
pub mod graph;
pub mod hash;
pub mod interner;
pub mod io;
pub mod partition;
pub mod snapshot;
pub mod term;
pub mod text;
pub mod vocab;

pub use error::RdfError;
pub use graph::{Graph, PredicateStats, Triple};
pub use interner::{Interner, TermId, TERM_CAPACITY};
pub use partition::{
    partition, partition_layout, partition_observations, PartitionLayout, Partitioned,
    PredicateRole,
};
pub use snapshot::{
    graph_digest, load_shard_snapshot, peek_snapshot_key, shard_snapshot_key, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use term::{Literal, Term};
pub use text::TextIndex;
