//! REOLAP — reverse engineering SPARQL OLAP queries from example tuples
//! (Algorithm 1 and the `GetQuery` function, Section 5).
//!
//! Given an example tuple of keywords (e.g. `⟨"Germany", "2014"⟩`):
//!
//! 1. each component is resolved to candidate `(member, level)`
//!    interpretations ([`crate::matching`]),
//! 2. all combinations of interpretations are enumerated (completeness),
//! 3. each combination is validated against the triplestore — some
//!    observation must reach *all* the members simultaneously, which
//!    implements the tuple-containment requirement of Problem 1
//!    (correctness),
//! 4. `GetQuery` builds a `SELECT … WHERE … GROUP BY` query that groups at
//!    exactly the matched levels (minimality: the query's dimensions are
//!    the example's dimensions) and aggregates every measure with every
//!    configured aggregation function.

use crate::error::Re2xError;
use crate::matching::{matches, MatchMode, MemberMatch};
use crate::query_model::{
    level_var_name, measure_alias, ExampleBinding, GroupColumn, MeasureColumn, OlapQuery,
};
use re2x_cube::{patterns, LevelId, VirtualSchemaGraph};
use re2x_obs::Tracer;
use re2x_sparql::{
    with_async_endpoint, AggFunc, AsyncSparqlEndpoint, Expr, PatternElement, Query, SelectItem,
    SparqlEndpoint, TermPattern, Ticket, TriplePattern,
};
use std::time::{Duration, Instant};

/// Configuration of the synthesis phase.
#[derive(Debug, Clone)]
pub struct ReolapConfig {
    /// Keyword-matching mode.
    pub mode: MatchMode,
    /// Aggregation functions instantiated for every measure. The paper
    /// retrieves "all aggregation functions (max, min, avg, sum) over all
    /// available measures".
    pub aggregates: Vec<AggFunc>,
    /// Validate each interpretation with an `ASK` against the endpoint
    /// (switchable for the ablation study).
    pub validate: bool,
    /// Upper bound on interpretation combinations before giving up with
    /// [`Re2xError::TooManyInterpretations`].
    pub max_interpretations: usize,
    /// When non-zero, candidate validation `ASK`s are submitted as one
    /// batch through the poll-based async endpoint adapter and serviced
    /// by this many pool threads, overlapping their round-trips. The
    /// accepted candidate set (and, for [`reolap`], the exact queries
    /// issued) is identical to serial validation — only wall time
    /// changes. `0` (the default) validates serially.
    pub validation_workers: usize,
    /// Tracer receiving per-phase spans (`reolap`, `reolap.match` per
    /// keyword, `reolap.validate` per candidate). Disabled by default.
    pub tracer: Tracer,
}

impl Default for ReolapConfig {
    fn default() -> Self {
        ReolapConfig {
            mode: MatchMode::Exact,
            aggregates: AggFunc::NUMERIC.to_vec(),
            validate: true,
            max_interpretations: 100_000,
            validation_workers: 0,
            tracer: Tracer::disabled(),
        }
    }
}

/// Result of a synthesis run, with cost accounting for the experiments.
#[derive(Debug, Clone)]
pub struct SynthesisOutcome {
    /// The candidate queries, one per valid interpretation.
    pub queries: Vec<OlapQuery>,
    /// Number of interpretation combinations enumerated.
    pub interpretations_considered: usize,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
}

/// Algorithm 1 for a single example tuple.
pub fn reolap(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    example: &[&str],
    config: &ReolapConfig,
) -> Result<SynthesisOutcome, Re2xError> {
    // lint:allow(no-wallclock, match/validate phase timing feeds ExplorationMetrics)
    let start = Instant::now();
    let _root = config.tracer.span("reolap");
    // Lines 2–7: per-component interpretations.
    let mut per_component: Vec<Vec<MemberMatch>> = Vec::with_capacity(example.len());
    for keyword in example {
        let hits = {
            let _match = config
                .tracer
                .span_with("reolap.match", &[("keyword", *keyword)]);
            matches(endpoint, schema, keyword, config.mode)?
        };
        if hits.is_empty() {
            return Err(Re2xError::NoMatch {
                keyword: (*keyword).to_owned(),
            });
        }
        per_component.push(hits);
    }
    let combinations: usize = per_component.iter().map(Vec::len).product();
    if combinations > config.max_interpretations {
        return Err(Re2xError::TooManyInterpretations {
            combinations,
            bound: config.max_interpretations,
        });
    }

    // Lines 8–11: combine interpretations (deduplicating by member
    // multiset), then validate and build queries. Enumeration is pure CPU
    // — no endpoint traffic — so it runs to completion first; validation,
    // the only query-issuing step, then sees the full candidate list and
    // can be overlapped as one ASK batch (see [`validate_candidates`]).
    let mut candidates: Vec<Vec<ExampleBinding>> = Vec::new();
    let mut seen: Vec<Vec<(LevelId, String)>> = Vec::new();
    let mut indices = vec![0usize; per_component.len()];
    'enumerate: loop {
        let bindings: Vec<ExampleBinding> = indices
            .iter()
            .enumerate()
            .map(|(c, &i)| per_component[c][i].binding.clone())
            .collect();
        let mut key: Vec<(LevelId, String)> = bindings
            .iter()
            .map(|b| (b.level, b.member_iri.clone()))
            .collect();
        key.sort();
        key.dedup();
        if !seen.contains(&key) {
            seen.push(key);
            candidates.push(bindings);
        }
        // advance the mixed-radix counter
        let mut c = 0;
        loop {
            if c == indices.len() {
                break 'enumerate;
            }
            indices[c] += 1;
            if indices[c] < per_component[c].len() {
                break;
            }
            indices[c] = 0;
            c += 1;
        }
    }

    let verdicts = validate_candidates(endpoint, schema, &candidates, config)?;
    let queries: Vec<OlapQuery> = candidates
        .iter()
        .zip(&verdicts)
        .filter(|&(_, &valid)| valid)
        .map(|(bindings, _)| get_query(schema, bindings, &config.aggregates))
        .collect();
    Ok(SynthesisOutcome {
        queries,
        interpretations_considered: combinations,
        elapsed: start.elapsed(),
    })
}

/// Validates each candidate interpretation, returning one verdict per
/// candidate in order.
///
/// Serial by default: one `ASK` per candidate under its own
/// `reolap.validate` span. With `config.validation_workers > 0` every
/// `ASK` is submitted up front through the async endpoint adapter and the
/// verdicts are awaited together, overlapping the round-trips. The
/// submissions happen inside the same `reolap.validate` spans, and each
/// pool thread adopts its submitter's span context, so query provenance
/// reconciles to the exact same paths as the serial walk — and since
/// [`reolap`]'s serial loop never short-circuits between candidates, the
/// issued query multiset is identical too.
fn validate_candidates(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    candidates: &[Vec<ExampleBinding>],
    config: &ReolapConfig,
) -> Result<Vec<bool>, Re2xError> {
    if !config.validate {
        return Ok(vec![true; candidates.len()]);
    }
    if config.validation_workers == 0 || candidates.len() < 2 {
        return candidates
            .iter()
            .map(|bindings| {
                let _validate = config.tracer.span("reolap.validate");
                validate_interpretation(endpoint, schema, bindings)
            })
            .collect();
    }
    let verdicts = with_async_endpoint(endpoint, config.validation_workers, |pool| {
        let tickets: Vec<Ticket> = candidates
            .iter()
            .map(|bindings| {
                let _validate = config.tracer.span("reolap.validate");
                pool.submit_ask(validation_query(schema, bindings))
            })
            .collect();
        pool.join_all(tickets)
    });
    verdicts
        .into_iter()
        .map(|verdict| Ok(verdict.and_then(re2x_sparql::AsyncResponse::into_ask)?))
        .collect()
}

/// Algorithm 1 generalized to multiple example tuples (footnote 3 of the
/// paper): every tuple must be explained by the same per-position level,
/// and every tuple must be validated.
pub fn reolap_multi(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    examples: &[Vec<String>],
    config: &ReolapConfig,
) -> Result<SynthesisOutcome, Re2xError> {
    // lint:allow(no-wallclock, match/validate phase timing feeds ExplorationMetrics)
    let start = Instant::now();
    let _root = config.tracer.span("reolap");
    let Some(first) = examples.first() else {
        return Ok(SynthesisOutcome {
            queries: Vec::new(),
            interpretations_considered: 0,
            elapsed: start.elapsed(),
        });
    };
    if examples.iter().any(|t| t.len() != first.len()) {
        return Err(Re2xError::MixedArity);
    }
    let arity = first.len();

    // matches[tuple][position] — all interpretations of each component
    let mut all: Vec<Vec<Vec<MemberMatch>>> = Vec::with_capacity(examples.len());
    for tuple in examples {
        let mut row = Vec::with_capacity(arity);
        for keyword in tuple {
            let hits = {
                let _match = config
                    .tracer
                    .span_with("reolap.match", &[("keyword", keyword.as_str())]);
                matches(endpoint, schema, keyword, config.mode)?
            };
            if hits.is_empty() {
                return Err(Re2xError::NoMatch {
                    keyword: keyword.clone(),
                });
            }
            row.push(hits);
        }
        all.push(row);
    }

    // per-position levels consistent across every tuple
    let mut position_levels: Vec<Vec<LevelId>> = Vec::with_capacity(arity);
    for position in 0..arity {
        let mut levels: Vec<LevelId> = all[0][position].iter().map(|m| m.binding.level).collect();
        levels.sort();
        levels.dedup();
        for row in &all[1..] {
            levels.retain(|l| row[position].iter().any(|m| m.binding.level == *l));
        }
        position_levels.push(levels);
    }
    let combinations: usize = position_levels.iter().map(Vec::len).product();
    if combinations == 0 {
        return Ok(SynthesisOutcome {
            queries: Vec::new(),
            interpretations_considered: 0,
            elapsed: start.elapsed(),
        });
    }
    if combinations > config.max_interpretations {
        return Err(Re2xError::TooManyInterpretations {
            combinations,
            bound: config.max_interpretations,
        });
    }

    // Enumerate every combo's per-tuple bindings first (pure CPU); each
    // tuple must validate independently against the endpoint.
    let mut combos: Vec<Vec<Vec<ExampleBinding>>> = Vec::with_capacity(combinations);
    let mut indices = vec![0usize; arity];
    'combos: loop {
        let levels: Vec<LevelId> = indices
            .iter()
            .enumerate()
            .map(|(p, &i)| position_levels[p][i])
            .collect();
        // each tuple contributes one binding per position at the chosen level
        let example_tuples: Vec<Vec<ExampleBinding>> = all
            .iter()
            .map(|row| {
                (0..arity)
                    .map(|p| {
                        row[p]
                            .iter()
                            .find(|m| m.binding.level == levels[p])
                            .expect("level intersected across tuples")
                            .binding
                            .clone()
                    })
                    .collect()
            })
            .collect();
        combos.push(example_tuples);
        let mut c = 0;
        loop {
            if c == arity {
                break 'combos;
            }
            indices[c] += 1;
            if indices[c] < position_levels[c].len() {
                break;
            }
            indices[c] = 0;
            c += 1;
        }
    }

    let mut queries = Vec::new();
    if config.validate && config.validation_workers > 0 {
        // One flat ASK batch over every (combo, tuple) pair, overlapped on
        // the async adapter. A combo is valid iff all its tuples are. The
        // accepted combo set is identical to the serial walk; the batch
        // may issue *more* ASKs than serial, which short-circuits a combo
        // on its first invalid tuple.
        let verdicts = with_async_endpoint(endpoint, config.validation_workers, |pool| {
            let tickets: Vec<Ticket> = combos
                .iter()
                .flatten()
                .map(|tuple_bindings| {
                    let _validate = config.tracer.span("reolap.validate");
                    pool.submit_ask(validation_query(schema, tuple_bindings))
                })
                .collect();
            pool.join_all(tickets)
        });
        let mut verdicts = verdicts.into_iter();
        for example_tuples in &combos {
            let mut valid = true;
            for _ in example_tuples {
                let verdict = verdicts
                    .next()
                    .expect("one verdict per submitted ASK")
                    .and_then(re2x_sparql::AsyncResponse::into_ask)?;
                valid &= verdict;
            }
            if valid {
                queries.push(get_query_tuples(schema, example_tuples, &config.aggregates));
            }
        }
    } else {
        for example_tuples in &combos {
            let mut valid = true;
            if config.validate {
                for tuple_bindings in example_tuples {
                    let _validate = config.tracer.span("reolap.validate");
                    if !validate_interpretation(endpoint, schema, tuple_bindings)? {
                        valid = false;
                        break;
                    }
                }
            }
            if valid {
                queries.push(get_query_tuples(schema, example_tuples, &config.aggregates));
            }
        }
    }
    Ok(SynthesisOutcome {
        queries,
        interpretations_considered: combinations,
        elapsed: start.elapsed(),
    })
}

/// The containment/validity `ASK` for one interpretation: does some
/// observation reach all members simultaneously? (Section 5.3.)
pub fn validation_query(schema: &VirtualSchemaGraph, bindings: &[ExampleBinding]) -> Query {
    let mut wher = vec![patterns::observation_type("o", &schema.observation_class)];
    for binding in bindings {
        wher.push(patterns::path_to_concrete_member(
            "o",
            &schema.level(binding.level).path,
            &binding.member_iri,
        ));
    }
    Query::ask(wher)
}

/// Issues [`validation_query`] for the interpretation against the endpoint.
pub fn validate_interpretation(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    bindings: &[ExampleBinding],
) -> Result<bool, Re2xError> {
    Ok(endpoint.ask(&validation_query(schema, bindings))?)
}

/// The `GetQuery` function: builds the annotated OLAP query for an
/// interpretation.
///
/// Dimensions not mentioned by the example do not appear (minimality);
/// grouping happens at exactly the matched levels; every measure is
/// aggregated with every function in `aggregates`.
pub fn get_query(
    schema: &VirtualSchemaGraph,
    bindings: &[ExampleBinding],
    aggregates: &[AggFunc],
) -> OlapQuery {
    get_query_tuples(schema, &[bindings.to_vec()], aggregates)
}

/// [`get_query`] for multiple example tuples: one query whose grouping
/// levels cover every tuple's bindings, with per-tuple example metadata.
pub fn get_query_tuples(
    schema: &VirtualSchemaGraph,
    tuples: &[Vec<ExampleBinding>],
    aggregates: &[AggFunc],
) -> OlapQuery {
    // distinct levels in first-mention order
    let mut levels: Vec<LevelId> = Vec::new();
    for b in tuples.iter().flatten() {
        if !levels.contains(&b.level) {
            levels.push(b.level);
        }
    }

    let mut wher = vec![patterns::observation_type("o", &schema.observation_class)];
    let mut group_columns = Vec::with_capacity(levels.len());
    for &level in &levels {
        let var = level_var_name(schema, level);
        wher.push(patterns::path_to_member(
            "o",
            &schema.level(level).path,
            &var,
        ));
        group_columns.push(GroupColumn { var, level });
    }

    let mut select: Vec<SelectItem> = group_columns
        .iter()
        .map(|c| SelectItem::Var(c.var.clone()))
        .collect();
    let mut measure_columns = Vec::new();
    for (mi, measure) in schema.measures().iter().enumerate() {
        let value_var = format!("m{mi}");
        wher.push(PatternElement::Triple(TriplePattern::new(
            TermPattern::Var("o".to_owned()),
            measure.predicate.clone(),
            TermPattern::Var(value_var.clone()),
        )));
        for &agg in aggregates {
            let alias = measure_alias(schema, measure.id, agg);
            select.push(SelectItem::Agg {
                func: agg,
                expr: Expr::var(value_var.clone()),
                alias: alias.clone(),
            });
            measure_columns.push(MeasureColumn {
                alias,
                measure: measure.id,
                agg,
            });
        }
    }

    let mut query = Query::select_all(wher);
    query.select = select;
    query.group_by = group_columns.iter().map(|c| c.var.clone()).collect();

    let flattened: Vec<ExampleBinding> = tuples.iter().flatten().cloned().collect();
    let description = describe(schema, &group_columns, &measure_columns, &flattened);
    OlapQuery {
        query,
        group_columns,
        measure_columns,
        example: tuples.to_vec(),
        description,
    }
}

/// Natural-language description of a query, templated from the schema
/// annotations (Section 5.1, "Presenting Query Interpretations").
pub fn describe(
    schema: &VirtualSchemaGraph,
    group_columns: &[GroupColumn],
    measure_columns: &[MeasureColumn],
    bindings: &[ExampleBinding],
) -> String {
    let aggs: Vec<String> = measure_columns
        .iter()
        .map(|m| format!("{}({})", m.agg.keyword(), schema.measure(m.measure).label))
        .collect();
    let groups: Vec<String> = group_columns
        .iter()
        .map(|c| format!("\"{}\"", OlapQuery::level_display(schema, c.level)))
        .collect();
    let mut matched: Vec<String> = bindings.iter().map(|b| b.label.clone()).collect();
    matched.dedup();
    let mut text = format!(
        "Return {} grouped by {}",
        join_natural(&aggs),
        join_natural(&groups)
    );
    if !matched.is_empty() {
        text.push_str(&format!(" (matching {})", matched.join(", ")));
    }
    text
}

fn join_natural(items: &[String]) -> String {
    match items.len() {
        0 => String::new(),
        1 => items[0].clone(),
        _ => format!(
            "{} and {}",
            items[..items.len() - 1].join(", "),
            items[items.len() - 1]
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::{LocalEndpoint, SparqlEndpoint};

    /// The running-example KG: destinations, origins (→ continents), years.
    fn fixture() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Germany rdfs:label "Germany" .
            ex:France rdfs:label "France" .
            ex:Syria rdfs:label "Syria" ; ex:inContinent ex:Asia .
            ex:China rdfs:label "China" ; ex:inContinent ex:Asia .
            ex:Asia rdfs:label "Asia" .
            ex:y2013 rdfs:label "2013" .
            ex:y2014 rdfs:label "2014" .

            ex:origin rdfs:label "Country of Origin" .
            ex:dest rdfs:label "Country of Destination" .
            ex:year rdfs:label "Ref Period Year" .
            ex:applicants rdfs:label "Num Applicants" .

            ex:o1 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 300 .
            ex:o2 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 600 .
            ex:o3 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:China ; ex:year ex:y2014 ; ex:applicants 100 .
            ex:o4 a ex:Obs ; ex:dest ex:France ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 300 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        let ep = LocalEndpoint::new(g);
        let report = bootstrap(&ep, &BootstrapConfig::new("http://ex/Obs")).expect("bootstrap");
        (ep, report.schema)
    }

    #[test]
    fn germany_2014_synthesizes_one_query_per_valid_interpretation() {
        let (ep, schema) = fixture();
        let config = ReolapConfig::default();
        let outcome = reolap(&ep, &schema, &["Germany", "2014"], &config).expect("synthesis");
        // "Germany" only appears as destination in this KG; "2014" as year.
        assert_eq!(outcome.queries.len(), 1);
        let q = &outcome.queries[0];
        assert_eq!(q.group_columns.len(), 2);
        assert_eq!(q.measure_columns.len(), 4, "max/min/avg/sum over 1 measure");
        assert!(q.description.contains("SUM(Num Applicants)"));
        assert!(q.description.contains("Country of Destination"));
        // executable and contains Germany rows
        let solutions = ep.select(&q.query).expect("runs");
        assert_eq!(
            solutions.len(),
            3,
            "(Germany,2014) (France,2014) (Germany,2013)"
        );
        let matching = q.matching_rows(&solutions, ep.graph());
        assert_eq!(matching.len(), 1, "exactly the (Germany, 2014) row");
        let row = matching[0];
        let total = solutions
            .value(row, "sum_applicants")
            .and_then(|v| v.as_number(ep.graph()))
            .expect("sum");
        assert_eq!(
            total, 700.0,
            "600 (Syria) + 100 (China) into Germany in 2014"
        );
    }

    #[test]
    fn ambiguous_example_produces_multiple_interpretations() {
        let (ep, schema) = fixture();
        // "Asia" matches only origin/continent; "Syria" matches origin
        // country — combined they stay within one dimension.
        let outcome = reolap(&ep, &schema, &["Asia"], &ReolapConfig::default()).expect("ok");
        assert_eq!(outcome.queries.len(), 1);
        let q = &outcome.queries[0];
        assert_eq!(
            schema.level(q.group_columns[0].level).path,
            vec![
                "http://ex/origin".to_owned(),
                "http://ex/inContinent".to_owned()
            ]
        );
    }

    #[test]
    fn validation_rejects_impossible_combinations() {
        let (ep, schema) = fixture();
        // Germany (dest) with France (dest): no observation has both.
        let outcome = reolap(
            &ep,
            &schema,
            &["Germany", "France"],
            &ReolapConfig::default(),
        )
        .expect("ok");
        assert!(outcome.queries.is_empty());
        assert_eq!(outcome.interpretations_considered, 1);
        // without validation, the (invalid) interpretation surfaces
        let config = ReolapConfig {
            validate: false,
            ..Default::default()
        };
        let outcome = reolap(&ep, &schema, &["Germany", "France"], &config).expect("ok");
        assert_eq!(outcome.queries.len(), 1);
    }

    #[test]
    fn unknown_keyword_is_reported() {
        let (ep, schema) = fixture();
        let err = reolap(&ep, &schema, &["Atlantis"], &ReolapConfig::default()).unwrap_err();
        assert!(matches!(err, Re2xError::NoMatch { .. }));
    }

    #[test]
    fn interpretation_bound_enforced() {
        let (ep, schema) = fixture();
        let config = ReolapConfig {
            max_interpretations: 0,
            ..Default::default()
        };
        let err = reolap(&ep, &schema, &["Germany"], &config).unwrap_err();
        assert!(matches!(err, Re2xError::TooManyInterpretations { .. }));
    }

    #[test]
    fn configured_aggregates_control_projection() {
        let (ep, schema) = fixture();
        let config = ReolapConfig {
            aggregates: vec![AggFunc::Sum],
            ..Default::default()
        };
        let outcome = reolap(&ep, &schema, &["Germany"], &config).expect("ok");
        assert_eq!(outcome.queries[0].measure_columns.len(), 1);
        assert_eq!(
            outcome.queries[0].measure_columns[0].alias,
            "sum_applicants"
        );
    }

    #[test]
    fn multi_tuple_examples_constrain_levels() {
        let (ep, schema) = fixture();
        // Two tuples: ⟨Germany⟩ and ⟨France⟩, both destinations → one query
        // grouping by destination, containing both example rows.
        let tuples = vec![vec!["Germany".to_owned()], vec!["France".to_owned()]];
        let outcome = reolap_multi(&ep, &schema, &tuples, &ReolapConfig::default()).expect("ok");
        assert_eq!(outcome.queries.len(), 1);
        let q = &outcome.queries[0];
        assert_eq!(q.example.len(), 2);
        let solutions = ep.select(&q.query).expect("runs");
        assert_eq!(q.matching_rows(&solutions, ep.graph()).len(), 2);
    }

    #[test]
    fn multi_tuple_mixed_arity_rejected() {
        let (ep, schema) = fixture();
        let tuples = vec![
            vec!["Germany".to_owned()],
            vec!["France".to_owned(), "2014".to_owned()],
        ];
        let err = reolap_multi(&ep, &schema, &tuples, &ReolapConfig::default()).unwrap_err();
        assert_eq!(err, Re2xError::MixedArity);
    }

    #[test]
    fn empty_example_list_yields_no_queries() {
        let (ep, schema) = fixture();
        let outcome = reolap_multi(&ep, &schema, &[], &ReolapConfig::default()).expect("ok");
        assert!(outcome.queries.is_empty());
    }

    #[test]
    fn join_natural_formats() {
        assert_eq!(join_natural(&[]), "");
        assert_eq!(join_natural(&["a".into()]), "a");
        assert_eq!(join_natural(&["a".into(), "b".into()]), "a and b");
        assert_eq!(
            join_natural(&["a".into(), "b".into(), "c".into()]),
            "a, b and c"
        );
    }
}
