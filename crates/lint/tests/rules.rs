//! Fixture tests: every rule gets a FIRE fixture (the violation is
//! reported) and a CLEAN fixture (no finding), driven through the same
//! `lint_files` entry point the binary uses.

use re2x_lint::engine::{lint_files, LintResult};
use re2x_lint::rules::lock_order::find_cycles;
use re2x_lint::SourceFile;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints one fixture under a chosen crate name and in-workspace path.
fn lint_fixture(name: &str, crate_name: &str, path: &str) -> LintResult {
    lint_files(&[SourceFile::new(
        path.to_owned(),
        crate_name.to_owned(),
        fixture(name),
    )])
}

fn rules_fired(result: &LintResult) -> Vec<&'static str> {
    result.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn panic_freedom_fires_on_unwrap_expect_and_panic() {
    let result = lint_fixture("panic_fire.rs", "fx", "crates/fx/src/risky.rs");
    assert_eq!(
        rules_fired(&result),
        vec!["panic-freedom", "panic-freedom", "panic-freedom"],
        "unwrap, expect, and panic! each fire exactly once: {:?}",
        result.findings
    );
    let lines: Vec<u32> = result.findings.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![4, 5, 7], "findings carry 1-based source lines");
    assert!(
        result.findings[0].snippet.contains("input.unwrap()"),
        "snippet shows the offending line"
    );
}

#[test]
fn panic_freedom_clean_and_allow_suppression() {
    let result = lint_fixture("panic_clean.rs", "fx", "crates/fx/src/careful.rs");
    assert!(result.findings.is_empty(), "clean: {:?}", result.findings);
    assert_eq!(
        result.suppressed, 1,
        "the lint:allow'd unwrap is counted as suppressed"
    );
}

#[test]
fn reasonless_allow_is_inert() {
    // The escape hatch demands a reason: `lint:allow(panic-freedom)`
    // without one does not suppress.
    let source = "pub fn f(x: Option<u32>) -> u32 {\n\
                  \x20   // lint:allow(panic-freedom)\n\
                  \x20   x.unwrap()\n\
                  }\n";
    let result = lint_files(&[SourceFile::new(
        "crates/fx/src/f.rs".to_owned(),
        "fx".to_owned(),
        source.to_owned(),
    )]);
    assert_eq!(rules_fired(&result), vec!["panic-freedom"]);
    assert_eq!(result.suppressed, 0);
}

#[test]
fn wallclock_fires_and_clean_passes() {
    let fire = lint_fixture("wallclock_fire.rs", "fx", "crates/fx/src/stamp.rs");
    assert_eq!(
        rules_fired(&fire),
        vec!["no-wallclock", "no-wallclock"],
        "{:?}",
        fire.findings
    );
    let clean = lint_fixture("wallclock_clean.rs", "fx", "crates/fx/src/budget.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}

#[test]
fn debug_output_fires_and_clean_passes() {
    let fire = lint_fixture("debug_fire.rs", "fx", "crates/fx/src/noisy.rs");
    assert_eq!(
        rules_fired(&fire),
        vec!["no-debug-output", "no-debug-output", "no-debug-output"],
        "println!, eprintln!, and dbg! each fire: {:?}",
        fire.findings
    );
    let clean = lint_fixture("debug_clean.rs", "fx", "crates/fx/src/render.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}

#[test]
fn seam_rule_fires_only_in_algorithm_crates() {
    // linted as crate `core`: all three bypasses fire
    let fire = lint_fixture("seam_fire.rs", "core", "crates/core/src/bad.rs");
    assert_eq!(
        rules_fired(&fire),
        vec!["endpoint-seam", "endpoint-seam", "endpoint-seam"],
        "{:?}",
        fire.findings
    );
    // the identical source in a non-algorithm crate is out of scope
    let elsewhere = lint_fixture("seam_fire.rs", "sparql", "crates/sparql/src/bad.rs");
    assert!(elsewhere.findings.is_empty(), "{:?}", elsewhere.findings);
    // endpoint-mediated access is clean even in `core`
    let clean = lint_fixture("seam_clean.rs", "core", "crates/core/src/good.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}

#[test]
fn forbid_unsafe_checks_crate_roots_only() {
    let fire = lint_fixture("unsafe_fire.rs", "fx", "crates/fx/src/lib.rs");
    assert_eq!(
        rules_fired(&fire),
        vec!["forbid-unsafe"],
        "{:?}",
        fire.findings
    );
    let clean = lint_fixture("unsafe_clean.rs", "fx", "crates/fx/src/lib.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
    // the same attribute-less source is fine as a non-root module
    let module = lint_fixture("unsafe_fire.rs", "fx", "crates/fx/src/util.rs");
    assert!(module.findings.is_empty(), "{:?}", module.findings);
}

#[test]
fn lock_order_detects_the_intentional_cycle() {
    let fire = lint_fixture("lock_cycle_fire.rs", "fx", "crates/fx/src/pair.rs");
    assert_eq!(fire.registrations.len(), 2);
    assert_eq!(fire.edges.len(), 2, "both nesting orders observed");
    let cycle_findings: Vec<_> = fire
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    assert_eq!(cycle_findings.len(), 1, "{:?}", fire.findings);
    assert!(
        cycle_findings[0].message.contains("deadlock"),
        "{}",
        cycle_findings[0].message
    );
    assert!(
        cycle_findings[0].snippet.contains("fx.alpha")
            && cycle_findings[0].snippet.contains("fx.beta"),
        "the cycle names both locks: {}",
        cycle_findings[0].snippet
    );
}

#[test]
fn lock_order_clean_graph_has_edges_but_no_cycle() {
    let clean = lint_fixture("lock_clean.rs", "fx", "crates/fx/src/nested.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
    assert_eq!(clean.registrations.len(), 2);
    // only the genuinely nested acquisition creates an edge; the
    // scoped/sequential pair does not
    assert_eq!(clean.edges.len(), 1, "{:?}", clean.edges);
    assert_eq!(clean.edges[0].from, "fx.outer");
    assert_eq!(clean.edges[0].to, "fx.inner");
    assert!(find_cycles(&clean.edges).is_empty());
}

#[test]
fn lock_order_flags_unregistered_lock_fields() {
    let source = "use std::sync::Mutex;\n\
                  pub struct S {\n\
                  \x20   anonymous: Mutex<u32>,\n\
                  }\n";
    let result = lint_files(&[SourceFile::new(
        "crates/fx/src/s.rs".to_owned(),
        "fx".to_owned(),
        source.to_owned(),
    )]);
    assert_eq!(
        rules_fired(&result),
        vec!["lock-order"],
        "{:?}",
        result.findings
    );
    assert!(result.findings[0].message.contains("lock-order"));
}

#[test]
fn calls_under_lock_fires_on_endpoint_publish_and_io() {
    let fire = lint_fixture("calls_under_lock_fire.rs", "fx", "crates/fx/src/busy.rs");
    assert_eq!(
        rules_fired(&fire),
        vec!["no-calls-under-lock"; 4],
        "endpoint select, bus publish, write_all, and std::fs each fire: {:?}",
        fire.findings
    );
    assert!(
        fire.findings[0].message.contains("select")
            && fire.findings[0].message.contains("fx.stats"),
        "the finding names both the call and the held lock: {}",
        fire.findings[0].message
    );
    assert!(
        fire.findings[3].message.contains("std::fs"),
        "{}",
        fire.findings[3].message
    );
    let clean = lint_fixture("calls_under_lock_clean.rs", "fx", "crates/fx/src/calm.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}

#[test]
fn guard_across_wait_fires_without_a_declared_edge() {
    let fire = lint_fixture("guard_across_wait_fire.rs", "fx", "crates/fx/src/pairy.rs");
    assert_eq!(
        rules_fired(&fire),
        vec!["guard-across-wait"; 3],
        "two undeclared nestings plus the wait under a held guard: {:?}",
        fire.findings
    );
    assert!(
        fire.findings[0]
            .message
            .contains("declare `// lock-order: fx.left -> fx.right`"),
        "the nesting finding suggests the declaration syntax: {}",
        fire.findings[0].message
    );
    assert!(
        fire.findings[2].message.contains("condvar wait")
            && fire.findings[2].message.contains("fx.left"),
        "the wait finding names the guard held across the park: {}",
        fire.findings[2].message
    );
}

#[test]
fn guard_across_wait_clean_when_nesting_is_declared() {
    let clean = lint_fixture("guard_across_wait_clean.rs", "fx", "crates/fx/src/pairy.rs");
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
    assert_eq!(
        clean.declared.len(),
        1,
        "the fixture declares exactly one edge: {:?}",
        clean.declared
    );
    assert_eq!(clean.declared[0].from, "fx.left");
    assert_eq!(clean.declared[0].to, "fx.right");
}

#[test]
fn discarded_result_fires_on_both_discard_shapes() {
    let fire = lint_fixture(
        "discarded_result_fire.rs",
        "fx",
        "crates/fx/src/careless.rs",
    );
    assert_eq!(
        rules_fired(&fire),
        vec!["discarded-result", "discarded-result"],
        "`let _ =` and the bare statement each fire: {:?}",
        fire.findings
    );
    assert!(fire.findings[0].message.contains("persist"));
    let clean = lint_fixture(
        "discarded_result_clean.rs",
        "fx",
        "crates/fx/src/careful.rs",
    );
    assert!(clean.findings.is_empty(), "{:?}", clean.findings);
}

#[test]
fn witness_literal_must_match_the_registered_name() {
    let source = "use std::sync::Mutex;\n\
                  pub struct S {\n\
                  \x20   // lock-order: fx.real\n\
                  \x20   field: Mutex<u32>,\n\
                  }\n\
                  impl S {\n\
                  \x20   pub fn get(&self) -> u32 {\n\
                  \x20       *lock_or_recover(\"fx.typo\", &self.field)\n\
                  \x20   }\n\
                  }\n";
    let result = lint_files(&[SourceFile::new(
        "crates/fx/src/s.rs".to_owned(),
        "fx".to_owned(),
        source.to_owned(),
    )]);
    assert_eq!(
        rules_fired(&result),
        vec!["lock-order"],
        "{:?}",
        result.findings
    );
    assert!(
        result.findings[0].message.contains("fx.typo")
            && result.findings[0].message.contains("fx.real"),
        "the mismatch names both the literal and the registered name: {}",
        result.findings[0].message
    );
}

#[test]
fn declared_edge_endpoints_must_be_registered() {
    let source = "use std::sync::Mutex;\n\
                  // lock-order: fx.ghost -> fx.real\n\
                  pub struct S {\n\
                  \x20   // lock-order: fx.real\n\
                  \x20   field: Mutex<u32>,\n\
                  }\n";
    let result = lint_files(&[SourceFile::new(
        "crates/fx/src/s.rs".to_owned(),
        "fx".to_owned(),
        source.to_owned(),
    )]);
    assert_eq!(
        rules_fired(&result),
        vec!["lock-order"],
        "{:?}",
        result.findings
    );
    assert!(
        result.findings[0].message.contains("fx.ghost")
            && result.findings[0].message.contains("not a registered lock"),
        "{}",
        result.findings[0].message
    );
}

#[test]
fn allow_file_suppresses_the_whole_file() {
    let mut text = fixture("debug_fire.rs");
    text.insert_str(
        0,
        "// lint:allow-file(no-debug-output, fixture exercises whole-file suppression)\n",
    );
    let result = lint_files(&[SourceFile::new(
        "crates/fx/src/noisy.rs".to_owned(),
        "fx".to_owned(),
        text,
    )]);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
    assert_eq!(result.suppressed, 3);
}
