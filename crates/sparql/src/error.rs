//! Error type for parsing and evaluating queries.

use std::fmt;

/// Errors raised by the SPARQL subset engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Parse error with a line number.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The query uses a feature outside the supported subset, or uses a
    /// supported feature in an unsupported position.
    Unsupported(String),
    /// A semantically invalid query (e.g. aggregate in a WHERE filter,
    /// projected variable neither grouped nor aggregated).
    Invalid(String),
}

impl SparqlError {
    /// Convenience constructor for syntax errors.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        SparqlError::Syntax {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for invalid-query errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        SparqlError::Invalid(message.into())
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            SparqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SparqlError::Invalid(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            SparqlError::syntax(4, "oops").to_string(),
            "syntax error at line 4: oops"
        );
        assert_eq!(
            SparqlError::Unsupported("OPTIONAL".into()).to_string(),
            "unsupported: OPTIONAL"
        );
        assert_eq!(
            SparqlError::invalid("bad").to_string(),
            "invalid query: bad"
        );
    }
}
