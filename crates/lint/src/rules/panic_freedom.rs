//! `panic-freedom`: no `.unwrap()` / `.expect(` / `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` in non-test library code.
//!
//! RE²xOLAP's interactive loop turns a library panic into a user-facing
//! session kill; fallible paths must surface `Result`s instead. Test
//! modules (`#[cfg(test)]`), fixture crates, and the bench harness are
//! exempt — asserting is their job.

use super::{finding_at, significant};
use crate::findings::Finding;
use crate::source::SourceFile;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(text);
        // `.unwrap()` / `.expect(…)` method calls
        if PANIC_METHODS.contains(&word)
            && i > 0
            && toks[i - 1].text(text) == "."
            && toks.get(i + 1).map(|n| n.text(text)) == Some("(")
        {
            findings.push(finding_at(
                file,
                "panic-freedom",
                t,
                format!("`.{word}(…)` can panic; return a Result or handle the None/Err arm"),
            ));
        }
        // `panic!(…)` and friends
        if PANIC_MACROS.contains(&word) && toks.get(i + 1).map(|n| n.text(text)) == Some("!") {
            findings.push(finding_at(
                file,
                "panic-freedom",
                t,
                format!("`{word}!` aborts the session; propagate an error instead"),
            ));
        }
    }
    findings
}
