//! Shared machinery for the synthetic statistical-KG generators.
//!
//! Each generator produces a [`Dataset`]: an RDF graph whose schema shape
//! (dimension count, hierarchy levels, member counts, measure) reproduces
//! one of the paper's Table 3 datasets exactly, with the observation count
//! as the free scale parameter. Observations cover every base-level member
//! round-robin before sampling randomly, so the member counts discovered
//! by the bootstrap crawler equal the specification whenever
//! `observations ≥ max base-pool size`.

use crate::prng::StdRng;
use re2x_rdf::{vocab, Graph, Literal, Term, TermId};

/// A generated dataset plus the metadata the experiment workloads need.
#[derive(Debug)]
pub struct Dataset {
    /// Short name ("eurostat", "production", "dbpedia").
    pub name: String,
    /// The generated graph.
    pub graph: Graph,
    /// IRI of the observation class.
    pub observation_class: String,
    /// Number of generated observations.
    pub observations: usize,
    /// Dimension predicates (observation → base member).
    pub dimension_predicates: Vec<String>,
    /// Roll-up predicates (member → coarser member), across all dimensions.
    pub rollup_predicates: Vec<String>,
    /// The member-label predicate.
    pub label_predicate: String,
    /// Expected schema statistics (the Table 3 row this generator mimics).
    pub expected: ExpectedShape,
}

/// The Table 3 columns a generator commits to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpectedShape {
    /// |D| — dimensions.
    pub dimensions: usize,
    /// |M| — measures.
    pub measures: usize,
    /// |L̄| — hierarchy levels.
    pub levels: usize,
    /// |N_D| — total dimension members over all levels.
    pub members: usize,
}

/// A pool of generated members of one hierarchy level.
#[derive(Debug, Clone)]
pub struct MemberPool {
    /// Interned member IRIs.
    pub ids: Vec<TermId>,
    /// Labels, parallel to `ids`.
    pub labels: Vec<String>,
}

impl MemberPool {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Creates `count` members under `namespace` with IRIs
/// `<ns>member/<local>/<i>`, labelled by `labeler(i)`.
pub fn make_members(
    graph: &mut Graph,
    namespace: &str,
    local: &str,
    count: usize,
    labeler: impl Fn(usize) -> String,
) -> MemberPool {
    let label_pred = graph.intern_iri(vocab::rdfs::LABEL);
    let mut ids = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let id = graph.intern_iri(format!("{namespace}member/{local}/{i}"));
        let label = labeler(i);
        let lit = graph.intern_literal(Literal::simple(label.clone()));
        graph.insert_ids(id, label_pred, lit);
        ids.push(id);
        labels.push(label);
    }
    MemberPool { ids, labels }
}

/// Links every member of `fine` to a member of `coarse` with `predicate`,
/// round-robin (`i % coarse.len()` — surjective whenever
/// `fine.len() ≥ coarse.len()`). With `extra_parents`, roughly every third
/// member gets an additional random parent, producing the M-to-N hierarchy
/// steps that characterize the DBpedia dataset.
pub fn link_rollup(
    graph: &mut Graph,
    fine: &MemberPool,
    coarse: &MemberPool,
    predicate: &str,
    extra_parents: Option<&mut StdRng>,
) {
    let pred = graph.intern_iri(predicate);
    let mut rng = extra_parents;
    for (i, &member) in fine.ids.iter().enumerate() {
        graph.insert_ids(member, pred, coarse.ids[i % coarse.len()]);
        if let Some(rng) = rng.as_deref_mut() {
            if i % 3 == 0 {
                let other = rng.gen_range(0..coarse.len());
                graph.insert_ids(member, pred, coarse.ids[other]);
            }
        }
    }
}

/// Declares a predicate IRI with a human-readable label, returning the IRI
/// string.
pub fn declare_predicate(graph: &mut Graph, namespace: &str, local: &str, label: &str) -> String {
    let iri = format!("{namespace}{local}");
    graph.insert(
        Term::iri(iri.clone()),
        Term::iri(vocab::rdfs::LABEL),
        Term::from(Literal::simple(label)),
    );
    iri
}

/// Picks the base-member index for observation `j` over a pool of size
/// `pool`: round-robin through the pool first (coverage), then random.
pub fn pick_member(j: usize, pool: usize, rng: &mut StdRng) -> usize {
    if j < pool {
        j
    } else {
        rng.gen_range(0..pool)
    }
}

/// A deterministic RNG for a generator run.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Random example-tuple workload for the synthesis experiments, anchored at
/// actual observations so every generated tuple has at least one valid
/// interpretation (the paper randomly combines dimension members; anchoring
/// keeps the workload satisfiable at any scale).
///
/// Each tuple: pick a random observation, pick `size` distinct dimensions
/// of it, and for each use either the base member's label or — with
/// probability ½ when one exists — the label of a member one roll-up step
/// coarser.
pub fn example_workload(
    dataset: &Dataset,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    example_workload_on(&dataset.graph, dataset, size, count, seed)
}

/// [`example_workload`] against an explicit graph — used when the
/// dataset's graph has been moved into an endpoint.
pub fn example_workload_on(
    graph: &Graph,
    dataset: &Dataset,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<String>> {
    let type_pred = graph
        .iri_id(vocab::rdf::TYPE)
        .expect("generated graphs type their observations");
    let class = graph
        .iri_id(&dataset.observation_class)
        .expect("observation class interned");
    let observations = graph.subjects(type_pred, class).to_vec();
    assert!(!observations.is_empty(), "dataset has no observations");
    let label_pred = graph
        .iri_id(&dataset.label_predicate)
        .expect("label predicate interned");
    let dim_preds: Vec<TermId> = dataset
        .dimension_predicates
        .iter()
        .filter_map(|p| graph.iri_id(p))
        .collect();
    let rollup_preds: Vec<TermId> = dataset
        .rollup_predicates
        .iter()
        .filter_map(|p| graph.iri_id(p))
        .collect();
    assert!(
        size <= dim_preds.len(),
        "tuple size {size} exceeds dimension count {}",
        dim_preds.len()
    );

    let mut rng = rng(seed);
    let mut workload = Vec::with_capacity(count);
    while workload.len() < count {
        let obs = observations[rng.gen_range(0..observations.len())];
        // choose `size` distinct dimensions that this observation has
        let mut dims: Vec<TermId> = dim_preds
            .iter()
            .copied()
            .filter(|&p| !graph.objects(obs, p).is_empty())
            .collect();
        if dims.len() < size {
            continue;
        }
        // Fisher–Yates prefix shuffle
        for i in 0..size {
            let j = rng.gen_range(i..dims.len());
            dims.swap(i, j);
        }
        let mut tuple = Vec::with_capacity(size);
        let mut ok = true;
        for &dim in &dims[..size] {
            let members = graph.objects(obs, dim);
            let mut member = members[rng.gen_range(0..members.len())];
            if rng.gen_bool(0.5) {
                // walk one roll-up step if available
                let ups: Vec<TermId> = rollup_preds
                    .iter()
                    .flat_map(|&p| graph.objects(member, p).iter().copied())
                    .collect();
                if !ups.is_empty() {
                    member = ups[rng.gen_range(0..ups.len())];
                }
            }
            let labels = graph.objects(member, label_pred);
            match labels.first() {
                Some(&lit) => match graph.term(lit).as_literal() {
                    Some(l) => tuple.push(l.lexical().to_owned()),
                    None => ok = false,
                },
                None => ok = false,
            }
        }
        // avoid duplicate keywords within a tuple (ambiguous arity-2 tuples
        // like ⟨"Asia", "Asia"⟩ are valid but uninteresting)
        if ok {
            let mut sorted = tuple.clone();
            sorted.sort();
            sorted.dedup();
            if sorted.len() == tuple.len() {
                workload.push(tuple);
            }
        }
    }
    workload
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_labelled_and_deduplicated() {
        let mut g = Graph::new();
        let pool = make_members(&mut g, "http://d/", "country", 3, |i| {
            format!("Country {i}")
        });
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.labels[2], "Country 2");
        assert_eq!(g.len(), 3, "one label triple per member");
        // same call again: members already interned, labels deduplicated
        let again = make_members(&mut g, "http://d/", "country", 3, |i| {
            format!("Country {i}")
        });
        assert_eq!(again.ids, pool.ids);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn rollup_is_surjective_round_robin() {
        let mut g = Graph::new();
        let fine = make_members(&mut g, "http://d/", "c", 10, |i| format!("C{i}"));
        let coarse = make_members(&mut g, "http://d/", "r", 3, |i| format!("R{i}"));
        link_rollup(&mut g, &fine, &coarse, "http://d/inRegion", None);
        let pred = g.iri_id("http://d/inRegion").expect("pred");
        for &r in &coarse.ids {
            assert!(!g.subjects(pred, r).is_empty(), "every region reached");
        }
        for &c in &fine.ids {
            assert_eq!(g.objects(c, pred).len(), 1, "1-to-N without extras");
        }
    }

    #[test]
    fn extra_parents_create_m_to_n() {
        let mut g = Graph::new();
        let fine = make_members(&mut g, "http://d/", "g", 30, |i| format!("G{i}"));
        let coarse = make_members(&mut g, "http://d/", "s", 5, |i| format!("S{i}"));
        let mut r = rng(7);
        link_rollup(&mut g, &fine, &coarse, "http://d/origin", Some(&mut r));
        let pred = g.iri_id("http://d/origin").expect("pred");
        let multi = fine
            .ids
            .iter()
            .filter(|&&m| g.objects(m, pred).len() > 1)
            .count();
        assert!(multi > 0, "some members have several parents");
    }

    #[test]
    fn pick_member_covers_pool_then_randomizes() {
        let mut r = rng(1);
        let firsts: Vec<usize> = (0..5).map(|j| pick_member(j, 5, &mut r)).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3, 4]);
        let later = pick_member(100, 5, &mut r);
        assert!(later < 5);
    }
}
