//! A Spade-style interesting-aggregate explorer (Diao, Guzewicz,
//! Manolescu, Mazuran: "Efficient Exploration of Interesting Aggregates in
//! RDF Graphs", SIGMOD 2021) — the Table 1 comparator that produces
//! aggregates *without user input*.
//!
//! Spade enumerates candidate (dimension, measure, aggregate) combinations
//! over an RDF graph and ranks the resulting aggregates by an
//! *interestingness* score favouring skewed distributions. This
//! re-implementation follows that published contract: it proposes the
//! top-N most interesting one-dimensional aggregates of a statistical KG.
//! Unlike RE²xOLAP it takes no examples, offers no refinements, and its
//! candidate space grows with the schema — which is why the paper marks it
//! "no user input / no large KGs" in Table 1.

use re2x_cube::{patterns, VirtualSchemaGraph};
use re2x_sparql::{
    AggFunc, Expr, Query, SelectItem, SparqlEndpoint, SparqlError, TermPattern, TriplePattern,
};

/// One scored candidate aggregate.
#[derive(Debug, Clone)]
pub struct InterestingAggregate {
    /// Level display path (e.g. `citizen/inContinent`).
    pub level_path: Vec<String>,
    /// Measure predicate.
    pub measure: String,
    /// Aggregation function.
    pub agg: AggFunc,
    /// The executable query.
    pub query: Query,
    /// Interestingness: coefficient of variation of the per-group values
    /// (higher = more skew = more interesting, Spade's "second moment"
    /// family of scores).
    pub score: f64,
    /// Number of groups.
    pub groups: usize,
}

/// Enumerates and scores all (level, measure, agg) candidates, returning
/// the `top_n` most interesting. `agg` candidates follow Spade: `SUM`,
/// `AVG` and `COUNT`.
pub fn interesting_aggregates(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    top_n: usize,
) -> Result<Vec<InterestingAggregate>, SparqlError> {
    let mut out = Vec::new();
    for level in schema.levels() {
        for measure in schema.measures() {
            for agg in [AggFunc::Sum, AggFunc::Avg, AggFunc::Count] {
                let query = candidate_query(schema, &level.path, &measure.predicate, agg);
                let solutions = endpoint.select(&query)?;
                let graph = endpoint.graph();
                let values: Vec<f64> = solutions
                    .rows
                    .iter()
                    .filter_map(|row| row[1].as_ref().and_then(|v| v.as_number(graph)))
                    .collect();
                if values.len() < 2 {
                    continue; // a single group can't be skewed
                }
                let score = coefficient_of_variation(&values);
                out.push(InterestingAggregate {
                    level_path: level.path.clone(),
                    measure: measure.predicate.clone(),
                    agg,
                    query,
                    score,
                    groups: values.len(),
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.level_path.cmp(&b.level_path))
    });
    out.truncate(top_n);
    Ok(out)
}

/// `SELECT ?m (AGG(?v) AS ?x) WHERE { ?o a C . ?o <path> ?m . ?o <measure> ?v } GROUP BY ?m`.
fn candidate_query(
    schema: &VirtualSchemaGraph,
    path: &[String],
    measure: &str,
    agg: AggFunc,
) -> Query {
    let mut query = Query::select_all(vec![
        patterns::observation_type("o", &schema.observation_class),
        patterns::path_to_member("o", path, "m"),
        re2x_sparql::PatternElement::Triple(TriplePattern::new(
            TermPattern::Var("o".to_owned()),
            measure.to_owned(),
            TermPattern::Var("v".to_owned()),
        )),
    ]);
    query.select = vec![
        SelectItem::Var("m".to_owned()),
        SelectItem::Agg {
            func: agg,
            expr: Expr::var("v"),
            alias: "x".to_owned(),
        },
    ];
    query.group_by = vec!["m".to_owned()];
    query
}

/// Standard deviation over mean; 0 for constant or all-zero distributions.
fn coefficient_of_variation(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    variance.sqrt() / mean.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::LocalEndpoint;

    /// Two dimensions: `skewed` (one member dominates the measure) and
    /// `flat` (uniform) — the skewed one must rank first.
    fn fixture() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            ex:o1 a ex:Obs ; ex:skewed ex:A ; ex:flat ex:X ; ex:v 1000 .
            ex:o2 a ex:Obs ; ex:skewed ex:B ; ex:flat ex:Y ; ex:v 1 .
            ex:o3 a ex:Obs ; ex:skewed ex:B ; ex:flat ex:X ; ex:v 1 .
            ex:o4 a ex:Obs ; ex:skewed ex:B ; ex:flat ex:Y ; ex:v 1 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        let ep = LocalEndpoint::new(g);
        let schema = bootstrap(&ep, &BootstrapConfig::new("http://ex/Obs"))
            .expect("bootstrap")
            .schema;
        (ep, schema)
    }

    #[test]
    fn skewed_aggregates_rank_first() {
        let (ep, schema) = fixture();
        let found = interesting_aggregates(&ep, &schema, 3).expect("explore");
        assert_eq!(found.len(), 3);
        assert_eq!(found[0].level_path, vec!["http://ex/skewed".to_owned()]);
        assert!(
            found[0].score > 0.9,
            "SUM over the skewed dim: {}",
            found[0].score
        );
        // the proposed query executes and has one row per member
        let solutions = ep.select(&found[0].query).expect("runs");
        assert_eq!(solutions.len(), found[0].groups);
    }

    #[test]
    fn no_user_input_is_needed_and_no_refinements_are_offered() {
        // contract-level statement of Table 1: the API takes no example
        // and returns plain queries without refinement hooks
        let (ep, schema) = fixture();
        let found = interesting_aggregates(&ep, &schema, 10).expect("explore");
        assert!(!found.is_empty());
        for f in &found {
            assert!(f.query.is_aggregate());
            assert!(f.groups >= 2);
        }
    }

    #[test]
    fn coefficient_of_variation_properties() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        let skewed = coefficient_of_variation(&[1000.0, 1.0, 1.0]);
        let mild = coefficient_of_variation(&[10.0, 8.0, 9.0]);
        assert!(skewed > mild);
    }
}
