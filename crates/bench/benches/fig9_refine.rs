//! Figure 9a: generation time of the three post-hoc refinement methods
//! (Top-k, Percentile, Similarity) over an executed disaggregated query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use re2x_bench::env::{prepare, DatasetKind, Scales};
use re2x_datagen::example_workload_on;
use re2x_sparql::{Solutions, SparqlEndpoint};
use re2xolap::refine::subset::DEFAULT_PERCENTILES;
use re2xolap::{refine, reolap, OlapQuery, ReolapConfig};

fn disaggregated_query(
    prepared: &re2x_bench::env::PreparedDataset,
) -> Option<(OlapQuery, Solutions)> {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 1, 3, 42);
    let config = ReolapConfig::default();
    for tuple in &workload {
        let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
        let Ok(outcome) = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config)
        else {
            continue;
        };
        let Some(query) = outcome.queries.into_iter().next() else {
            continue;
        };
        let Some(r) = refine::disaggregate::disaggregate(&prepared.report.schema, &query)
            .into_iter()
            .next()
        else {
            continue;
        };
        let solutions = prepared.endpoint.select(&r.query.query).ok()?;
        if !solutions.is_empty() {
            return Some((r.query, solutions));
        }
    }
    None
}

fn bench_refinements(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_refinements");
    group.sample_size(10);
    let scales = Scales::smoke();
    for kind in DatasetKind::ALL {
        let prepared = prepare(kind, &scales, 42);
        let Some((query, solutions)) = disaggregated_query(&prepared) else {
            continue;
        };
        let schema = &prepared.report.schema;
        let graph = prepared.endpoint.graph();
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "topk"),
            &(),
            |b, ()| b.iter(|| refine::subset::topk(schema, &query, &solutions, graph)),
        );
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "percentile"),
            &(),
            |b, ()| {
                b.iter(|| {
                    refine::subset::percentile(
                        schema,
                        &query,
                        &solutions,
                        graph,
                        &DEFAULT_PERCENTILES,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "similarity"),
            &(),
            |b, ()| b.iter(|| refine::similar::similarity(schema, &query, &solutions, graph, 3)),
        );
        // disaggregate generation itself (sub-100ms claim of §6.1)
        group.bench_with_input(
            BenchmarkId::new(kind.name(), "disaggregate"),
            &(),
            |b, ()| b.iter(|| refine::disaggregate::disaggregate(schema, &query)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_refinements);
criterion_main!(benches);
