//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale smoke|full] [--seed N] [--out DIR]
//!       [--dash] [--input FILE] [--golden FILE] [--headless] [--live]
//!       [--speed F] [experiment …]
//!
//! experiments: table1 table2 table3 fig6 fig7 fig8 fig8c fig9 fig10
//!              ablations scaling latency trace sharding serve watch
//!              plan scale (default: all except `scale`, whose paper-scale
//!              ladder only runs when named explicitly)
//! ```
//!
//! `watch` replays a recorded JSONL event log through the `re2x-tui`
//! dashboard (`--headless` byte-compares the frames against the committed
//! golden and fails on drift; `--live` paints paced ANSI frames).
//! `--dash` attaches the live dashboard to the `serve` sweep.
//!
//! Results are printed and written to `<out>/<experiment>.txt`
//! (default `bench_results/`). Run with `--release`; the `full` scale
//! covers every base member pool so Table 3 is reproduced exactly.

use re2x_bench::env::{prepare, DatasetKind, PreparedDataset, Scales};
use re2x_bench::report::emit;
use re2x_bench::{ablation, figures};
use std::collections::BTreeSet;
use std::path::PathBuf;

struct Args {
    scale: Scales,
    scale_name: String,
    seed: u64,
    out: PathBuf,
    experiments: BTreeSet<String>,
    dash: bool,
    watch: re2x_bench::watch::WatchConfig,
}

const ALL: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "fig6",
    "fig7",
    "fig8",
    "fig8c",
    "fig9",
    "fig10",
    "ablations",
    "scaling",
    "latency",
    "trace",
    "sharding",
    "serve",
    "watch",
    "plan",
    "scale",
];

/// Experiments excluded from the implicit "run everything" default: the
/// scale ladder regenerates the dataset at paper-scale observation counts
/// (minutes of work), so it only runs when named explicitly.
const EXPLICIT_ONLY: [&str; 1] = ["scale"];

fn parse_args() -> Args {
    let mut args = Args {
        scale: Scales::full(),
        scale_name: "full".to_owned(),
        seed: 42,
        out: PathBuf::from("bench_results"),
        experiments: BTreeSet::new(),
        dash: false,
        watch: re2x_bench::watch::WatchConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_default();
                args.scale = match v.as_str() {
                    "smoke" => Scales::smoke(),
                    "full" => Scales::full(),
                    other => {
                        eprintln!("unknown scale '{other}' (use smoke|full)");
                        std::process::exit(2);
                    }
                };
                args.scale_name = v;
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed expects an integer");
                    std::process::exit(2);
                });
            }
            "--out" => {
                args.out = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out expects a directory");
                    std::process::exit(2);
                }));
            }
            "--dash" => {
                args.dash = true;
                args.watch.live = true;
            }
            "--headless" => args.watch.headless = true,
            "--live" => args.watch.live = true,
            "--input" => {
                args.watch.input = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--input expects a JSONL event-log path");
                    std::process::exit(2);
                })));
            }
            "--golden" => {
                args.watch.golden = Some(PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--golden expects a frame-script path");
                    std::process::exit(2);
                })));
            }
            "--speed" => {
                args.watch.speed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--speed expects a positive number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale smoke|full] [--seed N] [--out DIR] \
                     [--dash] [--input FILE] [--golden FILE] [--headless] [--live] \
                     [--speed F] [experiment …]"
                );
                eprintln!("experiments: {}", ALL.join(" "));
                std::process::exit(0);
            }
            name if ALL.contains(&name) => {
                args.experiments.insert(name.to_owned());
            }
            other => {
                eprintln!("unknown experiment '{other}'; available: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
    if args.experiments.is_empty() {
        args.experiments = ALL
            .iter()
            .filter(|s| !EXPLICIT_ONLY.contains(s))
            .map(|s| (*s).to_owned())
            .collect();
    }
    args
}

fn main() {
    let args = parse_args();
    let wants = |name: &str| args.experiments.contains(name);
    let needs_datasets = [
        "table3",
        "fig6",
        "fig7",
        "fig8",
        "fig8c",
        "fig9",
        "ablations",
    ]
    .iter()
    .any(|e| wants(e));

    println!(
        "RE2xOLAP reproduction — scale={}, seed={}, writing to {}\n",
        args.scale_name,
        args.seed,
        args.out.display()
    );

    if wants("table1") {
        emit(
            &args.out,
            "table1",
            "Table 1: capability comparison",
            &figures::table1(),
        );
    }
    if wants("table2") {
        emit(
            &args.out,
            "table2",
            "Table 2: resultset for ⟨\"Germany\", \"2014\"⟩ (running example)",
            &figures::table2(),
        );
    }
    if wants("scaling") {
        emit(
            &args.out,
            "scaling",
            "Scaling: synthesis time vs observation count (§5.3 claim)",
            &figures::scaling(args.seed),
        );
    }
    if wants("fig10") {
        emit(
            &args.out,
            "fig10",
            "Figure 10: SPARQLByE vs ReOLAP on the same example",
            &figures::fig10(),
        );
    }
    if wants("latency") {
        emit(
            &args.out,
            "latency",
            "Endpoint latency profile: per-phase p50/p99 and cache hit rates",
            &figures::latency_profile(args.seed),
        );
    }

    if wants("trace") {
        // 2 ms of injected latency stands in for a remote endpoint; the
        // phase-attributed report shows endpoint time dominating the
        // pipeline (the paper's Figs. 6–9 observation), and the async
        // comparison row measures how much of it the ticket fan-out
        // reclaims.
        let report =
            re2x_bench::trace::run_with_async_comparison(std::time::Duration::from_millis(2), 8);
        emit(
            &args.out,
            "trace",
            "Trace: phase-attributed pipeline cost under 2 ms endpoint latency",
            &report.summary(),
        );
        let _ = std::fs::create_dir_all(&args.out);
        let json_path = args.out.join("trace.json");
        if let Err(e) = std::fs::write(&json_path, report.to_json()) {
            eprintln!("could not write {}: {e}", json_path.display());
        } else {
            println!("wrote {}", json_path.display());
        }
        // full span/query event log is opt-in: it is large and per-run
        if std::env::var("RE2X_TRACE").is_ok_and(|v| v != "0") {
            let jsonl_path = args.out.join("trace_events.jsonl");
            if let Err(e) = std::fs::write(&jsonl_path, report.events_jsonl()) {
                eprintln!("could not write {}: {e}", jsonl_path.display());
            } else {
                println!("wrote {}", jsonl_path.display());
            }
        }
    }

    if wants("sharding") {
        // Scatter-gather over hash-partitioned shards, each paying the same
        // 2 ms round-trip the trace experiment injects plus a per-row
        // transfer cost; smoke runs a smaller fact table so the sweep stays
        // fast, full uses the headline size.
        let observations = if args.scale_name == "smoke" {
            4_000
        } else {
            12_000
        };
        eprintln!("running sharding sweep on {observations} eurostat observations …");
        let report = re2x_bench::sharding::run(observations, args.seed);
        emit(
            &args.out,
            "sharding",
            "Sharding: scatter-gather speedup over hash-partitioned shards (2 ms latency)",
            &report.summary(),
        );
        let _ = std::fs::create_dir_all(&args.out);
        let json_path = args.out.join("sharding.json");
        if let Err(e) = std::fs::write(&json_path, report.to_json()) {
            eprintln!("could not write {}: {e}", json_path.display());
        } else {
            println!("wrote {}", json_path.display());
        }
    }

    if wants("serve") {
        // Deterministic multi-tenant load: Zipf-drawn example sessions over
        // three tenant stacks, swept across worker counts, every transcript
        // differentially checked against a serial replay.
        let observations = if args.scale_name == "smoke" {
            800
        } else {
            2_000
        };
        eprintln!("running serve sweep on {observations} eurostat observations …");
        let report = re2x_bench::serve::run(observations, args.seed, args.dash);
        emit(
            &args.out,
            "serve",
            "Serve: multi-tenant session latency/throughput vs worker count",
            &report.summary(),
        );
        let _ = std::fs::create_dir_all(&args.out);
        let json_path = args.out.join("serve.json");
        if let Err(e) = std::fs::write(&json_path, report.to_json()) {
            eprintln!("could not write {}: {e}", json_path.display());
        } else {
            println!("wrote {}", json_path.display());
        }
    }

    if wants("plan") {
        // Planner + executor ablation on the dbpedia M-to-N dataset: each
        // workload query's textual order opens with a disconnected
        // hierarchy pattern, so the naive in-order baseline pays a
        // cartesian blowup the greedy planner avoids; columnar-vs-row is
        // measured under the planned order. All four configurations must
        // produce identical solutions.
        let observations = if args.scale_name == "smoke" {
            600
        } else {
            1_500
        };
        eprintln!("running planner ablation on {observations} dbpedia observations …");
        let report = re2x_bench::plan::run(observations, args.seed);
        emit(
            &args.out,
            "plan",
            "Plan: greedy planning + vectorized execution vs naive baselines (dbpedia M-to-N)",
            &report.summary(),
        );
        let _ = std::fs::create_dir_all(&args.out);
        let json_path = args.out.join("plan.json");
        if let Err(e) = std::fs::write(&json_path, report.to_json()) {
            eprintln!("could not write {}: {e}", json_path.display());
        } else {
            println!("wrote {}", json_path.display());
        }
    }

    if wants("scale") {
        // Snapshot-vs-regeneration ladder: each rung regenerates Eurostat,
        // writes the dictionary-encoded snapshot, loads it back through the
        // cache, proves the loaded graph identical (digest + probe-query
        // answers), and runs bootstrap + one ReOLAP synthesis end-to-end
        // from the loaded graph. Full scale uses the paper-scale rungs.
        let rungs: Vec<usize> = if args.scale_name == "smoke" {
            vec![100_000, 200_000, 400_000]
        } else {
            vec![1_000_000, 5_000_000, 15_000_000]
        };
        let snapshot_dir = args.out.join("snapshots");
        let report = re2x_bench::scale::run(&rungs, args.seed, &snapshot_dir);
        emit(
            &args.out,
            "scale",
            "Scale: snapshot load vs regeneration, schema-bound analytics ladder",
            &report.summary(),
        );
        let _ = std::fs::create_dir_all(&args.out);
        let json_path = args.out.join("scale.json");
        if let Err(e) = std::fs::write(&json_path, report.to_json()) {
            eprintln!("could not write {}: {e}", json_path.display());
        } else {
            println!("wrote {}", json_path.display());
        }
        if !report.all_identical() {
            eprintln!("scale: loaded snapshot diverged from the regenerated graph");
            std::process::exit(1);
        }
    }

    if wants("watch") {
        // Deterministic TUI replay of the committed scripted-session
        // fixture (or `--input`): in `--headless` mode the rendered frame
        // script must match the committed golden byte-for-byte.
        match re2x_bench::watch::run(&args.watch) {
            Ok(outcome) => {
                emit(
                    &args.out,
                    "watch",
                    "Watch: deterministic TUI replay of a recorded event log",
                    &outcome.summary(),
                );
                if outcome.golden_matched == Some(false) {
                    eprintln!("watch: rendered frames diverged from the golden script");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("watch: {e}");
                std::process::exit(1);
            }
        }
    }

    if !needs_datasets {
        return;
    }

    // Prepare the needed datasets (generation + bootstrap; bootstrap time
    // is itself the Figure 6c measurement). fig8c and the ablations run on
    // Eurostat only.
    let needs_all = ["table3", "fig6", "fig7", "fig8", "fig9"]
        .iter()
        .any(|e| wants(e));
    let kinds: &[DatasetKind] = if needs_all {
        &DatasetKind::ALL
    } else {
        &[DatasetKind::Eurostat]
    };
    let mut prepared: Vec<PreparedDataset> = Vec::new();
    for &kind in kinds {
        eprintln!(
            "preparing {} at scale {} …",
            kind.name(),
            args.scale.of(kind)
        );
        prepared.push(prepare(kind, &args.scale, args.seed));
    }

    if wants("table3") {
        emit(
            &args.out,
            "table3",
            "Table 3: dataset characteristics (discovered vs specification)",
            &figures::table3(&prepared),
        );
    }
    if wants("fig6") {
        emit(
            &args.out,
            "fig6",
            "Figure 6: dataset sizes and bootstrap time",
            &figures::fig6(&prepared),
        );
    }

    let mut fig7_results = Vec::new();
    let mut fig8_results = Vec::new();
    let mut fig9_results = Vec::new();
    if wants("fig7") || wants("fig8") || wants("fig9") {
        for p in &prepared {
            eprintln!("running synthesis workload on {} …", p.kind.name());
            let series = figures::fig7_measure(p, args.seed);
            if wants("fig8") || wants("fig9") {
                eprintln!("executing Orig/Dis.1/Dis.2 queries on {} …", p.kind.name());
                let (fig8_series, executed) = figures::fig8_measure(p, &series);
                fig8_results.push((p.kind.name(), fig8_series));
                if wants("fig9") {
                    eprintln!("generating refinements on {} …", p.kind.name());
                    // the paper refines the 40 synthesized queries; cap the
                    // executed pool accordingly to bound harness runtime
                    let pool = &executed[..executed.len().min(40)];
                    let stats = figures::fig9_measure(p, pool, 3);
                    fig9_results.push((p.kind.name(), stats));
                }
            }
            fig7_results.push((p.kind.name(), series));
        }
    }
    if wants("fig7") {
        emit(
            &args.out,
            "fig7",
            "Figure 7: ReOLAP synthesis time (a) and #queries (b)",
            &figures::fig7(&fig7_results),
        );
    }
    if wants("fig8") {
        emit(
            &args.out,
            "fig8",
            "Figure 8a/8b: query execution time and result size per disaggregation depth",
            &figures::fig8(&fig8_results),
        );
    }
    if wants("fig9") {
        emit(
            &args.out,
            "fig9",
            "Figure 9: refinement generation time (a) and #refinements (b)",
            &figures::fig9(&fig9_results),
        );
    }
    if wants("fig8c") {
        let eurostat = prepared
            .iter()
            .find(|p| p.kind == DatasetKind::Eurostat)
            .expect("eurostat prepared");
        emit(
            &args.out,
            "fig8c",
            "Figure 8c: exploration workflow — cumulative paths and tuples (Eurostat)",
            &figures::fig8c(eurostat, args.seed),
        );
    }
    if wants("ablations") {
        let eurostat = prepared
            .iter()
            .find(|p| p.kind == DatasetKind::Eurostat)
            .expect("eurostat prepared");
        eprintln!("running ablations …");
        let mut body = String::new();
        body.push_str("A1 — Virtual Schema Graph vs direct navigation:\n\n");
        body.push_str(&ablation::ablation_vgraph(eurostat, args.seed));
        body.push_str("\nA2 — interpretation validity check:\n\n");
        body.push_str(&ablation::ablation_validate(eurostat, args.seed));
        body.push_str("\nA3 — full-text index vs literal scan:\n\n");
        body.push_str(&ablation::ablation_text_index(eurostat, args.seed));
        body.push_str("\nA4 — greedy vs in-order join planning:\n\n");
        body.push_str(&ablation::ablation_planner(eurostat));
        body.push_str("\nA5 — endpoint latency dominates bootstrap (§7.1):\n\n");
        body.push_str(&ablation::ablation_endpoint_latency(eurostat));
        emit(
            &args.out,
            "ablations",
            "Ablation studies (DESIGN.md §4)",
            &body,
        );
    }
}
