//! Property suite for the lexer on the deterministic `re2x-testkit`
//! harness: tokenizing arbitrary (including malformed) input never
//! panics, and spans round-trip — ordered, non-overlapping, on char
//! boundaries, with whitespace-only gaps that reassemble the source.

use re2x_lint::lexer::tokenize;
use re2x_lint::rules::significant;
use re2x_lint::scope::ScopeTree;
use re2x_lint::SourceFile;
use re2x_testkit::{check, TestRng};

fn scope_tree(source: &str) -> ScopeTree {
    let file = SourceFile::new(
        "crates/fx/src/prop.rs".to_owned(),
        "fx".to_owned(),
        source.to_owned(),
    );
    ScopeTree::build(&significant(&file), source)
}

/// Spans must reassemble the input: each token's byte range lies on char
/// boundaries, tokens are ordered and disjoint, and the text between
/// consecutive tokens is whitespace only.
fn assert_spans_round_trip(source: &str) {
    let tokens = tokenize(source);
    let mut cursor = 0usize;
    for (i, token) in tokens.iter().enumerate() {
        assert!(
            token.start >= cursor,
            "token {i} starts at {} before previous end {cursor} in {source:?}",
            token.start
        );
        assert!(
            token.end > token.start,
            "token {i} has an empty span in {source:?}"
        );
        assert!(
            token.end <= source.len(),
            "token {i} overruns the source in {source:?}"
        );
        assert!(
            source.is_char_boundary(token.start) && source.is_char_boundary(token.end),
            "token {i} span not on char boundaries in {source:?}"
        );
        assert!(
            source[cursor..token.start].chars().all(char::is_whitespace),
            "non-whitespace gap {:?} before token {i} in {source:?}",
            &source[cursor..token.start]
        );
        cursor = token.end;
    }
    assert!(
        source[cursor..].chars().all(char::is_whitespace),
        "non-whitespace trailing gap {:?} in {source:?}",
        &source[cursor..]
    );
    // line numbers are 1-based and monotonically non-decreasing
    let mut last_line = 1;
    for token in &tokens {
        assert!(token.line >= last_line, "line numbers go backwards");
        last_line = token.line;
    }
}

/// Rust-ish fragments the generator splices together — the interesting
/// cases are the quote/comment/raw-string state machines interacting.
const FRAGMENTS: &[&str] = &[
    "fn f()",
    "let x = 1;",
    "x.unwrap()",
    "// line comment\n",
    "/* block */",
    "/* nested /* deeper */ still */",
    "\"plain string\"",
    "\"escaped \\\" quote\"",
    "r\"raw\"",
    "r#\"fenced \" raw\"#",
    "r##\"double # fence\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "'c'",
    "'\\n'",
    "b'\\xFF'",
    "'lifetime",
    "&'a str",
    "r#keyword",
    "1_000u64",
    "0xfeed",
    "::<Vec<u8>>",
    "#![forbid(unsafe_code)]",
    "macro_rules! m { () => {} }",
    "…unicode… «text» 🦀",
];

#[test]
fn tokenize_never_panics_and_spans_round_trip_on_spliced_fragments() {
    check("spliced fragments", |rng: &mut TestRng| {
        let n = rng.gen_range(0usize..12);
        let mut source = String::new();
        for _ in 0..n {
            let fragment = rng.pick(FRAGMENTS);
            source.push_str(fragment);
            let separator = rng.pick(&[" ", "\n", "\t", ""]);
            source.push_str(separator);
        }
        assert_spans_round_trip(&source);
    });
}

#[test]
fn tokenize_never_panics_on_arbitrary_unicode() {
    check("arbitrary unicode", |rng: &mut TestRng| {
        let source = rng.unicode_string(0..80);
        // malformed input (unterminated strings, stray quotes, half a
        // raw-string fence) must never panic the lexer
        let _ = tokenize(&source);
    });
}

#[test]
fn tokenize_never_panics_on_truncated_fragments() {
    check("truncated fragments", |rng: &mut TestRng| {
        let mut source = String::new();
        for _ in 0..rng.gen_range(1usize..6) {
            let fragment = rng.pick(FRAGMENTS);
            source.push_str(fragment);
        }
        // cut at an arbitrary char boundary to strand the lexer mid-token
        let boundaries: Vec<usize> = source
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(source.len()))
            .collect();
        let cut = *rng.pick(&boundaries);
        let _ = tokenize(&source[..cut]);
    });
}

#[test]
fn brace_tree_is_balanced_and_spans_nest_on_spliced_fragments() {
    // every fragment is individually brace-balanced, so any whitespace
    // splice of them must yield a balanced tree with nesting spans
    check("brace tree on spliced fragments", |rng: &mut TestRng| {
        let mut source = String::new();
        for _ in 0..rng.gen_range(0usize..12) {
            let fragment = rng.pick(FRAGMENTS);
            source.push_str(fragment);
            // non-empty separators: fragments must not merge into one
            // token (a raw-string fence swallowing a later `{`)
            let separator = rng.pick(&[" ", "\n", "\t"]);
            source.push_str(separator);
        }
        let tree = scope_tree(&source);
        assert!(
            tree.balanced,
            "balanced fragments stay balanced: {source:?}"
        );
        assert!(tree.spans_nest(), "spans must nest: {source:?}");
        for (b, block) in tree.blocks.iter().enumerate() {
            if let Some(p) = block.parent {
                assert!(p < b, "parents open before children");
                assert_eq!(
                    tree.blocks[p].depth + 1,
                    block.depth,
                    "depth is parent depth + 1"
                );
            } else {
                assert_eq!(block.depth, 0, "roots sit at depth 0");
            }
        }
    });
}

#[test]
fn brace_tree_never_panics_on_arbitrary_unicode() {
    check("brace tree on arbitrary unicode", |rng: &mut TestRng| {
        let source = rng.unicode_string(0..80);
        // may be unbalanced — that must be reported, never panicked,
        // and the span invariant holds regardless
        let tree = scope_tree(&source);
        assert!(
            tree.spans_nest(),
            "spans must nest even unbalanced: {source:?}"
        );
    });
}

#[test]
fn brace_tree_hard_cases() {
    // nested raw strings, byte strings, and char literals full of braces
    // contribute nothing to the tree
    for (source, blocks) in [
        ("fn a() { let s = r##\"{ \"# { \"##; }", 1),
        ("fn a() { let b = b\"{{{\"; let c = b'{'; }", 1),
        ("fn a() { let open = '{'; let close = '}'; }", 1),
        ("fn a() { /* { */ if x { /* } */ y(); } }", 2),
        ("fn a<'x>(v: &'x str) -> &'x str { v }", 1),
        ("macro_rules! m { () => { { } } }", 3),
    ] {
        let tree = scope_tree(source);
        assert!(tree.balanced, "{source:?}");
        assert!(tree.spans_nest(), "{source:?}");
        assert_eq!(tree.blocks.len(), blocks, "{source:?}: {:?}", tree.blocks);
    }
    // truncated input: reported unbalanced, open block has no close
    let tree = scope_tree("fn a() { if x {");
    assert!(!tree.balanced);
    assert_eq!(tree.blocks.len(), 2);
    assert!(tree.blocks.iter().all(|b| b.close.is_none()));
    // stray closers: reported unbalanced, no phantom blocks
    let tree = scope_tree("} fn a() {}");
    assert!(!tree.balanced);
    assert_eq!(tree.blocks.len(), 1);
}

#[test]
fn comments_and_strings_cover_their_content() {
    // deterministic spot-check that tricky constructs lex as ONE token
    for source in [
        "r##\"a \"# inside\"##",
        "/* outer /* inner */ outer */",
        "\"// not a comment\"",
        "// \"not a string\"\n",
        "br#\"b\"#",
    ] {
        let tokens = tokenize(source);
        assert_eq!(
            tokens.len(),
            1,
            "{source:?} should lex as one token, got {tokens:?}"
        );
        assert_eq!(tokens[0].start, 0);
        assert_eq!(tokens[0].end, source.trim_end().len());
    }
}
