//! Differential and accounting tests for the caching endpoint decorator:
//! a `CachingEndpoint` must be observably identical to the bare
//! `LocalEndpoint` it wraps (same schema, same solutions, same ASK
//! answers), and a warm cache must measurably reduce the number of
//! queries that reach the inner endpoint during a ReOLAP workload.

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_datagen::{eurostat, example_workload_on};
use re2x_sparql::{CachingEndpoint, LocalEndpoint, SparqlEndpoint};
use re2xolap::{refine, reolap, ReolapConfig};

const OBSERVATIONS: usize = 500;
const SEED: u64 = 42;

fn fresh_endpoint() -> (LocalEndpoint, re2x_datagen::Dataset) {
    let mut dataset = eurostat::generate(OBSERVATIONS, SEED);
    let graph = std::mem::take(&mut dataset.graph);
    (LocalEndpoint::new(graph), dataset)
}

/// Bootstrap + fig8-style workload (synthesize, execute, disaggregate,
/// execute again) evaluated twice through a cache must produce bit-for-bit
/// the answers of an undecorated endpoint.
#[test]
fn caching_endpoint_is_transparent() {
    let (plain, dataset) = fresh_endpoint();
    let (inner, _) = fresh_endpoint();
    let cached = CachingEndpoint::new(inner);

    let config = BootstrapConfig::new(&dataset.observation_class);
    let plain_schema = bootstrap(&plain, &config).expect("bootstrap").schema;
    let cached_schema = bootstrap(&cached, &config).expect("bootstrap").schema;
    assert_eq!(plain_schema, cached_schema, "schema differs through cache");

    let workload = example_workload_on(plain.graph(), &dataset, 1, 4, SEED);
    let reolap_config = ReolapConfig::default();
    let mut compared = 0usize;
    // two passes: the second answers from a warm cache and must still agree
    for _pass in 0..2 {
        for tuple in &workload {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            let Ok(outcome) = reolap(&plain, &plain_schema, &refs, &reolap_config) else {
                continue;
            };
            for q in &outcome.queries {
                let expected = plain.select(&q.query).expect("plain select");
                let got = cached.select(&q.query).expect("cached select");
                assert_eq!(expected, got, "solutions differ for {}", q.sparql());
                compared += 1;
                for r in refine::disaggregate::disaggregate(&plain_schema, q) {
                    let expected = plain.select(&r.query.query).expect("plain select");
                    let got = cached.select(&r.query.query).expect("cached select");
                    assert_eq!(expected, got, "disaggregated solutions differ");
                    compared += 1;
                }
            }
        }
    }
    assert!(
        compared >= 4,
        "workload produced too few queries ({compared})"
    );
    let stats = cached.stats();
    assert!(stats.cache_hits > 0, "second pass should hit the cache");
}

/// Re-running the same ReOLAP workload against a warm cache must issue
/// measurably fewer queries to the wrapped endpoint (ISSUE acceptance
/// criterion), visible through `EndpointStats`.
#[test]
fn warm_cache_reolap_issues_fewer_endpoint_queries() {
    let (inner, dataset) = fresh_endpoint();
    let endpoint = CachingEndpoint::new(inner);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;

    let workload = example_workload_on(endpoint.inner().graph(), &dataset, 2, 5, SEED);
    let reolap_config = ReolapConfig::default();
    let run = || {
        for tuple in &workload {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            if let Ok(outcome) = reolap(&endpoint, &schema, &refs, &reolap_config) {
                for q in outcome.queries.iter().take(2) {
                    let _ = endpoint.select(&q.query);
                }
            }
        }
    };

    endpoint.reset_stats();
    run();
    let cold = endpoint.inner().stats().total_queries();
    let cold_hits = endpoint.stats().cache_hits;

    endpoint.reset_stats();
    run();
    let warm = endpoint.inner().stats().total_queries();
    let warm_stats = endpoint.stats();

    assert!(cold > 0, "cold run must reach the endpoint");
    assert!(
        warm * 2 < cold,
        "warm run should issue well under half the endpoint queries (cold={cold}, warm={warm})"
    );
    assert!(
        warm_stats.cache_hits > cold_hits,
        "warm run answers mostly from cache (cold hits={cold_hits}, warm hits={})",
        warm_stats.cache_hits
    );
    // the merged query counters come from the inner endpoint, which only
    // ever sees cache misses
    assert_eq!(
        warm_stats.cache_misses,
        warm_stats.total_queries(),
        "every inner-endpoint query corresponds to exactly one cache miss"
    );
}

/// ASK and keyword answers must also round-trip the cache unchanged.
#[test]
fn ask_and_keyword_answers_match_through_the_cache() {
    let (plain, dataset) = fresh_endpoint();
    let (inner, _) = fresh_endpoint();
    let cached = CachingEndpoint::new(inner);

    let ask = re2x_sparql::parse_query(&format!("ASK {{ ?o a <{}> }}", dataset.observation_class))
        .expect("parses");
    for _ in 0..2 {
        assert_eq!(
            plain.ask(&ask).expect("ask"),
            cached.ask(&ask).expect("ask")
        );
    }

    for tuple in example_workload_on(plain.graph(), &dataset, 1, 3, SEED) {
        for keyword in &tuple {
            for _ in 0..2 {
                let expected = plain.keyword_search(keyword, true);
                let got = cached.keyword_search(keyword, true);
                assert_eq!(expected, got, "exact search differs for {keyword:?}");
                let expected = plain.keyword_search(keyword, false);
                let got = cached.keyword_search(keyword, false);
                assert_eq!(expected, got, "substring search differs for {keyword:?}");
            }
        }
    }
    let stats = cached.stats();
    assert!(stats.cache_hits > 0 && stats.cache_misses > 0);
}
