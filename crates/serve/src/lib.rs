//! # re2x-serve — the multi-tenant exploration session server
//!
//! The interactive engine in `re2xolap` drives **one** user's exploration.
//! This crate hosts **many** of them at once over a single shared graph
//! snapshot — the serving shape the paper's system demo implies: a KG
//! analytics endpoint where several analysts bootstrap cubes, synthesize
//! queries from examples, and refine them concurrently.
//!
//! The moving parts, bottom-up:
//!
//! - [`SessionScript`] / [`run_script`] — a deterministic round sequence
//!   (synthesize, refine, preview, think, backtrack) and the single
//!   execution path both the server's workers and the serial replay
//!   oracle use. Each run yields a timing-free [`SessionTranscript`]
//!   whose text rendering is byte-comparable across runs — the
//!   correctness oracle of the concurrency suites.
//! - [`QueryBudget`] — the per-session decorator cutting a session off
//!   *exactly* at its `SELECT`/`ASK` budget with the typed
//!   `SparqlError::BudgetExhausted`.
//! - [`FlakyEndpoint`] — seeded fault injection (failures and latency
//!   spikes) at the endpoint seam, for blast-radius testing.
//! - [`Server`] / [`ServerBuilder`] — per-tenant decorator stacks over
//!   copy-on-write graph clones, a bounded run-queue with non-blocking
//!   typed admission, panic-isolated workers, graceful draining
//!   shutdown, and per-tenant labelled metrics feeding the existing
//!   `re2x-obs` Prometheus exposition.
//!
//! Everything is panic-free library code under the workspace lint gate:
//! overload, faults, and even panicking session rounds surface as
//! [`ServeError`] values, never as a dead server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod error;
pub mod flaky;
pub mod script;
pub mod server;

pub use budget::QueryBudget;
pub use error::ServeError;
pub use flaky::FlakyEndpoint;
pub use script::{run_script, RoundOp, RoundRecord, SessionScript, SessionTranscript};
pub use server::{Server, ServerBuilder, TenantSpec, Ticket};
