//! Per-file analysis context: tokens, line table, `#[cfg(test)]` regions,
//! and `lint:allow` suppression comments.

use crate::lexer::{tokenize, Token, TokenKind};

/// A `// lint:allow(rule, reason)` suppression parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// Mandatory justification (an allow without a reason is inert).
    pub reason: String,
    /// Line the comment is on.
    pub line: u32,
    /// Whether this is a `lint:allow-file` (whole-file) suppression.
    pub whole_file: bool,
}

/// One source file prepared for rule evaluation.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate directory name under `crates/` (`core`, `sparql`, …).
    pub crate_name: String,
    /// Raw text.
    pub text: String,
    /// Token stream over `text`.
    pub tokens: Vec<Token>,
    /// Byte ranges covered by `#[cfg(test)] mod … { … }` blocks.
    test_regions: Vec<(usize, usize)>,
    /// Parsed suppressions.
    allows: Vec<Allow>,
}

impl SourceFile {
    /// Tokenizes and pre-analyzes one file.
    pub fn new(path: String, crate_name: String, text: String) -> SourceFile {
        let tokens = tokenize(&text);
        let test_regions = find_test_regions(&text, &tokens);
        let allows = find_allows(&text, &tokens);
        SourceFile {
            path,
            crate_name,
            text,
            tokens,
            test_regions,
            allows,
        }
    }

    /// Whether the byte offset falls inside a `#[cfg(test)]` module.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// The trimmed text of the 1-based line.
    pub fn line_snippet(&self, line: u32) -> String {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_owned()
    }

    /// Whether `rule` is suppressed at `line`: by a whole-file allow, an
    /// allow comment on the same line, or one on the directly preceding
    /// line. Allows without a reason never suppress.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && !a.reason.is_empty()
                && (a.whole_file || a.line == line || a.line + 1 == line)
        })
    }

    /// All parsed suppressions (for reporting).
    pub fn allows(&self) -> &[Allow] {
        &self.allows
    }
}

/// Finds `#[cfg(test)]` attributes followed by a `mod … { … }` and returns
/// the byte range from the attribute through the module's closing brace.
/// Also covers `#[cfg(test)]` directly on items (functions, impls) by
/// skipping to the item's brace block.
fn find_test_regions(text: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let significant: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < significant.len() {
        // match: # [ cfg ( test ) ]
        let is_cfg_test = significant[i].text(text) == "#"
            && significant[i + 1].text(text) == "["
            && significant[i + 2].text(text) == "cfg"
            && significant[i + 3].text(text) == "("
            && significant[i + 4].text(text) == "test"
            && significant[i + 5].text(text) == ")"
            && significant[i + 6].text(text) == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let attr_start = significant[i].start;
        // Find the first `{` after the attribute and match braces.
        let mut j = i + 7;
        let mut depth = 0usize;
        let mut end = text.len();
        while j < significant.len() {
            match significant[j].text(text) {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = significant[j].end;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    // e.g. `#[cfg(test)] mod tests;` — region is the decl
                    end = significant[j].end;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((attr_start, end));
        i = j + 1;
    }
    regions
}

/// Strips a plain (non-doc) `//` line comment down to its body. Doc
/// comments (`///`, `//!`) never carry directives — prose *about* the
/// directive syntax must not act as a directive.
pub fn plain_comment_body(comment: &str) -> Option<&str> {
    let rest = comment.strip_prefix("//")?;
    if rest.starts_with('/') || rest.starts_with('!') {
        return None;
    }
    Some(rest.trim_start())
}

/// Parses `lint:allow(rule, reason)` / `lint:allow-file(rule, reason)`
/// out of plain line comments. The directive must be the start of the
/// comment (`// lint:allow(…)`), so prose mentions don't suppress.
fn find_allows(text: &str, tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for token in tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let Some(body) = plain_comment_body(token.text(text)) else {
            continue;
        };
        let Some(rest) = body.strip_prefix("lint:allow") else {
            continue;
        };
        let whole_file = rest.starts_with("-file");
        let after = if whole_file {
            &rest["-file".len()..]
        } else {
            rest
        };
        let Some(open) = after.find('(') else {
            continue;
        };
        // nothing but whitespace may separate the marker from `(`
        if !after[..open].trim().is_empty() {
            continue;
        }
        let Some(close) = after[open..].find(')') else {
            continue;
        };
        let args = &after[open + 1..open + close];
        let (rule, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (args.trim(), ""),
        };
        if rule.is_empty() {
            continue;
        }
        allows.push(Allow {
            rule: rule.to_owned(),
            reason: reason.to_owned(),
            line: token.line,
            whole_file,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), src.into())
    }

    #[test]
    fn test_region_covers_mod_tests() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = file(src);
        let unwrap_at = src.find("unwrap").expect("present");
        let c_at = src.rfind("fn c").expect("present");
        assert!(f.in_test_region(unwrap_at));
        assert!(!f.in_test_region(c_at));
        assert!(!f.in_test_region(0));
    }

    #[test]
    fn test_region_handles_nested_braces() {
        let src = "#[cfg(test)]\nmod tests { fn a() { if x { y(); } } }\nfn after() {}\n";
        let f = file(src);
        assert!(!f.in_test_region(src.find("fn after").expect("present")));
    }

    #[test]
    fn allow_same_and_next_line() {
        let src = "\
let a = x.unwrap(); // lint:allow(panic-freedom, startup only)
// lint:allow(panic-freedom, checked above)
let b = y.unwrap();
let c = z.unwrap();
";
        let f = file(src);
        assert!(f.is_allowed("panic-freedom", 1));
        assert!(f.is_allowed("panic-freedom", 3));
        assert!(!f.is_allowed("panic-freedom", 4));
        assert!(!f.is_allowed("lock-order", 1));
    }

    #[test]
    fn allow_without_reason_is_inert() {
        let f = file("// lint:allow(panic-freedom)\nlet b = y.unwrap();\n");
        assert!(!f.is_allowed("panic-freedom", 2));
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let f = file("// lint:allow-file(no-wallclock, this is the timing layer)\nfn a() {}\n");
        assert!(f.is_allowed("no-wallclock", 999));
        assert!(!f.is_allowed("panic-freedom", 2));
    }

    #[test]
    fn allow_inside_string_is_ignored() {
        let f = file("let s = \"lint:allow(panic-freedom, nope)\";\nlet b = y.unwrap();\n");
        assert!(!f.is_allowed("panic-freedom", 2));
    }
}
