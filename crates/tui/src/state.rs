//! The dashboard model: a fold over bus events. `DashboardState` carries
//! everything the renderer needs and nothing else — no wall clock, no
//! handles — so `render(state) -> Frame` stays a pure function and the
//! same event log always produces byte-identical frames.

use re2x_obs::{BusEvent, LatencyHistogram, SpanAgg, TraceEvent};
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-tenant panel data, assembled from `serve.*{tenant="…"}` metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantPanel {
    /// Tenant id.
    pub tenant: String,
    /// Currently active sessions (`serve.sessions_active` gauge).
    pub active: f64,
    /// Sessions admitted so far.
    pub admitted: u64,
    /// Sessions completed successfully.
    pub completed: u64,
    /// Sessions that failed (excluding budget exhaustion and panics).
    pub failed: u64,
    /// Sessions rejected at admission (all reasons folded).
    pub rejected: u64,
    /// Sessions cut off by their query budget.
    pub budget_exhausted: u64,
    /// Worker panics attributed to this tenant.
    pub worker_panics: u64,
    /// ReOLAP rounds observed across phases.
    pub rounds: u64,
    /// Queue-wait distribution (`serve.queue_wait` histogram).
    pub queue_wait: LatencyHistogram,
    /// Per-round latency distribution (`serve.round_latency` histogram).
    pub round_latency: LatencyHistogram,
}

/// Shard-layer panel data, present when the workload runs sharded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardPanel {
    /// Fact-triple skew across shards (`shard_skew` gauge).
    pub skew: f64,
    /// Queries answered by scatter-gather.
    pub scatter: u64,
    /// Queries that fell back to a single replica.
    pub fallback: u64,
}

/// Everything the renderer draws, folded incrementally from bus events.
#[derive(Debug, Clone, Default)]
pub struct DashboardState {
    /// Largest event offset seen — the dashboard's notion of "now".
    pub clock: Duration,
    /// Total events applied.
    pub events_seen: u64,
    /// Events the subscription dropped (producer outran the consumer).
    pub dropped: u64,
    /// Spans currently open (enters minus exits, saturating).
    pub open_spans: u64,
    /// `SELECT` queries seen.
    pub selects: u64,
    /// `ASK` queries seen.
    pub asks: u64,
    /// Keyword lookups seen.
    pub keywords: u64,
    /// Summed endpoint time of all queries.
    pub endpoint_busy: Duration,
    /// Endpoint latency distribution.
    pub endpoint_latency: LatencyHistogram,
    /// Cache hits seen.
    pub cache_hits: u64,
    /// Cache misses seen.
    pub cache_misses: u64,
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    observations: BTreeMap<String, LatencyHistogram>,
}

impl DashboardState {
    /// An empty dashboard.
    pub fn new() -> DashboardState {
        DashboardState::default()
    }

    /// Folds one event in.
    pub fn apply(&mut self, event: &BusEvent) {
        self.events_seen += 1;
        self.clock = self.clock.max(event.at());
        match event {
            BusEvent::Trace(trace) => match trace {
                TraceEvent::Enter { .. } => self.open_spans += 1,
                TraceEvent::Exit {
                    path,
                    wall,
                    self_time,
                    ..
                } => {
                    self.open_spans = self.open_spans.saturating_sub(1);
                    let agg = self.spans.entry(path.clone()).or_insert_with(|| SpanAgg {
                        path: path.clone(),
                        ..SpanAgg::default()
                    });
                    agg.count += 1;
                    agg.wall += *wall;
                    agg.self_time += *self_time;
                }
                TraceEvent::Query { kind, latency, .. } => {
                    match kind {
                        re2x_obs::QueryKind::Select => self.selects += 1,
                        re2x_obs::QueryKind::Ask => self.asks += 1,
                        re2x_obs::QueryKind::Keyword => self.keywords += 1,
                    }
                    self.endpoint_busy += *latency;
                    self.endpoint_latency.record(*latency);
                }
                TraceEvent::Cache { hit, .. } => {
                    if *hit {
                        self.cache_hits += 1;
                    } else {
                        self.cache_misses += 1;
                    }
                }
            },
            BusEvent::Counter { name, delta, .. } => {
                *self.counters.entry(name.clone()).or_insert(0) += delta;
            }
            BusEvent::Gauge { name, value, .. } => {
                self.gauges.insert(name.clone(), *value);
            }
            BusEvent::Observe { name, latency, .. } => {
                self.observations
                    .entry(name.clone())
                    .or_default()
                    .record(*latency);
            }
        }
    }

    /// Folds a batch of events in.
    pub fn apply_all(&mut self, events: &[BusEvent]) {
        for event in events {
            self.apply(event);
        }
    }

    /// Records the subscription's drop counter (an absolute value read
    /// from [`re2x_obs::EventStream::dropped_events`], not a delta).
    pub fn note_dropped(&mut self, total: u64) {
        self.dropped = self.dropped.max(total);
    }

    /// Total queries of all kinds.
    pub fn queries(&self) -> u64 {
        self.selects + self.asks + self.keywords
    }

    /// Cache-eviction count, when the workload publishes
    /// `cache.evictions` (the caching endpoint does).
    pub fn cache_evictions(&self) -> u64 {
        self.counter("cache.evictions")
    }

    /// Current value of a folded counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a folded gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Folded histogram for an observed metric name.
    pub fn observation(&self, name: &str) -> Option<&LatencyHistogram> {
        self.observations.get(name)
    }

    /// Span aggregates sorted by path (tree order).
    pub fn span_aggs(&self) -> Vec<SpanAgg> {
        self.spans.values().cloned().collect()
    }

    /// Assembles per-tenant panels from every `serve.*{tenant="…"}`
    /// metric seen so far, sorted by tenant id.
    pub fn tenants(&self) -> Vec<TenantPanel> {
        let mut panels: BTreeMap<String, TenantPanel> = BTreeMap::new();
        for (name, value) in &self.counters {
            let Some((base, labels)) = parse_labeled(name) else {
                continue;
            };
            let Some(tenant) = label_value(&labels, "tenant") else {
                continue;
            };
            let entry = panels.entry(tenant.clone()).or_insert_with(|| TenantPanel {
                tenant,
                ..TenantPanel::default()
            });
            match base {
                "serve.sessions_admitted" => entry.admitted += value,
                "serve.sessions_completed" => entry.completed += value,
                "serve.sessions_failed" => entry.failed += value,
                "serve.sessions_rejected" => entry.rejected += value,
                "serve.sessions_budget_exhausted" => entry.budget_exhausted += value,
                "serve.worker_panics" => entry.worker_panics += value,
                "serve.rounds" => entry.rounds += value,
                _ => {}
            }
        }
        for (name, value) in &self.gauges {
            let Some((base, labels)) = parse_labeled(name) else {
                continue;
            };
            if base != "serve.sessions_active" {
                continue;
            }
            let Some(tenant) = label_value(&labels, "tenant") else {
                continue;
            };
            let entry = panels.entry(tenant.clone()).or_insert_with(|| TenantPanel {
                tenant,
                ..TenantPanel::default()
            });
            entry.active = *value;
        }
        for (name, hist) in &self.observations {
            let Some((base, labels)) = parse_labeled(name) else {
                continue;
            };
            let Some(tenant) = label_value(&labels, "tenant") else {
                continue;
            };
            let entry = panels.entry(tenant.clone()).or_insert_with(|| TenantPanel {
                tenant,
                ..TenantPanel::default()
            });
            match base {
                "serve.queue_wait" => entry.queue_wait.merge(hist),
                "serve.round_latency" => entry.round_latency.merge(hist),
                _ => {}
            }
        }
        panels.into_values().collect()
    }

    /// The shard panel, when any shard metric was seen.
    pub fn shards(&self) -> Option<ShardPanel> {
        let skew = self.gauge("shard_skew");
        let scatter = self.counter("sharded_scatter_queries");
        let fallback = self.counter("sharded_fallback_queries");
        if skew.is_none() && scatter == 0 && fallback == 0 {
            return None;
        }
        Some(ShardPanel {
            skew: skew.unwrap_or(0.0),
            scatter,
            fallback,
        })
    }
}

/// Splits a labeled metric name (`serve.rounds{tenant="t0",phase="x"}`)
/// into its base and label pairs. Returns `None` for unlabeled names.
/// Understands the `\"` and `\\` escapes [`re2x_obs::label`] emits.
pub fn parse_labeled(name: &str) -> Option<(&str, Vec<(String, String)>)> {
    let open = name.find('{')?;
    let inner = name.get(open + 1..)?.strip_suffix('}')?;
    let base = name.get(..open)?;
    let mut labels = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        chars.next()?; // '='
        if chars.next()? != '"' {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => value.push(chars.next()?),
                c => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            Some(_) => return None,
            None => break,
        }
    }
    Some((base, labels))
}

fn label_value(labels: &[(String, String)], key: &str) -> Option<String> {
    labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_labeled_handles_escapes_and_multiple_labels() {
        let (base, labels) =
            parse_labeled("serve.rounds{tenant=\"t\\\"0\",phase=\"synthesize\"}").expect("parses");
        assert_eq!(base, "serve.rounds");
        assert_eq!(
            labels,
            vec![
                ("tenant".to_owned(), "t\"0".to_owned()),
                ("phase".to_owned(), "synthesize".to_owned()),
            ]
        );
        assert_eq!(parse_labeled("plain"), None);
        assert_eq!(parse_labeled("broken{tenant=t0}"), None);
    }

    #[test]
    fn state_folds_spans_queries_and_cache() {
        let mut state = DashboardState::new();
        state.apply(&BusEvent::Trace(TraceEvent::Enter {
            span: 1,
            parent: None,
            path: "root".to_owned(),
            name: "root".to_owned(),
            thread: 0,
            at: Duration::from_micros(1),
            fields: Vec::new(),
        }));
        assert_eq!(state.open_spans, 1);
        state.apply(&BusEvent::Trace(TraceEvent::Query {
            path: "root".to_owned(),
            kind: re2x_obs::QueryKind::Select,
            thread: 0,
            at: Duration::from_micros(5),
            latency: Duration::from_micros(4),
        }));
        state.apply(&BusEvent::Trace(TraceEvent::Cache {
            path: "root".to_owned(),
            hit: true,
            thread: 0,
            at: Duration::from_micros(6),
        }));
        state.apply(&BusEvent::Trace(TraceEvent::Exit {
            span: 1,
            path: "root".to_owned(),
            thread: 0,
            at: Duration::from_micros(9),
            wall: Duration::from_micros(8),
            self_time: Duration::from_micros(8),
        }));
        assert_eq!(state.open_spans, 0);
        assert_eq!(state.queries(), 1);
        assert_eq!(state.cache_hits, 1);
        assert_eq!(state.clock, Duration::from_micros(9));
        assert_eq!(state.events_seen, 4);
        let aggs = state.span_aggs();
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].wall, Duration::from_micros(8));
    }

    #[test]
    fn tenant_panels_assemble_from_labeled_metrics() {
        let mut state = DashboardState::new();
        let at = Duration::from_micros(1);
        state.apply(&BusEvent::Counter {
            name: "serve.sessions_admitted{tenant=\"adhoc\"}".to_owned(),
            delta: 3,
            at,
        });
        state.apply(&BusEvent::Counter {
            name: "serve.sessions_rejected{tenant=\"adhoc\",reason=\"queue_full\"}".to_owned(),
            delta: 1,
            at,
        });
        state.apply(&BusEvent::Counter {
            name: "serve.rounds{tenant=\"adhoc\",phase=\"execute\"}".to_owned(),
            delta: 2,
            at,
        });
        state.apply(&BusEvent::Gauge {
            name: "serve.sessions_active{tenant=\"adhoc\"}".to_owned(),
            value: 2.0,
            at,
        });
        state.apply(&BusEvent::Observe {
            name: "serve.queue_wait{tenant=\"adhoc\"}".to_owned(),
            latency: Duration::from_micros(30),
            at,
        });
        state.apply(&BusEvent::Counter {
            name: "serve.sessions_admitted{tenant=\"analytics\"}".to_owned(),
            delta: 1,
            at,
        });
        let tenants = state.tenants();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].tenant, "adhoc");
        assert_eq!(tenants[0].admitted, 3);
        assert_eq!(tenants[0].rejected, 1);
        assert_eq!(tenants[0].rounds, 2);
        assert_eq!(tenants[0].active, 2.0);
        assert_eq!(tenants[0].queue_wait.count(), 1);
        assert_eq!(tenants[1].tenant, "analytics");
    }

    #[test]
    fn shard_panel_appears_only_when_sharded() {
        let mut state = DashboardState::new();
        assert_eq!(state.shards(), None);
        state.apply(&BusEvent::Gauge {
            name: "shard_skew".to_owned(),
            value: 1.25,
            at: Duration::ZERO,
        });
        state.apply(&BusEvent::Counter {
            name: "sharded_scatter_queries".to_owned(),
            delta: 7,
            at: Duration::ZERO,
        });
        let shards = state.shards().expect("present");
        assert_eq!(shards.skew, 1.25);
        assert_eq!(shards.scatter, 7);
    }
}
