//! Error type of the RE²xOLAP layer.

use re2x_sparql::SparqlError;
use std::fmt;

/// Errors raised by query synthesis and refinement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Re2xError {
    /// The underlying endpoint rejected or failed a query.
    Sparql(SparqlError),
    /// A keyword matched no dimension member at any level.
    NoMatch {
        /// The keyword with no interpretation.
        keyword: String,
    },
    /// The interpretation space exceeded the configured bound.
    TooManyInterpretations {
        /// Number of combinations that would have been enumerated.
        combinations: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The example tuples have inconsistent arity.
    MixedArity,
    /// A refinement was requested against an operation it does not support
    /// (e.g. similarity search on a query with no measure columns).
    NotApplicable(String),
}

impl fmt::Display for Re2xError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Re2xError::Sparql(e) => write!(f, "endpoint error: {e}"),
            Re2xError::NoMatch { keyword } => {
                write!(f, "no dimension member matches the example '{keyword}'")
            }
            Re2xError::TooManyInterpretations { combinations, bound } => write!(
                f,
                "example is too ambiguous: {combinations} interpretation combinations exceed the bound of {bound}"
            ),
            Re2xError::MixedArity => {
                write!(f, "all example tuples must have the same number of components")
            }
            Re2xError::NotApplicable(m) => write!(f, "refinement not applicable: {m}"),
        }
    }
}

impl std::error::Error for Re2xError {}

impl From<SparqlError> for Re2xError {
    fn from(value: SparqlError) -> Self {
        Re2xError::Sparql(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Re2xError::NoMatch {
            keyword: "Atlantis".into(),
        };
        assert!(e.to_string().contains("Atlantis"));
        let e = Re2xError::TooManyInterpretations {
            combinations: 100,
            bound: 10,
        };
        assert!(e.to_string().contains("100"));
        let e: Re2xError = SparqlError::invalid("x").into();
        assert!(matches!(e, Re2xError::Sparql(_)));
        assert!(Re2xError::MixedArity.to_string().contains("same number"));
    }
}
