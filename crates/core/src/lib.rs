#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2xolap
//!
//! A Rust implementation of **RE²xOLAP** — *Example-Driven Exploratory
//! Analytics over Knowledge Graphs* (Lissandrini, Hose, Pedersen, EDBT
//! 2023): reverse engineering analytical SPARQL queries over statistical
//! knowledge graphs from a handful of example entities, and refining them
//! interactively without ever writing a query.
//!
//! ## Workflow
//!
//! ```text
//! keywords ─▶ ReOLAP (Algorithm 1) ─▶ candidate SELECT…GROUP BY queries
//!              │ Virtual Schema Graph (re2x-cube)
//!              ▼
//!        user picks one ─▶ results ─▶ ExRef refinements
//!                                       • Disaggregate (drill-down, 2a)
//!                                       • Top-k / Percentile (dice, 2b)
//!                                       • Similarity search (2c)
//! ```
//!
//! ## Quick start
//!
//! ```
//! use re2x_rdf::{Graph, io::parse_turtle};
//! use re2x_sparql::LocalEndpoint;
//! use re2x_cube::{bootstrap, BootstrapConfig};
//! use re2xolap::{Session, SessionConfig};
//!
//! let mut g = Graph::new();
//! parse_turtle(r#"
//!     @prefix ex: <http://ex/> .
//!     @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//!     ex:Germany rdfs:label "Germany" .
//!     ex:o1 a ex:Obs ; ex:dest ex:Germany ; ex:applicants 42 .
//! "#, &mut g).unwrap();
//! let endpoint = LocalEndpoint::new(g);
//! let schema = bootstrap(&endpoint, &BootstrapConfig::new("http://ex/Obs")).unwrap().schema;
//! let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
//! let outcome = session.synthesize(&["Germany"]).unwrap();
//! assert_eq!(outcome.queries.len(), 1);
//! let step = session.choose(outcome.queries[0].clone()).unwrap();
//! assert_eq!(step.solutions.len(), 1);
//! ```

pub mod error;
pub mod matching;
pub mod negative;
pub mod profile;
pub mod query_model;
pub mod ranking;
pub mod refine;
pub mod reolap;
pub mod session;
pub mod transcript;

pub use error::Re2xError;
pub use matching::{matches, member_levels, MatchMode, MemberMatch};
pub use negative::{exclude_negatives, NegativeOutcome};
pub use profile::{profile, DatasetProfile};
pub use query_model::{ExampleBinding, GroupColumn, MeasureColumn, OlapQuery};
pub use ranking::{rank_interpretations, rank_refinements, RankFactors, RankedQuery};
pub use refine::{RefineOp, Refinement, RefinementKind};
pub use reolap::{
    get_query, reolap, reolap_multi, validation_query, ReolapConfig, SynthesisOutcome,
};
pub use session::{
    ExplorationMetrics, PhaseBreakdown, PhaseCost, Session, SessionConfig, SessionObserver,
    SessionPhase, Step, StepCost,
};
pub use transcript::to_markdown as session_transcript;
