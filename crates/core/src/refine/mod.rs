//! ExRef — the example-driven query refinement suite (Section 6).
//!
//! Three independent refinement operations, each returning a set of
//! candidate refined queries with explanations:
//!
//! * [`disaggregate`](disaggregate::disaggregate) — Problem 2a, the OLAP
//!   drill-down: add a dimension/level not yet in the query (navigates only
//!   the Virtual Schema Graph, no triplestore access).
//! * [`topk`](subset::topk) and [`percentile`](subset::percentile) —
//!   Problem 2b, the dice: restrict results by measure-value thresholds
//!   that keep the user's example in the result.
//! * [`similarity`](similar::similarity) — Problem 2c: keep only the k
//!   member combinations whose measure profile is most similar to the
//!   example's (cosine over feature vectors, Figure 5).
//!
//! All refinements preserve the example-driven invariant: the refined
//! query's results still contain tuples about the user's example.

pub mod disaggregate;
pub mod similar;
pub mod subset;

use crate::query_model::OlapQuery;
use re2x_cube::LevelId;
use re2x_sparql::Order;

/// The refinement operation that produced a query (used by the session and
/// the experiment harness).
#[derive(Debug, Clone, PartialEq)]
pub enum RefinementKind {
    /// Drill-down: a grouping level was added.
    Disaggregate {
        /// The added level.
        level: LevelId,
    },
    /// Dice by top/bottom-k threshold on a measure column.
    TopK {
        /// The thresholded measure column.
        measure_alias: String,
        /// How many tuples survive.
        k: usize,
        /// `Desc` = top-k, `Asc` = bottom-k.
        order: Order,
    },
    /// Dice by a percentile interval of a measure column.
    Percentile {
        /// The measure column.
        measure_alias: String,
        /// Lower percentile bound (inclusive).
        lower_pct: u8,
        /// Upper percentile bound (exclusive; 100 = inclusive top).
        upper_pct: u8,
    },
    /// Restriction to the k member combinations most similar to the
    /// example.
    Similarity {
        /// The measure whose profile defines similarity.
        measure_alias: String,
        /// Number of similar combinations kept (besides the example's).
        k: usize,
    },
}

/// A refined query with provenance and an explanation for the user.
#[derive(Debug, Clone, PartialEq)]
pub struct Refinement {
    /// The refined annotated query.
    pub query: OlapQuery,
    /// What operation produced it.
    pub kind: RefinementKind,
    /// Human-readable explanation (the paper's explainability criterion).
    pub explanation: String,
}

/// The refinement operations offered in the interactive loop
/// (`ExRef ← {Dis, TopK, Perc, Sim}` in Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefineOp {
    /// Example-driven disaggregate (drill-down).
    Disaggregate,
    /// Top-k subset.
    TopK,
    /// Percentile subset.
    Percentile,
    /// Similarity search.
    Similarity,
}

impl RefineOp {
    /// All operations, in the paper's order.
    pub const ALL: [RefineOp; 4] = [
        RefineOp::Disaggregate,
        RefineOp::TopK,
        RefineOp::Percentile,
        RefineOp::Similarity,
    ];
}
