//! The Virtual Schema Graph (Section 5.2 of the paper).
//!
//! A level-granularity, in-memory summary of how dimension hierarchies are
//! organized: one node per hierarchy level plus a root node `v_o`
//! representing the observation level, with predicate-labelled edges.
//! Because it stores levels instead of members it is orders of magnitude
//! smaller than the data, and REOLAP and the refinement operators navigate
//! it instead of querying the triplestore.

use crate::model::{Dimension, DimensionId, LevelId, LevelNode, Measure, MeasureId};

/// Aggregate statistics of a schema, matching the columns of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaStats {
    /// Number of dimensions |D|.
    pub dimensions: usize,
    /// Number of measures |M|.
    pub measures: usize,
    /// Number of hierarchies |H| (maximal root-to-leaf level paths).
    pub hierarchies: usize,
    /// Number of levels |L̄|.
    pub levels: usize,
    /// Total dimension members across levels |N_D|.
    pub members: usize,
    /// Approximate in-memory size of the virtual graph in bytes.
    pub vgraph_bytes: usize,
}

/// The Virtual Schema Graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualSchemaGraph {
    /// IRI of the class whose instances are observations.
    pub observation_class: String,
    /// Number of observation instances found at bootstrap.
    pub observation_count: usize,
    dimensions: Vec<Dimension>,
    measures: Vec<Measure>,
    levels: Vec<LevelNode>,
    /// Children of each level (levels reached by one more roll-up step).
    children: Vec<Vec<LevelId>>,
    /// Parent of each level (`None` for base levels, whose parent is the
    /// observation root `v_o`).
    parent: Vec<Option<LevelId>>,
}

impl VirtualSchemaGraph {
    /// An empty schema for the given observation class.
    pub fn new(observation_class: impl Into<String>) -> Self {
        VirtualSchemaGraph {
            observation_class: observation_class.into(),
            ..Default::default()
        }
    }

    // ---- construction ------------------------------------------------------

    /// Registers a dimension, returning its id.
    pub fn add_dimension(
        &mut self,
        predicate: impl Into<String>,
        label: impl Into<String>,
    ) -> DimensionId {
        let id = DimensionId(self.dimensions.len() as u32);
        self.dimensions.push(Dimension {
            id,
            predicate: predicate.into(),
            label: label.into(),
        });
        id
    }

    /// Registers a measure, returning its id.
    pub fn add_measure(
        &mut self,
        predicate: impl Into<String>,
        label: impl Into<String>,
    ) -> MeasureId {
        let id = MeasureId(self.measures.len() as u32);
        self.measures.push(Measure {
            id,
            predicate: predicate.into(),
            label: label.into(),
        });
        id
    }

    /// Registers a level. Base levels (path length 1) hang off the
    /// observation root; deeper levels must extend an existing level's path
    /// by exactly one predicate.
    ///
    /// # Panics
    /// If a deeper level's prefix path is not already registered, or the
    /// path is already present.
    pub fn add_level(
        &mut self,
        dimension: DimensionId,
        path: Vec<String>,
        member_count: usize,
        attribute_predicates: Vec<String>,
        label: impl Into<String>,
    ) -> LevelId {
        assert!(!path.is_empty(), "level path must be non-empty");
        assert!(
            self.level_by_path(&path).is_none(),
            "level path already registered: {path:?}"
        );
        let parent = if path.len() == 1 {
            None
        } else {
            let prefix = &path[..path.len() - 1];
            let parent = self
                .level_by_path(prefix)
                // lint:allow(panic-freedom, constructor contract like the asserts above: levels register parent-first)
                .unwrap_or_else(|| panic!("parent level not registered for {path:?}"));
            Some(parent)
        };
        let id = LevelId(self.levels.len() as u32);
        self.levels.push(LevelNode {
            id,
            dimension,
            path,
            member_count,
            attribute_predicates,
            label: label.into(),
        });
        self.children.push(Vec::new());
        self.parent.push(parent);
        if let Some(p) = parent {
            self.children[p.index()].push(id);
        }
        id
    }

    /// Updates a level's member count (used by the incremental refresh).
    pub fn set_member_count(&mut self, id: LevelId, count: usize) {
        self.levels[id.index()].member_count = count;
    }

    // ---- lookup --------------------------------------------------------------

    /// All dimensions.
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// All measures.
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// All levels.
    pub fn levels(&self) -> &[LevelNode] {
        &self.levels
    }

    /// A dimension by id.
    pub fn dimension(&self, id: DimensionId) -> &Dimension {
        &self.dimensions[id.index()]
    }

    /// A measure by id.
    pub fn measure(&self, id: MeasureId) -> &Measure {
        &self.measures[id.index()]
    }

    /// A level by id.
    pub fn level(&self, id: LevelId) -> &LevelNode {
        &self.levels[id.index()]
    }

    /// The level with exactly this observation-to-member path.
    pub fn level_by_path(&self, path: &[String]) -> Option<LevelId> {
        self.levels.iter().find(|l| l.path == path).map(|l| l.id)
    }

    /// The dimension whose base predicate is `predicate`.
    pub fn dimension_by_predicate(&self, predicate: &str) -> Option<DimensionId> {
        self.dimensions
            .iter()
            .find(|d| d.predicate == predicate)
            .map(|d| d.id)
    }

    /// Base levels (children of the observation root `v_o`).
    pub fn base_levels(&self) -> impl Iterator<Item = &LevelNode> {
        self.levels.iter().filter(|l| l.depth() == 1)
    }

    /// Levels of one dimension.
    pub fn levels_of(&self, dimension: DimensionId) -> impl Iterator<Item = &LevelNode> {
        self.levels.iter().filter(move |l| l.dimension == dimension)
    }

    /// Children of a level (one roll-up step finer-to-coarser).
    pub fn children(&self, id: LevelId) -> &[LevelId] {
        &self.children[id.index()]
    }

    /// Parent of a level (`None` for base levels).
    pub fn parent(&self, id: LevelId) -> Option<LevelId> {
        self.parent[id.index()]
    }

    /// Levels whose final path predicate is `predicate`.
    pub fn levels_with_last_predicate(&self, predicate: &str) -> Vec<LevelId> {
        self.levels
            .iter()
            .filter(|l| l.last_predicate() == predicate)
            .map(|l| l.id)
            .collect()
    }

    /// All hierarchies: maximal root-to-leaf level paths, each as the list
    /// of level ids from base to coarsest.
    pub fn hierarchies(&self) -> Vec<Vec<LevelId>> {
        let mut out = Vec::new();
        for level in &self.levels {
            if !self.children[level.id.index()].is_empty() {
                continue; // not a leaf
            }
            // walk up to the base
            let mut chain = vec![level.id];
            let mut current = level.id;
            while let Some(p) = self.parent[current.index()] {
                chain.push(p);
                current = p;
            }
            chain.reverse();
            out.push(chain);
        }
        out
    }

    /// `true` if level `coarse` aggregates level `fine` at a coarser
    /// granularity within the same hierarchy (path-prefix relation).
    pub fn is_coarser(&self, coarse: LevelId, fine: LevelId) -> bool {
        self.level(fine).is_ancestor_of(self.level(coarse))
    }

    /// Summary statistics (the Table 3 columns).
    pub fn stats(&self) -> SchemaStats {
        SchemaStats {
            dimensions: self.dimensions.len(),
            measures: self.measures.len(),
            hierarchies: self.hierarchies().len(),
            levels: self.levels.len(),
            members: self.levels.iter().map(|l| l.member_count).sum(),
            vgraph_bytes: self.heap_bytes(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        let strings = |s: &str| s.len();
        let mut bytes = self.observation_class.len();
        for d in &self.dimensions {
            bytes += strings(&d.predicate) + strings(&d.label) + std::mem::size_of::<Dimension>();
        }
        for m in &self.measures {
            bytes += strings(&m.predicate) + strings(&m.label) + std::mem::size_of::<Measure>();
        }
        for l in &self.levels {
            bytes += l.path.iter().map(|p| p.len()).sum::<usize>()
                + l.attribute_predicates
                    .iter()
                    .map(|p| p.len())
                    .sum::<usize>()
                + strings(&l.label)
                + std::mem::size_of::<LevelNode>();
        }
        bytes += self
            .children
            .iter()
            .map(|c| c.len() * std::mem::size_of::<LevelId>())
            .sum::<usize>();
        bytes += self.parent.len() * std::mem::size_of::<Option<LevelId>>();
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running-example schema: Origin (country→continent), Destination
    /// (country→continent), Ref. Period (month→year), Age.
    pub(crate) fn asylum_schema() -> VirtualSchemaGraph {
        let mut v = VirtualSchemaGraph::new("http://ex/Observation");
        v.observation_count = 15_000_000;
        let origin = v.add_dimension("http://ex/origin", "Country of Origin");
        let dest = v.add_dimension("http://ex/dest", "Country of Destination");
        let period = v.add_dimension("http://ex/refPeriod", "Ref Period");
        let age = v.add_dimension("http://ex/age", "Age Range");
        v.add_measure("http://ex/applicants", "Num Applicants");
        let attr = vec!["http://ex/label".to_owned()];
        v.add_level(
            origin,
            vec!["http://ex/origin".into()],
            150,
            attr.clone(),
            "Country",
        );
        v.add_level(
            origin,
            vec!["http://ex/origin".into(), "http://ex/inContinent".into()],
            6,
            attr.clone(),
            "Continent",
        );
        v.add_level(
            dest,
            vec!["http://ex/dest".into()],
            30,
            attr.clone(),
            "Country",
        );
        v.add_level(
            dest,
            vec!["http://ex/dest".into(), "http://ex/inContinent".into()],
            2,
            attr.clone(),
            "Continent",
        );
        v.add_level(
            period,
            vec!["http://ex/refPeriod".into()],
            120,
            attr.clone(),
            "Month",
        );
        v.add_level(
            period,
            vec!["http://ex/refPeriod".into(), "http://ex/inYear".into()],
            10,
            attr.clone(),
            "Year",
        );
        v.add_level(age, vec!["http://ex/age".into()], 5, attr, "Age Group");
        v
    }

    #[test]
    fn structure_queries() {
        let v = asylum_schema();
        assert_eq!(v.dimensions().len(), 4);
        assert_eq!(v.measures().len(), 1);
        assert_eq!(v.levels().len(), 7);
        assert_eq!(v.base_levels().count(), 4);
        let origin = v.dimension_by_predicate("http://ex/origin").expect("dim");
        assert_eq!(v.levels_of(origin).count(), 2);
        let country = v
            .level_by_path(&["http://ex/origin".to_owned()])
            .expect("level");
        let continent = v
            .level_by_path(&[
                "http://ex/origin".to_owned(),
                "http://ex/inContinent".to_owned(),
            ])
            .expect("level");
        assert_eq!(v.children(country), &[continent]);
        assert_eq!(v.parent(continent), Some(country));
        assert_eq!(v.parent(country), None);
        assert!(v.is_coarser(continent, country));
        assert!(!v.is_coarser(country, continent));
    }

    #[test]
    fn hierarchies_are_maximal_paths() {
        let v = asylum_schema();
        let hs = v.hierarchies();
        // leaves: origin/continent, dest/continent, period/year, age → 4
        assert_eq!(hs.len(), 4);
        for h in &hs {
            assert!(v.parent(h[0]).is_none(), "starts at a base level");
            for w in h.windows(2) {
                assert_eq!(v.parent(w[1]), Some(w[0]));
            }
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let v = asylum_schema();
        let s = v.stats();
        assert_eq!(s.dimensions, 4);
        assert_eq!(s.measures, 1);
        assert_eq!(s.hierarchies, 4);
        assert_eq!(s.levels, 7);
        assert_eq!(s.members, 150 + 6 + 30 + 2 + 120 + 10 + 5);
        assert!(s.vgraph_bytes > 0);
    }

    #[test]
    fn levels_with_last_predicate_spans_dimensions() {
        let v = asylum_schema();
        let hits = v.levels_with_last_predicate("http://ex/inContinent");
        assert_eq!(hits.len(), 2, "continent levels of origin and dest");
    }

    #[test]
    #[should_panic(expected = "parent level not registered")]
    fn deep_level_requires_parent() {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        let d = v.add_dimension("http://ex/p", "P");
        v.add_level(
            d,
            vec!["http://ex/p".into(), "http://ex/q".into()],
            1,
            vec![],
            "Bad",
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_path_rejected() {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        let d = v.add_dimension("http://ex/p", "P");
        v.add_level(d, vec!["http://ex/p".into()], 1, vec![], "L");
        v.add_level(d, vec!["http://ex/p".into()], 1, vec![], "L2");
    }
}
