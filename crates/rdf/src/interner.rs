//! Term interning: maps [`Term`]s to dense [`TermId`]s and back.
//!
//! All indexes and query-evaluation data structures operate on `u32` ids,
//! which keeps joins and hash lookups cheap (see the hashing notes in
//! [`crate::hash`]) and makes solution rows `Copy`.

use crate::error::RdfError;
use crate::hash::FxHashMap;
use crate::term::Term;

/// The maximum number of distinct terms an interner can hold: every id up
/// to `u32::MAX - 1` is addressable, and `u32::MAX` itself is reserved for
/// [`TermId::OVERFLOW`].
pub const TERM_CAPACITY: usize = u32::MAX as usize;

/// A dense identifier for an interned [`Term`].
///
/// Ids are only meaningful relative to the [`Interner`] (and hence the
/// [`crate::Graph`]) that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// Sentinel id returned by the infallible [`Interner::intern`] when the
    /// table is full. It never resolves to a term ([`Interner::resolve`]
    /// panics on it like any foreign id) and never matches a real triple.
    pub const OVERFLOW: TermId = TermId(u32::MAX);

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only term table with O(1) lookup in both directions.
///
/// Numeric values of literals are parsed once at interning time and cached,
/// so aggregation never re-parses lexical forms (a hot path in the paper's
/// refinement experiments).
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
    /// Cached numeric interpretation, parallel to `terms`.
    numeric: Vec<Option<f64>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id (existing or fresh). If the table
    /// is already at [`TERM_CAPACITY`], the term is dropped and the
    /// [`TermId::OVERFLOW`] sentinel comes back — callers that must
    /// distinguish the case use [`Interner::try_intern`].
    pub fn intern(&mut self, term: Term) -> TermId {
        self.try_intern(term).unwrap_or(TermId::OVERFLOW)
    }

    /// Interns a term, returning a typed error instead of a sentinel when
    /// the table is full.
    pub fn try_intern(&mut self, term: Term) -> Result<TermId, RdfError> {
        if let Some(&id) = self.ids.get(&term) {
            return Ok(id);
        }
        if self.terms.len() >= TERM_CAPACITY {
            return Err(RdfError::TermCapacity);
        }
        let id = TermId(self.terms.len() as u32);
        let numeric = term.as_literal().and_then(|l| l.as_f64());
        self.numeric.push(numeric);
        self.ids.insert(term.clone(), id);
        self.terms.push(term);
        Ok(id)
    }

    /// Rebuilds an interner from a term table in interning order — the
    /// snapshot loader's bulk constructor. Ids are assigned positionally
    /// (`terms[i]` ⇒ `TermId(i)`), the numeric cache is recomputed, and the
    /// reverse map is re-hashed once per term; no other per-term work
    /// happens. Returns `None` if the table contains a duplicate term or
    /// more than `u32::MAX` entries (both impossible for a table produced
    /// by a real interner, so they signal a corrupt snapshot).
    pub fn from_terms(terms: Vec<Term>) -> Option<Interner> {
        if terms.len() > TERM_CAPACITY {
            return None;
        }
        let mut ids = FxHashMap::default();
        ids.reserve(terms.len());
        let mut numeric = Vec::with_capacity(terms.len());
        for (i, term) in terms.iter().enumerate() {
            numeric.push(term.as_literal().and_then(|l| l.as_f64()));
            if ids.insert(term.clone(), TermId(i as u32)).is_some() {
                return None;
            }
        }
        Some(Interner {
            terms,
            ids,
            numeric,
        })
    }

    /// Looks up the id of a term without interning it.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term. Panics on a foreign id.
    #[inline]
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Cached numeric value of the literal behind `id`, if any.
    #[inline]
    pub fn numeric_value(&self, id: TermId) -> Option<f64> {
        self.numeric.get(id.index()).copied().flatten()
    }

    /// `true` if `id` resolves to a literal.
    #[inline]
    pub fn is_literal(&self, id: TermId) -> bool {
        self.resolve(id).is_literal()
    }

    /// `true` if `id` resolves to an IRI.
    #[inline]
    pub fn is_iri(&self, id: TermId) -> bool {
        self.resolve(id).is_iri()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Approximate heap footprint in bytes (used to report Virtual Schema
    /// Graph / store sizes in the Table 3 reproduction).
    pub fn heap_bytes(&self) -> usize {
        let term_bytes: usize = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Iri(s) | Term::BlankNode(s) => s.len(),
                Term::Literal(l) => {
                    l.lexical().len()
                        + l.datatype().map_or(0, str::len)
                        + l.language().map_or(0, str::len)
                }
            })
            .sum();
        term_bytes
            + self.terms.len() * std::mem::size_of::<Term>()
            + self.numeric.len() * std::mem::size_of::<Option<f64>>()
            + self.ids.capacity() * (std::mem::size_of::<Term>() + std::mem::size_of::<TermId>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern(Term::iri("http://ex/a"));
        let b = i.intern(Term::iri("http://ex/b"));
        let a2 = i.intern(Term::iri("http://ex/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let t = Term::from(Literal::tagged("Berlin", "de"));
        let id = i.intern(t.clone());
        assert_eq!(i.resolve(id), &t);
        assert_eq!(i.get(&t), Some(id));
        assert_eq!(i.get(&Term::iri("http://nope")), None);
    }

    #[test]
    fn numeric_cache_populated_at_intern_time() {
        let mut i = Interner::new();
        let n = i.intern(Term::from(Literal::integer(403)));
        let s = i.intern(Term::from(Literal::simple("403")));
        assert_eq!(i.numeric_value(n), Some(403.0));
        assert_eq!(i.numeric_value(s), None, "untyped literals are not numeric");
    }

    #[test]
    fn kind_predicates() {
        let mut i = Interner::new();
        let iri = i.intern(Term::iri("http://ex/a"));
        let lit = i.intern(Term::from(Literal::simple("x")));
        let blank = i.intern(Term::blank("b"));
        assert!(i.is_iri(iri) && !i.is_literal(iri));
        assert!(i.is_literal(lit) && !i.is_iri(lit));
        assert!(!i.is_iri(blank) && !i.is_literal(blank));
    }

    #[test]
    fn iter_in_interning_order() {
        let mut i = Interner::new();
        i.intern(Term::iri("http://ex/1"));
        i.intern(Term::iri("http://ex/2"));
        let ids: Vec<u32> = i.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn try_intern_matches_intern_and_overflow_is_reserved() {
        let mut i = Interner::new();
        let a = i.intern(Term::iri("http://ex/a"));
        assert_eq!(i.try_intern(Term::iri("http://ex/a")), Ok(a));
        let b = i.try_intern(Term::iri("http://ex/b")).expect("capacity");
        assert_ne!(a, b);
        // the sentinel can never be handed out: it sits at the reserved
        // index one past TERM_CAPACITY - 1
        assert_eq!(TermId::OVERFLOW.index(), TERM_CAPACITY);
        assert!(i.get(&Term::iri("http://ex/a")) != Some(TermId::OVERFLOW));
    }

    #[test]
    fn heap_bytes_grows_with_content() {
        let mut i = Interner::new();
        let before = i.heap_bytes();
        i.intern(Term::iri("http://example.org/some/rather/long/iri"));
        assert!(i.heap_bytes() > before);
    }
}
