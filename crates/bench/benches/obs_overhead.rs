//! Overhead of the observability layer (`re2x-obs`).
//!
//! Three claims are checked here:
//!
//! 1. A **disabled** tracer is free: opening spans and recording queries
//!    against it performs *zero heap allocations* (verified with a counting
//!    global allocator, not just timed).
//! 2. An event bus with **no subscriber** is free on the publish path:
//!    `publish`/`publish_with` perform zero heap allocations — the
//!    `publish_with` closure (which would allocate) must never even run.
//! 3. The per-span cost of an **enabled** tracer is bounded and visible —
//!    the timed comparison prints both so regressions stand out.

use re2x_bench::micro::Group;
use re2x_obs::{BusEvent, EventBus, QueryKind, Tracer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counts allocations so the disabled-path claim is checked exactly.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ITERS: u64 = 1_000_000;

fn disabled_workload(tracer: &Tracer) {
    for i in 0..ITERS {
        let _outer = tracer.span("bench.outer");
        let _inner = tracer.span("bench.inner");
        tracer.record_query(QueryKind::Select, Duration::from_micros(i % 64));
        tracer.record_cache(i % 2 == 0);
    }
}

fn main() {
    let disabled = Tracer::disabled();

    // Warm up thread-local state, then measure allocations across the
    // whole disabled workload. The assertion is the point of this bench:
    // tracing that is off must not allocate on the hot path.
    disabled_workload(&disabled);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    disabled_workload(&disabled);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "disabled tracer allocated {} times over {ITERS} iterations",
        after - before
    );
    println!("obs/disabled_no_alloc: 0 allocations across {ITERS} span+query+cache iterations ✓");

    // Claim 2: with zero subscribers the bus publish path is one atomic
    // load — no allocation, and the lazy closure is never invoked.
    let bus = EventBus::new();
    let ready = BusEvent::Counter {
        name: "bench.counter".to_owned(),
        delta: 1,
        at: Duration::ZERO,
    };
    let closure_ran = AtomicU64::new(0);
    bus.publish(&ready); // warm-up
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..ITERS {
        bus.publish(&ready);
        bus.publish_with(|at| {
            closure_ran.fetch_add(1, Ordering::Relaxed);
            // would allocate, proving laziness matters
            BusEvent::Counter {
                name: format!("bench.lazy.{i}"),
                delta: i,
                at,
            }
        });
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "zero-subscriber bus allocated {} times over {ITERS} iterations",
        after - before
    );
    assert_eq!(
        closure_ran.load(Ordering::SeqCst),
        0,
        "publish_with ran its closure with no subscriber attached"
    );
    println!("obs/bus_no_subscriber_no_alloc: 0 allocations, 0 closure runs across {ITERS} publish+publish_with iterations ✓");

    // sanity: the same closure runs (and allocates) once somebody listens
    let stream = bus.subscribe(16);
    bus.publish_with(|at| {
        closure_ran.fetch_add(1, Ordering::Relaxed);
        BusEvent::Counter {
            name: "bench.live".to_owned(),
            delta: 1,
            at,
        }
    });
    assert_eq!(closure_ran.load(Ordering::SeqCst), 1);
    assert_eq!(stream.poll().len(), 1);
    drop(stream);

    let group = Group::new("obs");
    group.bench("bus_publish_no_subscriber_1k", || {
        for _ in 0..1_000u64 {
            bus.publish(black_box(&ready));
        }
    });
    group.bench("disabled_span_pair_1k", || {
        for i in 0..1_000u64 {
            let _outer = disabled.span("bench.outer");
            let _inner = disabled.span("bench.inner");
            disabled.record_query(QueryKind::Select, Duration::from_micros(i % 64));
        }
    });
    group.bench_with_setup("enabled_span_pair_1k", Tracer::enabled, |tracer| {
        for i in 0..1_000u64 {
            let _outer = tracer.span("bench.outer");
            let _inner = tracer.span("bench.inner");
            tracer.record_query(QueryKind::Select, Duration::from_micros(i % 64));
        }
        black_box(tracer.events().len())
    });
    group.bench_with_setup(
        "enabled_events_export_1k",
        || {
            let tracer = Tracer::enabled();
            for _ in 0..500u64 {
                let _outer = tracer.span("bench.outer");
                let _inner = tracer.span("bench.inner");
            }
            tracer
        },
        |tracer| black_box(re2x_obs::events_to_jsonl(&tracer.events()).len()),
    );
}
