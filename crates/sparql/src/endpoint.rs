//! The SPARQL endpoint seam.
//!
//! RE²xOLAP interacts with the triplestore *only* through a standard SPARQL
//! interface (the paper runs against Virtuoso). [`SparqlEndpoint`] is that
//! seam; [`LocalEndpoint`] implements it over an in-memory [`Graph`] and
//! additionally records per-query statistics and can inject an artificial
//! per-query latency, which the experiment harness uses to reproduce the
//! paper's observations about endpoint performance dominating bootstrap and
//! refinement costs.
//!
//! Endpoints compose as a decorator stack: [`LocalEndpoint`] at the bottom,
//! [`crate::CachingEndpoint`] memoizing repeated queries above it, and — as
//! the architecture scales out — sharded/multi-backend decorators above
//! that. The trait therefore requires `Send + Sync`: every decorator and
//! backend must be shareable across the crawler's worker threads.

use crate::ast::Query;
use crate::error::SparqlError;
use crate::eval::{evaluate, evaluate_ask};
use crate::parser::parse_query;
use crate::value::Solutions;
use re2x_rdf::{Graph, TermId};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of latency buckets (powers of two of microseconds; the last
/// bucket is open-ended and absorbs everything ≥ 2^23 µs ≈ 8.4 s).
const LATENCY_BUCKETS: usize = 24;

/// A fixed-bucket latency histogram over power-of-two microsecond bounds.
///
/// Bucket `i` counts queries whose latency `d` satisfies
/// `2^i µs ≤ d < 2^(i+1) µs` (bucket 0 also absorbs sub-microsecond
/// latencies, the last bucket absorbs the long tail). Fixed buckets keep
/// the histogram `Copy` and mergeable, which is what lets it live inside
/// [`EndpointStats`] and travel through stats snapshots; quantiles are
/// resolved to a bucket's upper bound, i.e. conservatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.buckets[Self::bucket_of(latency)] += 1;
    }

    fn bucket_of(latency: Duration) -> usize {
        let micros = latency.as_micros().max(1) as u64;
        (63 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket in
    /// which it falls, or `None` if nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(Self::bucket_upper_bound(LATENCY_BUCKETS - 1))
    }

    /// Upper bound of bucket `i` (`2^(i+1)` µs).
    fn bucket_upper_bound(i: usize) -> Duration {
        Duration::from_micros(1u64 << (i + 1))
    }

    /// Median latency (upper bucket bound).
    pub fn p50(&self) -> Option<Duration> {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (upper bucket bound).
    pub fn p99(&self) -> Option<Duration> {
        self.quantile(0.99)
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Cumulative statistics of an endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EndpointStats {
    /// Number of `SELECT` queries answered.
    pub selects: u64,
    /// Number of `ASK` queries answered.
    pub asks: u64,
    /// Number of keyword-search calls answered.
    pub keyword_searches: u64,
    /// Total rows returned by `SELECT` queries.
    pub rows_returned: u64,
    /// Total evaluation time (including injected latency).
    pub busy: Duration,
    /// Queries answered from a cache decorator without reaching this
    /// endpoint (zero on an undecorated endpoint).
    pub cache_hits: u64,
    /// Queries that missed every cache decorator and were evaluated.
    pub cache_misses: u64,
    /// Cache entries evicted by the decorators' LRU bound.
    pub cache_evictions: u64,
    /// Per-query latency distribution (including injected latency).
    pub latency: LatencyHistogram,
}

impl EndpointStats {
    /// Total number of queries answered *by this endpoint* (cache hits in a
    /// decorator above it never reach it and are not included).
    pub fn total_queries(&self) -> u64 {
        self.selects + self.asks + self.keyword_searches
    }
}

/// A standard SPARQL query interface plus the full-text keyword lookup the
/// paper assumes of the triplestore.
///
/// `Send + Sync` is part of the contract: the parallel bootstrap crawler
/// and any future sharded decorator issue queries from multiple threads
/// against one shared endpoint reference.
pub trait SparqlEndpoint: Send + Sync {
    /// Answers a `SELECT` query.
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError>;

    /// Answers an `ASK` query (any query form is tested for non-emptiness).
    fn ask(&self, query: &Query) -> Result<bool, SparqlError>;

    /// Full-text keyword resolution: literal terms matching the keyword.
    /// With `exact`, the whole normalized lexical form must match; without,
    /// all tokens of the keyword must occur in the literal.
    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId>;

    /// Term-resolution surface for interpreting the [`TermId`]s inside
    /// returned [`Solutions`]. (A remote implementation would resolve ids
    /// from its response bindings; the seam keeps ids for efficiency.)
    fn graph(&self) -> &Graph;

    /// Snapshot of the endpoint's cumulative statistics. Decorators merge
    /// their own accounting (e.g. cache hit/miss counters) into the
    /// snapshot of the endpoint they wrap.
    fn stats(&self) -> EndpointStats;

    /// Resets the statistics (e.g. between experiment phases).
    fn reset_stats(&self);

    /// Parses and answers a `SELECT` query given as text.
    fn select_text(&self, text: &str) -> Result<Solutions, SparqlError> {
        self.select(&parse_query(text)?)
    }

    /// Parses and answers an `ASK` query given as text.
    fn ask_text(&self, text: &str) -> Result<bool, SparqlError> {
        self.ask(&parse_query(text)?)
    }
}

/// [`SparqlEndpoint`] over an in-memory graph with statistics and optional
/// injected latency.
#[derive(Debug)]
pub struct LocalEndpoint {
    graph: Graph,
    stats: Mutex<EndpointStats>,
    latency: Option<Duration>,
}

impl LocalEndpoint {
    /// Wraps a graph.
    pub fn new(graph: Graph) -> Self {
        LocalEndpoint {
            graph,
            stats: Mutex::new(EndpointStats::default()),
            latency: None,
        }
    }

    /// Adds a fixed artificial latency to every query (simulating a slower
    /// or remote endpoint).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> EndpointStats {
        *self.stats.lock().expect("stats mutex poisoned")
    }

    /// Resets the statistics (e.g. between experiment phases).
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("stats mutex poisoned") = EndpointStats::default();
    }

    /// Consumes the endpoint, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    fn pay_latency(&self) {
        if let Some(latency) = self.latency {
            std::thread::sleep(latency);
        }
    }
}

impl SparqlEndpoint for LocalEndpoint {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        let start = Instant::now();
        self.pay_latency();
        let result = evaluate(&self.graph, query);
        let elapsed = start.elapsed();
        let mut stats = self.stats.lock().expect("stats mutex poisoned");
        stats.selects += 1;
        stats.busy += elapsed;
        stats.latency.record(elapsed);
        if let Ok(solutions) = &result {
            stats.rows_returned += solutions.len() as u64;
        }
        result
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        let start = Instant::now();
        self.pay_latency();
        let result = evaluate_ask(&self.graph, query);
        let elapsed = start.elapsed();
        let mut stats = self.stats.lock().expect("stats mutex poisoned");
        stats.asks += 1;
        stats.busy += elapsed;
        stats.latency.record(elapsed);
        result
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        let start = Instant::now();
        self.pay_latency();
        let hits = if exact {
            self.graph.literals_matching_exact(keyword)
        } else {
            self.graph.literals_matching_keywords(keyword)
        };
        let elapsed = start.elapsed();
        let mut stats = self.stats.lock().expect("stats mutex poisoned");
        stats.keyword_searches += 1;
        stats.busy += elapsed;
        stats.latency.record(elapsed);
        hits
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn stats(&self) -> EndpointStats {
        LocalEndpoint::stats(self)
    }

    fn reset_stats(&self) {
        LocalEndpoint::reset_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;

    fn endpoint() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany ; ex:value 5 .
            ex:o2 ex:dest ex:France ; ex:value 7 .
            ex:Germany ex:label "Germany" .
            ex:France ex:label "France" .
            "#,
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    #[test]
    fn select_and_stats() {
        let ep = endpoint();
        let sols = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert_eq!(sols.len(), 2);
        let stats = ep.stats();
        assert_eq!(stats.selects, 1);
        assert_eq!(stats.rows_returned, 2);
        assert_eq!(stats.total_queries(), 1);
    }

    #[test]
    fn ask_via_text() {
        let ep = endpoint();
        assert!(ep
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
            .expect("ask"));
        assert!(!ep
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Spain> }")
            .expect("ask"));
        assert_eq!(ep.stats().asks, 2);
    }

    #[test]
    fn keyword_search_modes() {
        let ep = endpoint();
        assert_eq!(ep.keyword_search("germany", true).len(), 1);
        assert_eq!(ep.keyword_search("germany", false).len(), 1);
        assert!(ep.keyword_search("ger", true).is_empty());
        assert_eq!(ep.stats().keyword_searches, 3);
    }

    #[test]
    fn reset_stats_clears_counts() {
        let ep = endpoint();
        let _ = ep.keyword_search("germany", true);
        ep.reset_stats();
        assert_eq!(ep.stats(), EndpointStats::default());
    }

    #[test]
    fn latency_is_accounted_in_busy_time() {
        let ep = endpoint().with_latency(Duration::from_millis(5));
        let _ = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert!(ep.stats().busy >= Duration::from_millis(5));
    }

    #[test]
    fn endpoint_is_shareable_across_threads() {
        let ep = endpoint();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let _ = ep
                            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                            .expect("query");
                    }
                });
            }
        });
        let stats = ep.stats();
        assert_eq!(stats.selects, 100);
        assert_eq!(stats.rows_returned, 200);
        assert_eq!(stats.latency.count(), 100);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(3)); // bucket [2µs, 4µs)
        }
        h.record(Duration::from_millis(40)); // tail
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), Some(Duration::from_micros(4)));
        // the p99 rank (99 of 100) still falls in the 3µs bucket; the tail
        // observation is only reached beyond it
        assert_eq!(h.p99(), Some(Duration::from_micros(4)));
        assert!(h.quantile(1.0).expect("max") >= Duration::from_millis(40));
    }

    #[test]
    fn histogram_records_injected_latency() {
        let ep = endpoint().with_latency(Duration::from_millis(5));
        for _ in 0..4 {
            let _ = ep
                .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                .expect("query");
        }
        let p50 = ep.stats().latency.p50().expect("recorded");
        assert!(p50 >= Duration::from_millis(5), "{p50:?}");
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(10));
        b.record(Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }
}
