//! The multidimensional model of a statistical KG: dimensions, measures,
//! hierarchy levels (Section 3 of the paper).

/// Identifier of a dimension within a [`crate::VirtualSchemaGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimensionId(pub u32);

/// Identifier of a measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeasureId(pub u32);

/// Identifier of a hierarchy-level node of the Virtual Schema Graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LevelId(pub u32);

impl DimensionId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MeasureId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LevelId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dimension: identified by the predicate linking observations to its
/// base-level members (e.g. `Country of Origin`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// Id within the schema.
    pub id: DimensionId,
    /// The dimension predicate IRI.
    pub predicate: String,
    /// Human-readable label (from `rdfs:label` or the IRI local name).
    pub label: String,
}

/// A measure: a predicate linking observations to numeric values
/// (e.g. `Num Applicants`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measure {
    /// Id within the schema.
    pub id: MeasureId,
    /// The measure predicate IRI.
    pub predicate: String,
    /// Human-readable label.
    pub label: String,
}

/// A hierarchy level, identified by the predicate path that reaches its
/// members from an observation node.
///
/// The Virtual Schema Graph stores one node per *level*, never per member
/// — this is what keeps it orders of magnitude smaller than the data
/// (Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelNode {
    /// Id within the schema.
    pub id: LevelId,
    /// The dimension this level belongs to.
    pub dimension: DimensionId,
    /// Predicate IRIs from the observation node to this level's members.
    /// `path[0]` is the dimension predicate; later entries are roll-up
    /// predicates (e.g. `[Country_Origin, In_Continent]` for the continent
    /// level).
    pub path: Vec<String>,
    /// Number of distinct members observed at this level during bootstrap.
    pub member_count: usize,
    /// Predicates assigning literal attributes to members of this level
    /// (e.g. `hasLabel`).
    pub attribute_predicates: Vec<String>,
    /// Human-readable label (derived from the last path predicate).
    pub label: String,
}

impl LevelNode {
    /// Depth below the observation root (base levels have depth 1).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The final predicate of the path (the one whose objects are this
    /// level's members).
    pub fn last_predicate(&self) -> &str {
        // Level paths are non-empty by construction (vgraph asserts it);
        // the empty string is a harmless answer if one ever were.
        self.path.last().map_or("", String::as_str)
    }

    /// `true` if this level's path is a proper prefix of `other`'s, i.e.
    /// `other` aggregates this level's members at a coarser granularity.
    pub fn is_ancestor_of(&self, other: &LevelNode) -> bool {
        other.path.len() > self.path.len() && other.path[..self.path.len()] == self.path[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(id: u32, path: &[&str]) -> LevelNode {
        LevelNode {
            id: LevelId(id),
            dimension: DimensionId(0),
            path: path.iter().map(|s| (*s).to_owned()).collect(),
            member_count: 0,
            attribute_predicates: Vec::new(),
            label: String::new(),
        }
    }

    #[test]
    fn depth_and_last_predicate() {
        let l = level(0, &["http://ex/origin", "http://ex/inContinent"]);
        assert_eq!(l.depth(), 2);
        assert_eq!(l.last_predicate(), "http://ex/inContinent");
    }

    #[test]
    fn ancestor_relation_is_path_prefix() {
        let country = level(0, &["http://ex/origin"]);
        let continent = level(1, &["http://ex/origin", "http://ex/inContinent"]);
        let dest = level(2, &["http://ex/dest"]);
        assert!(country.is_ancestor_of(&continent));
        assert!(!continent.is_ancestor_of(&country));
        assert!(!country.is_ancestor_of(&dest));
        assert!(!country.is_ancestor_of(&country));
    }
}
