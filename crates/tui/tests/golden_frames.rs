//! Golden-frame tests: a hand-scripted, fully deterministic event log is
//! rendered through the replay pipeline and pinned byte-for-byte against
//! committed fixtures. Regenerate with `RE2X_UPDATE_GOLDENS=1 cargo test
//! -p re2x-tui` after an intentional layout change.

use re2x_obs::{bus_events_to_jsonl, parse_bus_events, BusEvent, QueryKind, TraceEvent};
use re2x_tui::{render_script, render_with, DashboardState, RenderOptions};
use std::path::Path;
use std::time::Duration;

const SESSION_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/watch_session.jsonl"
);
const FRAMES_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/watch_frames.golden.txt"
);

/// The goldens replay at the default cadence ([`re2x_tui::FRAME_INTERVAL`],
/// 250ms) — the same invocation `repro watch --headless` uses.
const SCRIPT_INTERVAL: Duration = re2x_tui::FRAME_INTERVAL;

fn us(micros: u64) -> Duration {
    Duration::from_micros(micros)
}

/// Event-time offset: the scripted session spans ~900ms so the default
/// 250ms cadence produces several frames.
fn at(micros: u64) -> Duration {
    Duration::from_micros(micros * 300)
}

/// A deterministic synthetic session exercising every dashboard section:
/// nested spans, all three query kinds, cache hits/misses/evictions,
/// two tenants' serve metrics, and the shard panel.
fn scripted_events() -> Vec<BusEvent> {
    let enter = |span, parent, path: &str, name: &str, at| {
        BusEvent::Trace(TraceEvent::Enter {
            span,
            parent,
            path: path.to_owned(),
            name: name.to_owned(),
            thread: 0,
            at,
            fields: Vec::new(),
        })
    };
    let exit = |span, path: &str, at, wall, self_time| {
        BusEvent::Trace(TraceEvent::Exit {
            span,
            path: path.to_owned(),
            thread: 0,
            at,
            wall,
            self_time,
        })
    };
    let query = |path: &str, kind, at, latency| {
        BusEvent::Trace(TraceEvent::Query {
            path: path.to_owned(),
            kind,
            thread: 0,
            at,
            latency,
        })
    };
    let cache = |path: &str, hit, at| {
        BusEvent::Trace(TraceEvent::Cache {
            path: path.to_owned(),
            hit,
            thread: 0,
            at,
        })
    };
    let counter = |name: &str, delta, at| BusEvent::Counter {
        name: name.to_owned(),
        delta,
        at,
    };

    vec![
        enter(1, None, "session", "session", at(100)),
        enter(2, Some(1), "session/discover", "discover", at(200)),
        query("session/discover", QueryKind::Select, at(900), us(650)),
        cache("session/discover", false, at(950)),
        counter("cache.evictions", 1, at(960)),
        exit(2, "session/discover", at(1_200), us(1_000), us(1_000)),
        enter(3, Some(1), "session/expand", "expand", at(1_300)),
        query("session/expand", QueryKind::Keyword, at(1_900), us(400)),
        cache("session/expand", true, at(2_000)),
        exit(3, "session/expand", at(2_100), us(800), us(800)),
        counter("serve.sessions_admitted{tenant=\"adhoc\"}", 2, at(2_200)),
        counter(
            "serve.rounds{tenant=\"adhoc\",phase=\"execute\"}",
            3,
            at(2_300),
        ),
        BusEvent::Gauge {
            name: "serve.sessions_active{tenant=\"adhoc\"}".to_owned(),
            value: 1.0,
            at: at(2_400),
        },
        BusEvent::Observe {
            name: "serve.queue_wait{tenant=\"adhoc\"}".to_owned(),
            latency: us(120),
            at: at(2_500),
        },
        BusEvent::Observe {
            name: "serve.round_latency{tenant=\"adhoc\"}".to_owned(),
            latency: us(2_000),
            at: at(2_600),
        },
        counter("serve.sessions_admitted{tenant=\"batch\"}", 1, at(2_700)),
        counter(
            "serve.sessions_budget_exhausted{tenant=\"batch\"}",
            1,
            at(2_750),
        ),
        BusEvent::Gauge {
            name: "shard_skew".to_owned(),
            value: 1.18,
            at: at(2_800),
        },
        counter("sharded_scatter_queries", 5, at(2_850)),
        counter("sharded_fallback_queries", 1, at(2_900)),
        query("session", QueryKind::Ask, at(2_950), us(50)),
        exit(1, "session", at(3_000), us(2_900), us(1_100)),
    ]
}

fn check_golden(path: &str, actual: &str) {
    if std::env::var_os("RE2X_UPDATE_GOLDENS").is_some() {
        std::fs::write(path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden {path} ({e}); regenerate with RE2X_UPDATE_GOLDENS=1")
    });
    assert_eq!(
        actual,
        expected,
        "golden mismatch for {}; regenerate with RE2X_UPDATE_GOLDENS=1 if intentional",
        Path::new(path)
            .file_name()
            .map_or(path, |f| f.to_str().unwrap_or(path)),
    );
}

#[test]
fn scripted_session_fixture_is_pinned() {
    check_golden(SESSION_FIXTURE, &bus_events_to_jsonl(&scripted_events()));
}

#[test]
fn scripted_replay_matches_the_golden_script() {
    let script = render_script(
        &scripted_events(),
        SCRIPT_INTERVAL,
        RenderOptions::default(),
    );
    check_golden(FRAMES_GOLDEN, &script);
}

#[test]
fn replaying_the_jsonl_fixture_reproduces_the_golden_script() {
    // The exact path `repro watch --headless` takes: read JSONL from disk,
    // parse, replay — no live tracer involved.
    // In regeneration mode don't race the test that writes the fixture —
    // produce the identical bytes in memory instead.
    let jsonl = if std::env::var_os("RE2X_UPDATE_GOLDENS").is_some() {
        bus_events_to_jsonl(&scripted_events())
    } else {
        std::fs::read_to_string(SESSION_FIXTURE).expect("fixture exists")
    };
    let events = parse_bus_events(&jsonl).expect("fixture parses");
    assert_eq!(events, scripted_events(), "fixture drifted from script");
    let script = render_script(&events, SCRIPT_INTERVAL, RenderOptions::default());
    check_golden(FRAMES_GOLDEN, &script);
}

#[test]
fn final_frame_is_invariant_under_chunked_application() {
    // Property: folding the log in arbitrary batch sizes (as a live
    // subscriber would, polling at unpredictable times) renders the same
    // final frame as one-shot application. Runs under seeded RE2X_TEST_SEED
    // variation, so it also proves the golden does not depend on the seed.
    let events = scripted_events();
    let mut reference = DashboardState::new();
    reference.apply_all(&events);
    let reference_frame = render_with(&reference, RenderOptions::default());

    re2x_testkit::check("tui.chunked_apply_invariance", |rng| {
        let mut state = DashboardState::new();
        let mut rest = events.as_slice();
        while !rest.is_empty() {
            let take = rng.gen_range(1..rest.len() + 1);
            state.apply_all(&rest[..take]);
            rest = &rest[take..];
        }
        let frame = render_with(&state, RenderOptions::default());
        assert_eq!(frame, reference_frame);
        assert_eq!(frame.to_plain(), reference_frame.to_plain());
    });
}
