//! `lock-order`: a real deadlock detector for the workspace's lock stack.
//!
//! Four cooperating checks:
//!
//! 1. **Registry** — every `Mutex<…>` / `RwLock<…>` field must be declared
//!    in the lock registry with a `// lock-order: <name>` annotation on
//!    (or directly above) the field. Unregistered locks are findings: a
//!    lock nobody named is a lock nobody ordered.
//! 2. **Declared edges** — `// lock-order: A -> B` declares that nesting
//!    B under A is an intended, reviewed order. Declared edges exempt the
//!    `guard-across-wait` dataflow rule and join cycle detection (so a
//!    *declared* deadlock is still a finding); the runtime witness checks
//!    observed nesting against this same graph.
//! 3. **Acquisition extraction** — every `.lock()` / `.read()` /
//!    `.write()` on a registered field (including through the
//!    poison-tolerant `lock_or_recover("name", &…)` helper) is resolved
//!    to its lock name; a name *literal* that disagrees with the field's
//!    registered name is a finding (the witness would record edges under
//!    the wrong name). Guard lifetimes are tracked lexically: a
//!    `let`-bound guard is held until its enclosing block closes or an
//!    explicit `drop(guard)`, an unbound temporary until the end of its
//!    statement.
//! 4. **Nested-acquisition graph** — acquiring lock B while holding lock A
//!    adds the edge A → B. The engine unions edges across the workspace
//!    and fails on any cycle (including A → A re-acquisition, which
//!    self-deadlocks on a non-reentrant `std::sync::Mutex`).
//!
//! The analysis is intra-function and lexical: it cannot see a nesting
//! that spans a call boundary. The workspace convention backing that
//! limitation — no function calls out of the crate while holding a lock;
//! the decorator stack drops its guard before invoking the inner endpoint
//! (see `CachingEndpoint::select`) — is enforced by the scope-aware
//! `no-calls-under-lock` rule, and the runtime lock witness
//! (`re2x_obs::sync`, `RE2X_LOCK_WITNESS=1`) validates the whole static
//! graph against the nesting real threads actually perform.

use super::significant;
use crate::findings::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// A named lock declared in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockRegistration {
    /// Declared name (`sparql.cache.state`).
    pub name: String,
    /// The annotated field identifier (`state`).
    pub field: String,
    /// File of the declaration.
    pub file: String,
    /// Line of the field.
    pub line: u32,
}

/// One `A → B` nested acquisition: lock `to` acquired while `from` held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The held lock.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// Site of the inner acquisition.
    pub file: String,
    /// Line of the inner acquisition.
    pub line: u32,
}

/// Everything the rule extracts from one file.
#[derive(Debug, Default)]
pub struct FileLocks {
    /// Locks registered in this file.
    pub registrations: Vec<LockRegistration>,
    /// Nested acquisitions observed in this file.
    pub edges: Vec<LockEdge>,
    /// Nesting orders declared in this file (`// lock-order: A -> B`).
    pub declared: Vec<LockEdge>,
    /// Per-file findings (unregistered locks, dangling annotations).
    pub findings: Vec<Finding>,
}

/// Runs registry extraction and nesting analysis over one file.
pub fn analyze(file: &SourceFile) -> FileLocks {
    let mut out = FileLocks::default();
    let registrations = extract_registry(file, &mut out.findings, &mut out.declared);
    let field_to_name: Vec<(&str, &str)> = registrations
        .iter()
        .map(|r| (r.field.as_str(), r.name.as_str()))
        .collect();
    extract_edges(file, &field_to_name, &mut out.edges, &mut out.findings);
    out.registrations = registrations;
    out
}

/// Parses `// lock-order: name` comments and pairs each with the lock
/// field on the same or the directly following line. Flags `Mutex`/`RwLock`
/// fields that have no annotation. `// lock-order: A -> B` comments are
/// declared nesting edges, not registrations.
fn extract_registry(
    file: &SourceFile,
    findings: &mut Vec<Finding>,
    declared: &mut Vec<LockEdge>,
) -> Vec<LockRegistration> {
    let text = &file.text;
    // (line, name) of each annotation comment
    let mut annotations: Vec<(u32, String)> = Vec::new();
    for t in &file.tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        // Only a plain comment *starting with* the directive registers a
        // lock; doc-comment prose about the syntax does not.
        let Some(body) = crate::source::plain_comment_body(t.text(text)) else {
            continue;
        };
        if let Some(rest) = body.strip_prefix("lock-order:") {
            if let Some((from, to)) = rest.split_once("->") {
                let from = from.trim();
                let to = to.split_whitespace().next().unwrap_or("");
                if from.is_empty() || to.is_empty() {
                    findings.push(Finding {
                        rule: "lock-order",
                        file: file.path.clone(),
                        line: t.line,
                        snippet: file.line_snippet(t.line),
                        message: "declared `lock-order:` edge needs both lock names (`A -> B`)"
                            .to_owned(),
                    });
                } else {
                    declared.push(LockEdge {
                        from: from.to_owned(),
                        to: to.to_owned(),
                        file: file.path.clone(),
                        line: t.line,
                    });
                }
                continue;
            }
            let name = rest.split_whitespace().next().unwrap_or("").to_owned();
            if name.is_empty() {
                findings.push(Finding {
                    rule: "lock-order",
                    file: file.path.clone(),
                    line: t.line,
                    snippet: file.line_snippet(t.line),
                    message: "`lock-order:` annotation without a lock name".to_owned(),
                });
            } else {
                annotations.push((t.line, name));
            }
        }
    }

    let toks = significant(file);
    let mut registrations = Vec::new();
    let mut used_annotations = vec![false; annotations.len()];
    for (i, decl_line, field) in lock_field_decls(&toks, text) {
        if file.in_test_region(toks[i].start) {
            continue;
        }
        // annotation on the field's line or the line directly above
        let annotation = annotations
            .iter()
            .position(|(line, _)| *line == decl_line || *line + 1 == decl_line);
        match annotation {
            Some(idx) => {
                used_annotations[idx] = true;
                registrations.push(LockRegistration {
                    name: annotations[idx].1.clone(),
                    field: field.to_owned(),
                    file: file.path.clone(),
                    line: decl_line,
                });
            }
            None => findings.push(Finding {
                rule: "lock-order",
                file: file.path.clone(),
                line: decl_line,
                snippet: file.line_snippet(decl_line),
                message: format!(
                    "lock field `{field}` is not in the registry; add `// lock-order: <name>`"
                ),
            }),
        }
    }
    for (idx, used) in used_annotations.iter().enumerate() {
        if !used {
            let (line, name) = &annotations[idx];
            findings.push(Finding {
                rule: "lock-order",
                file: file.path.clone(),
                line: *line,
                snippet: file.line_snippet(*line),
                message: format!("`lock-order: {name}` annotation matches no lock field"),
            });
        }
    }
    registrations
}

/// Yields `(token_index, line, field_name)` for every field-like
/// declaration `field: [path::]Mutex<…>` / `RwLock<…>`. Reference types
/// (`&Mutex<…>`, i.e. borrowed parameters) and wrapped locks inside other
/// generics are deliberately not treated as declarations.
fn lock_field_decls<'s>(toks: &[Token], text: &'s str) -> Vec<(usize, u32, &'s str)> {
    let mut decls = Vec::new();
    for i in 0..toks.len() {
        let word = toks[i].text(text);
        if word != "Mutex" && word != "RwLock" {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text(text)) != Some("<") {
            continue; // `Mutex::new(…)`, `use std::sync::Mutex`, …
        }
        // Walk back over a path prefix (`std :: sync ::`) to the `:`.
        let mut j = i;
        while j >= 2
            && toks[j - 1].text(text) == ":"
            && toks[j - 2].text(text) == ":"
            && j >= 3
            && toks[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        if j < 2 || toks[j - 1].text(text) != ":" || toks[j - 2].kind != TokenKind::Ident {
            continue; // not `field: Mutex<…>` (e.g. a bare expression)
        }
        // `: :` would mean we stopped inside a path; `&` means a borrow.
        if j >= 3 && matches!(toks[j - 3].text(text), ":" | "&") {
            continue;
        }
        let field_tok = &toks[j - 2];
        decls.push((i, field_tok.line, field_tok.text(text)));
    }
    decls
}

#[derive(Debug)]
struct Held {
    name: String,
    var: Option<String>,
    depth: usize,
}

/// Scans the file linearly, tracking brace depth and held guards, and
/// records an edge for every acquisition made while another registered
/// lock is held. Also cross-checks the witness name literal passed to
/// `lock_or_recover("name", …)` against the field's registered name.
fn extract_edges(
    file: &SourceFile,
    field_to_name: &[(&str, &str)],
    edges: &mut Vec<LockEdge>,
    findings: &mut Vec<Finding>,
) {
    let toks = significant(file);
    let text = &file.text;
    let resolve = |field: &str| -> Option<&str> {
        field_to_name
            .iter()
            .find(|(f, _)| *f == field)
            .map(|(_, n)| *n)
    };

    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let word = toks[i].text(text);
        match word {
            "{" => depth += 1,
            "}" => {
                held.retain(|h| h.depth < depth);
                depth = depth.saturating_sub(1);
            }
            ";" => {
                // unbound temporaries die at their statement's end
                held.retain(|h| h.var.is_some() || h.depth != depth);
            }
            // drop ( var )
            "drop"
                if toks.get(i + 1).map(|t| t.text(text)) == Some("(")
                    && toks.get(i + 3).map(|t| t.text(text)) == Some(")") =>
            {
                if let Some(var_tok) = toks.get(i + 2) {
                    let var = var_tok.text(text);
                    held.retain(|h| h.var.as_deref() != Some(var));
                }
            }
            _ => {}
        }

        if let Some((lock_name, site)) = acquisition_at(&toks, text, i, &resolve) {
            if !file.in_test_region(toks[i].start) {
                // `lock_or_recover("name", …)`: the runtime witness
                // records edges under the literal — it must match the
                // registry or the static/dynamic cross-check drifts.
                if word == "lock_or_recover" {
                    if let Some(lit_tok) = toks.get(i + 2).filter(|t| t.kind == TokenKind::Str) {
                        let literal = lit_tok.text(text).trim_matches('"');
                        if literal != lock_name {
                            findings.push(Finding {
                                rule: "lock-order",
                                file: file.path.clone(),
                                line: site,
                                snippet: file.line_snippet(site),
                                message: format!(
                                    "witness name literal \"{literal}\" disagrees with the \
                                     registered name `{lock_name}` of this field"
                                ),
                            });
                        }
                    }
                }
                for h in &held {
                    edges.push(LockEdge {
                        from: h.name.clone(),
                        to: lock_name.to_owned(),
                        file: file.path.clone(),
                        line: site,
                    });
                }
                held.push(Held {
                    name: lock_name.to_owned(),
                    var: binding_var(&toks, text, i),
                    depth,
                });
            }
        }
        i += 1;
    }
}

/// If token `i` starts an acquisition, returns the lock name and line.
///
/// Recognized shapes (with `field` registered):
///   `. field . lock|read|write (`
///   `lock_or_recover ( & … field )` (the poison-tolerant helper)
fn acquisition_at<'a>(
    toks: &[Token],
    text: &'a str,
    i: usize,
    resolve: &dyn Fn(&str) -> Option<&'a str>,
) -> Option<(&'a str, u32)> {
    let word = toks[i].text(text);
    if matches!(word, "lock" | "read" | "write")
        && i >= 2
        && toks[i - 1].text(text) == "."
        && toks[i - 2].kind == TokenKind::Ident
        && toks.get(i + 1).map(|t| t.text(text)) == Some("(")
    {
        let field = toks[i - 2].text(text);
        return resolve(field).map(|name| (name, toks[i].line));
    }
    if word == "lock_or_recover" && toks.get(i + 1).map(|t| t.text(text)) == Some("(") {
        // the last identifier before the closing paren names the field
        let mut j = i + 2;
        let mut last_ident: Option<&str> = None;
        let mut depth = 1usize;
        while let Some(t) = toks.get(j) {
            match t.text(text) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                w if t.kind == TokenKind::Ident => last_ident = Some(w),
                _ => {}
            }
            j += 1;
        }
        if let Some(field) = last_ident {
            return resolve(field).map(|name| (name, toks[i].line));
        }
    }
    None
}

/// Walks back from an acquisition to the start of its statement looking
/// for `let [mut] var =`; returns the bound variable name if found.
fn binding_var(toks: &[Token], text: &str, i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text(text) {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut k = j + 1;
                if toks.get(k).map(|t| t.text(text)) == Some("mut") {
                    k += 1;
                }
                let var = toks.get(k)?;
                if var.kind == TokenKind::Ident
                    && toks.get(k + 1).map(|t| t.text(text)) == Some("=")
                {
                    return Some(var.text(text).to_owned());
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// A cycle found in the workspace lock graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockCycle {
    /// The lock names along the cycle, first == last.
    pub path: Vec<String>,
    /// One edge site on the cycle, for the finding's location.
    pub site: (String, u32),
}

/// Unions per-file edges and returns every elementary cycle class found
/// (one per back edge in a DFS), or an empty vector for an acyclic graph.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    let mut nodes: Vec<&str> = Vec::new();
    for e in edges {
        if !nodes.contains(&e.from.as_str()) {
            nodes.push(&e.from);
        }
        if !nodes.contains(&e.to.as_str()) {
            nodes.push(&e.to);
        }
    }
    nodes.sort_unstable();

    let mut cycles = Vec::new();
    // DFS with an explicit color map; a back edge to a grey node closes a
    // cycle, reconstructed from the current stack.
    let mut color: Vec<u8> = vec![0; nodes.len()]; // 0 white, 1 grey, 2 black

    fn dfs(
        u: usize,
        nodes: &[&str],
        edges: &[LockEdge],
        color: &mut [u8],
        stack: &mut Vec<usize>,
        cycles: &mut Vec<LockCycle>,
    ) {
        color[u] = 1;
        stack.push(u);
        for e in edges {
            if e.from != nodes[u] {
                continue;
            }
            let Some(v) = nodes.iter().position(|x| *x == e.to) else {
                continue;
            };
            match color[v] {
                0 => dfs(v, nodes, edges, color, stack, cycles),
                1 => {
                    let from = stack
                        .iter()
                        .position(|&s| s == v)
                        .unwrap_or(stack.len() - 1);
                    let mut path: Vec<String> =
                        stack[from..].iter().map(|&s| nodes[s].to_owned()).collect();
                    path.push(nodes[v].to_owned());
                    cycles.push(LockCycle {
                        path,
                        site: (e.file.clone(), e.line),
                    });
                }
                _ => {}
            }
        }
        stack.pop();
        color[u] = 2;
    }

    for n in 0..nodes.len() {
        if color[n] == 0 {
            let mut stack = Vec::new();
            dfs(n, &nodes, edges, &mut color, &mut stack, &mut cycles);
        }
    }
    cycles
}

/// Checks registrations for duplicate names (two fields registered under
/// one name would merge unrelated locks in the graph).
pub fn duplicate_name_findings(registrations: &[LockRegistration]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, r) in registrations.iter().enumerate() {
        if registrations[..i].iter().any(|p| p.name == r.name) {
            findings.push(Finding {
                rule: "lock-order",
                file: r.file.clone(),
                line: r.line,
                snippet: format!("lock-order: {}", r.name),
                message: format!("duplicate lock registration `{}`", r.name),
            });
        }
    }
    findings
}
