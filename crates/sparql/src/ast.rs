//! Abstract syntax tree for the SPARQL subset.
//!
//! The subset is exactly what RE²xOLAP emits and consumes (see Figure 2 of
//! the paper): `SELECT`/`ASK` forms, basic graph patterns whose predicates
//! may be *sequence property paths* (`<p1> / <p2>`), `FILTER`s, `GROUP BY`
//! with the standard aggregates, `HAVING`, `ORDER BY`, `DISTINCT`,
//! `LIMIT`/`OFFSET`.

use re2x_rdf::Literal;
use std::fmt;

/// A term position in a triple pattern: variable, IRI, or literal.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    /// `?name` (stored without the `?`).
    Var(String),
    /// `<iri>`.
    Iri(String),
    /// A literal constant.
    Literal(Literal),
}

impl TermPattern {
    /// Variable name if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// The predicate position of a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// A non-empty sequence path of IRIs: `<p1> / <p2> / …`. A plain IRI
    /// predicate is a one-element path.
    Path(Vec<String>),
    /// A predicate variable `?p` (used by the schema-discovery crawler).
    Var(String),
}

impl Predicate {
    /// The path if this is a (possibly one-element) IRI path.
    pub fn as_path(&self) -> Option<&[String]> {
        match self {
            Predicate::Path(p) => Some(p),
            Predicate::Var(_) => None,
        }
    }

    /// The variable name if the predicate is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Predicate::Var(v) => Some(v),
            Predicate::Path(_) => None,
        }
    }
}

/// A triple pattern whose predicate is either a sequence path of IRIs or a
/// variable.
///
/// `?obs <Country_Origin> / <In_Continent> ?origin` has a two-element path;
/// a plain triple pattern has a one-element path.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Subject position.
    pub subject: TermPattern,
    /// Predicate position.
    pub predicate: Predicate,
    /// Object position.
    pub object: TermPattern,
}

impl TriplePattern {
    /// A single-predicate pattern.
    pub fn new(subject: TermPattern, predicate: impl Into<String>, object: TermPattern) -> Self {
        TriplePattern {
            subject,
            predicate: Predicate::Path(vec![predicate.into()]),
            object,
        }
    }

    /// A sequence-path pattern.
    pub fn with_path(subject: TermPattern, path: Vec<String>, object: TermPattern) -> Self {
        assert!(!path.is_empty(), "property path must be non-empty");
        TriplePattern {
            subject,
            predicate: Predicate::Path(path),
            object,
        }
    }

    /// A pattern with a predicate variable.
    pub fn with_pred_var(
        subject: TermPattern,
        predicate: impl Into<String>,
        object: TermPattern,
    ) -> Self {
        TriplePattern {
            subject,
            predicate: Predicate::Var(predicate.into()),
            object,
        }
    }
}

/// One element of a `WHERE` block.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    /// A (possibly path-)triple pattern.
    Triple(TriplePattern),
    /// A `FILTER (expr)` constraint.
    Filter(Expr),
    /// An `OPTIONAL { … }` block (left join).
    Optional(Vec<PatternElement>),
    /// A `{ … } UNION { … }` alternation (two or more branches).
    Union(Vec<Vec<PatternElement>>),
}

/// Aggregate functions supported in `SELECT` and `HAVING`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM`.
    Sum,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `AVG`.
    Avg,
    /// `COUNT`.
    Count,
    /// `COUNT(DISTINCT …)`.
    CountDistinct,
    /// Internal: count of bindings that are *numeric* (the denominator of
    /// `AVG`). Not parseable from query text and not part of
    /// [`AggFunc::ALL`]; the sharded merge planner emits it to recombine
    /// `AVG` as `SUM / COUNT_NUMERIC` across partial results.
    CountNumeric,
}

impl AggFunc {
    /// All aggregate functions, in the order the paper lists them
    /// (max, min, avg, sum) plus count.
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Max,
        AggFunc::Min,
        AggFunc::Avg,
        AggFunc::Sum,
        AggFunc::Count,
    ];

    /// The four numeric aggregation functions the paper instantiates for
    /// every measure ("max, min, avg, sum").
    pub const NUMERIC: [AggFunc; 4] = [AggFunc::Max, AggFunc::Min, AggFunc::Avg, AggFunc::Sum];

    /// Upper-case SPARQL keyword (`COUNT(DISTINCT …)` renders its DISTINCT
    /// inside the parentheses — see the query printer).
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
            AggFunc::Count | AggFunc::CountDistinct => "COUNT",
            AggFunc::CountNumeric => "COUNT_NUMERIC",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// SPARQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithOp {
    /// SPARQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `STR(term)` — lexical/IRI string form.
    Str,
    /// `LCASE(str)`.
    LCase,
    /// `CONTAINS(haystack, needle)`.
    Contains,
    /// `BOUND(?var)`.
    Bound,
    /// `ABS(num)`.
    Abs,
    /// `isIRI(term)`.
    IsIri,
    /// `isLiteral(term)`.
    IsLiteral,
    /// `isNumeric(term)`.
    IsNumeric,
}

impl Func {
    /// SPARQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            Func::Str => "STR",
            Func::LCase => "LCASE",
            Func::Contains => "CONTAINS",
            Func::Bound => "BOUND",
            Func::Abs => "ABS",
            Func::IsIri => "isIRI",
            Func::IsLiteral => "isLiteral",
            Func::IsNumeric => "isNumeric",
        }
    }
}

/// Expressions used in `FILTER` and `HAVING`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// IRI constant.
    Iri(String),
    /// Literal constant.
    Literal(Literal),
    /// Bare numeric constant.
    Number(f64),
    /// Boolean constant.
    Bool(bool),
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// `expr IN (e1, e2, …)`.
    In(Box<Expr>, Vec<Expr>),
    /// Built-in function call.
    Call(Func, Vec<Expr>),
    /// Aggregate call — legal only in `SELECT` items and `HAVING`.
    Agg(AggFunc, Box<Expr>),
}

impl Expr {
    /// Convenience: `left op right` comparison.
    pub fn cmp(left: Expr, op: CmpOp, right: Expr) -> Expr {
        Expr::Cmp(Box::new(left), op, Box::new(right))
    }

    /// Convenience: variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: conjunction of a non-empty list.
    pub fn and_all(mut exprs: Vec<Expr>) -> Option<Expr> {
        let mut acc = exprs.pop()?;
        while let Some(e) = exprs.pop() {
            acc = Expr::And(Box::new(e), Box::new(acc));
        }
        Some(acc)
    }

    /// Collects the variables mentioned anywhere in the expression.
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Iri(_) | Expr::Literal(_) | Expr::Number(_) | Expr::Bool(_) => {}
            Expr::Not(e) | Expr::Agg(_, e) => e.variables(out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::In(e, list) => {
                e.variables(out);
                for item in list {
                    item.variables(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }

    /// `true` if the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Agg(..) => true,
            Expr::Var(_) | Expr::Iri(_) | Expr::Literal(_) | Expr::Number(_) | Expr::Bool(_) => {
                false
            }
            Expr::Not(e) => e.has_aggregate(),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            Expr::In(e, list) => e.has_aggregate() || list.iter().any(Expr::has_aggregate),
            Expr::Call(_, args) => args.iter().any(Expr::has_aggregate),
        }
    }
}

/// One projected column of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain variable.
    Var(String),
    /// `(AGG(?expr) AS ?alias)` — `alias` names the output column.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated expression (usually a variable).
        expr: Expr,
        /// Output column name (without `?`).
        alias: String,
    },
}

impl SelectItem {
    /// The output column name of this item.
    pub fn name(&self) -> &str {
        match self {
            SelectItem::Var(v) => v,
            SelectItem::Agg { alias, .. } => alias,
        }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// `ASC` (default).
    Asc,
    /// `DESC`.
    Desc,
}

/// A sort key: a projected column name and a direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Projected column name (a plain variable or an aggregate alias).
    pub column: String,
    /// Direction.
    pub order: Order,
}

/// Query form: result rows or a boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryForm {
    /// `SELECT`.
    Select,
    /// `ASK` — true iff the pattern has at least one solution.
    Ask,
}

/// A parsed/constructed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT` vs `ASK`.
    pub form: QueryForm,
    /// Projection; empty means `SELECT *`.
    pub select: Vec<SelectItem>,
    /// `DISTINCT` modifier.
    pub distinct: bool,
    /// `WHERE` block contents.
    pub wher: Vec<PatternElement>,
    /// `GROUP BY` variables.
    pub group_by: Vec<String>,
    /// `HAVING` constraint (may reference aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

impl Query {
    /// An empty `SELECT *` query over the given pattern elements.
    pub fn select_all(wher: Vec<PatternElement>) -> Self {
        Query {
            form: QueryForm::Select,
            select: Vec::new(),
            distinct: false,
            wher,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// An `ASK` query over the given pattern elements.
    pub fn ask(wher: Vec<PatternElement>) -> Self {
        Query {
            form: QueryForm::Ask,
            ..Query::select_all(wher)
        }
    }

    /// `true` if the query aggregates (has a GROUP BY or an aggregate in
    /// the projection).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .select
                .iter()
                .any(|i| matches!(i, SelectItem::Agg { .. }))
    }

    /// Triple patterns of the WHERE block, including those nested inside
    /// `OPTIONAL` and `UNION`, in textual order.
    pub fn triple_patterns(&self) -> impl Iterator<Item = &TriplePattern> {
        fn collect<'a>(elements: &'a [PatternElement], out: &mut Vec<&'a TriplePattern>) {
            for e in elements {
                match e {
                    PatternElement::Triple(t) => out.push(t),
                    PatternElement::Filter(_) => {}
                    PatternElement::Optional(inner) => collect(inner, out),
                    PatternElement::Union(branches) => {
                        for branch in branches {
                            collect(branch, out);
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        collect(&self.wher, &mut out);
        out.into_iter()
    }

    /// Filter expressions of the WHERE block (top level only; filters
    /// inside `OPTIONAL`/`UNION` are scoped to their block).
    pub fn filters(&self) -> impl Iterator<Item = &Expr> {
        self.wher.iter().filter_map(|e| match e {
            PatternElement::Filter(f) => Some(f),
            _ => None,
        })
    }

    /// All variables appearing in triple patterns (nested blocks
    /// included), in first-seen order.
    pub fn pattern_variables(&self) -> Vec<String> {
        let mut vars = Vec::new();
        let mut push = |v: &str| {
            if !vars.iter().any(|x: &String| x == v) {
                vars.push(v.to_owned());
            }
        };
        for t in self.triple_patterns() {
            if let Some(v) = t.subject.as_var() {
                push(v);
            }
            if let Some(v) = t.predicate.as_var() {
                push(v);
            }
            if let Some(v) = t.object.as_var() {
                push(v);
            }
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> TermPattern {
        TermPattern::Var(name.into())
    }

    #[test]
    fn pattern_variables_in_order_without_duplicates() {
        let q = Query::select_all(vec![
            PatternElement::Triple(TriplePattern::new(v("obs"), "http://ex/p", v("x"))),
            PatternElement::Triple(TriplePattern::new(v("obs"), "http://ex/q", v("y"))),
            PatternElement::Triple(TriplePattern::with_pred_var(v("x"), "p", v("z"))),
        ]);
        assert_eq!(q.pattern_variables(), vec!["obs", "x", "y", "p", "z"]);
    }

    #[test]
    fn expr_variable_collection() {
        let e = Expr::And(
            Box::new(Expr::cmp(Expr::var("a"), CmpOp::Gt, Expr::Number(1.0))),
            Box::new(Expr::In(
                Box::new(Expr::var("b")),
                vec![Expr::var("a"), Expr::Iri("http://ex/x".into())],
            )),
        );
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec!["a", "b"]);
    }

    #[test]
    fn aggregate_detection() {
        let plain = Expr::cmp(Expr::var("x"), CmpOp::Eq, Expr::Number(0.0));
        assert!(!plain.has_aggregate());
        let agg = Expr::cmp(
            Expr::Agg(AggFunc::Sum, Box::new(Expr::var("x"))),
            CmpOp::Gt,
            Expr::Number(10.0),
        );
        assert!(agg.has_aggregate());

        let mut q = Query::select_all(vec![]);
        assert!(!q.is_aggregate());
        q.select.push(SelectItem::Agg {
            func: AggFunc::Sum,
            expr: Expr::var("m"),
            alias: "total".into(),
        });
        assert!(q.is_aggregate());
    }

    #[test]
    fn and_all_combines_left_to_right() {
        assert_eq!(Expr::and_all(vec![]), None);
        let single = Expr::and_all(vec![Expr::Bool(true)]).expect("one");
        assert_eq!(single, Expr::Bool(true));
        let combined = Expr::and_all(vec![Expr::Bool(true), Expr::Bool(false)]).expect("two");
        assert!(matches!(combined, Expr::And(..)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_path_rejected() {
        let _ = TriplePattern::with_path(v("s"), vec![], v("o"));
    }
}
