//! The generators' deterministic PRNG.
//!
//! A thin façade over [`re2x_testkit::TestRng`] (xoshiro256\*\* seeded via
//! SplitMix64) exposing the same seeding and sampling API the generators
//! used with the external `rand` crate — `seed_from_u64`, `gen_range`,
//! `gen_bool` — so dataset generation stays byte-identical run-to-run and
//! the workspace stays free of registry dependencies.

use re2x_testkit::prng::SampleRange;
use re2x_testkit::TestRng;

/// The deterministic generator used by all dataset generators.
#[derive(Debug, Clone)]
pub struct StdRng {
    inner: TestRng,
}

impl StdRng {
    /// Seeds the generator from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng {
            inner: TestRng::seed_from_u64(seed),
        }
    }

    /// Uniform value in a half-open integer or `f64` range.
    ///
    /// # Panics
    /// If the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Sample {
        self.inner.gen_range(range)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn bool_and_float_sampling() {
        let mut r = StdRng::seed_from_u64(1);
        let heads = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((350..650).contains(&heads));
        for _ in 0..100 {
            let f = r.gen_range(0.1f64..2.0);
            assert!((0.1..2.0).contains(&f));
        }
    }
}
