//! `no-debug-output`: no `println!` / `eprintln!` / `print!` / `eprint!`
//! / `dbg!` in library crates.
//!
//! Library layers return data; rendering belongs to transcript/exporter
//! modules and binaries. Modules whose purpose *is* terminal output opt in
//! with `// lint:allow-file(no-debug-output, reason)`.

use super::{finding_at, significant};
use crate::findings::Finding;
use crate::source::SourceFile;

const OUTPUT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(text);
        if OUTPUT_MACROS.contains(&word) && toks.get(i + 1).map(|n| n.text(text)) == Some("!") {
            findings.push(finding_at(
                file,
                "no-debug-output",
                t,
                format!("`{word}!` writes to the terminal from library code"),
            ));
        }
    }
    findings
}
