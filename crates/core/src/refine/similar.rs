//! Example-driven Similarity Search (Problem 2c, Section 6.3, Figure 5).
//!
//! The query's grouping columns are split into *example dimensions* (those
//! the user's example was matched on) and *context dimensions* (added by
//! later refinements). Every combination of example-dimension members seen
//! in the results becomes an item; its feature vector is indexed by the
//! distinct context-dimension combinations with the measure value as the
//! feature value (0 where a combination is missing). Cosine similarity
//! against the example's own vector ranks the items, and the refinement
//! pins the example dimensions to the example's and the k most similar
//! combinations with a `FILTER`.
//!
//! When there are no context dimensions (the query is exactly at the
//! example's granularity), vectors are one-dimensional and cosine is
//! degenerate; similarity then falls back to closeness of the measure
//! value (smallest absolute difference), which matches the paper's informal
//! description "the k countries most similar to Germany based on the values
//! of the measure at the current aggregation level".

use crate::query_model::{MeasureColumn, OlapQuery};
use crate::refine::{Refinement, RefinementKind};
use re2x_cube::VirtualSchemaGraph;
use re2x_rdf::hash::FxHashMap;
use re2x_rdf::{Graph, TermId};
use re2x_sparql::{CmpOp, Expr, PatternElement, Solutions, Value};

/// One similarity refinement per measure column, each keeping the `k`
/// most similar example-dimension combinations (plus the example's own).
pub fn similarity(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    solutions: &Solutions,
    graph: &Graph,
    k: usize,
) -> Vec<Refinement> {
    let Some(split) = split_columns(query, solutions, graph) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for column in &query.measure_columns {
        if let Some(r) = similarity_for_measure(schema, query, solutions, graph, k, &split, column)
        {
            out.push(r);
        }
    }
    out
}

struct ColumnSplit {
    /// (solutions column index, grouping-column position) of example dims.
    example_cols: Vec<usize>,
    /// solutions column indexes of context dims.
    context_cols: Vec<usize>,
    /// the example's member combination, as term ids.
    example_key: Vec<TermId>,
}

fn split_columns(query: &OlapQuery, solutions: &Solutions, graph: &Graph) -> Option<ColumnSplit> {
    let mut example_cols = Vec::new();
    let mut example_key = Vec::new();
    let mut context_cols = Vec::new();
    for gc in &query.group_columns {
        let col = solutions.column(&gc.var)?;
        // which example member (if any) is bound to this level?
        let binding = query.bindings().find(|b| b.level == gc.level);
        match binding {
            Some(b) => {
                let id = graph.iri_id(&b.member_iri)?;
                example_cols.push(col);
                example_key.push(id);
            }
            None => context_cols.push(col),
        }
    }
    if example_cols.is_empty() {
        return None;
    }
    Some(ColumnSplit {
        example_cols,
        context_cols,
        example_key,
    })
}

type FeatureKey = Vec<Option<TermId>>;

#[allow(clippy::too_many_arguments)]
fn similarity_for_measure(
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    solutions: &Solutions,
    graph: &Graph,
    k: usize,
    split: &ColumnSplit,
    column: &MeasureColumn,
) -> Option<Refinement> {
    let mcol = solutions.column(&column.alias)?;
    // item key (example-dim member combo) → sparse feature map. Vectors
    // stay sparse throughout: cosine over hash maps instead of densifying
    // to |feature space| entries per item, which would be quadratic in the
    // result size (similarity is the paper's most expensive refinement —
    // Fig. 9a — and DBpedia's M-to-N results are huge).
    let mut items: FxHashMap<Vec<TermId>, FxHashMap<FeatureKey, f64>> = FxHashMap::default();
    let scalar_mode = split.context_cols.is_empty();
    for row in &solutions.rows {
        let key: Option<Vec<TermId>> = split
            .example_cols
            .iter()
            .map(|&c| match row[c] {
                Some(Value::Term(id)) => Some(id),
                _ => None,
            })
            .collect();
        let Some(key) = key else { continue };
        let features: FeatureKey = split
            .context_cols
            .iter()
            .map(|&c| match row[c] {
                Some(Value::Term(id)) => Some(id),
                _ => None,
            })
            .collect();
        let value = row[mcol]
            .as_ref()
            .and_then(|v| v.as_number(graph))
            .unwrap_or(0.0);
        *items.entry(key).or_default().entry(features).or_insert(0.0) += value;
    }
    let example_features = items.get(&split.example_key)?.clone();

    // score every other item against the example's sparse vector
    let mut scored: Vec<(Vec<TermId>, f64)> = items
        .iter()
        .filter(|(key, _)| **key != split.example_key)
        .map(|(key, features)| {
            let score = if scalar_mode {
                scalar_similarity(&example_features, features)
            } else {
                sparse_cosine(&example_features, features)
            };
            (key.clone(), score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    if scored.is_empty() {
        return None;
    }

    // refinement: FILTER pinning the example dims to example ∪ top-k combos
    let mut kept: Vec<Vec<TermId>> = vec![split.example_key.clone()];
    kept.extend(scored.iter().map(|(key, _)| key.clone()));
    let vars: Vec<&str> = query
        .group_columns
        .iter()
        .filter(|gc| query.bindings().any(|b| b.level == gc.level))
        .map(|gc| gc.var.as_str())
        .collect();
    let mut alternatives = Vec::with_capacity(kept.len());
    for combo in &kept {
        let conjuncts: Vec<Expr> = vars
            .iter()
            .zip(combo)
            .filter_map(|(var, id)| {
                graph
                    .term(*id)
                    .as_iri()
                    .map(|iri| Expr::cmp(Expr::var(*var), CmpOp::Eq, Expr::Iri(iri.to_owned())))
            })
            .collect();
        if let Some(conjunction) = Expr::and_all(conjuncts) {
            alternatives.push(conjunction);
        }
    }
    let filter = alternatives
        .into_iter()
        .reduce(|a, b| Expr::Or(Box::new(a), Box::new(b)))?;

    let mut refined = query.clone();
    refined.query.wher.push(PatternElement::Filter(filter));
    let measure_label = &schema.measure(column.measure).label;
    let example_label = query
        .bindings()
        .map(|b| b.label.clone())
        .collect::<Vec<_>>()
        .join(", ");
    let explanation = format!(
        "Keep the {} member combination(s) most similar to {example_label} by their {}({measure_label}) profile",
        scored.len(),
        column.agg.keyword()
    );
    refined.description = format!("{} — {explanation}", query.description);
    Some(Refinement {
        query: refined,
        kind: RefinementKind::Similarity {
            measure_alias: column.alias.clone(),
            k: scored.len(),
        },
        explanation,
    })
}

/// Cosine similarity over sparse feature maps (missing features are 0, so
/// only the key intersection contributes to the dot product).
fn sparse_cosine(a: &FxHashMap<FeatureKey, f64>, b: &FxHashMap<FeatureKey, f64>) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small
        .iter()
        .filter_map(|(k, &x)| large.get(k).map(|&y| x * y))
        .sum();
    let na: f64 = a.values().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// With no context dimensions every vector is one-dimensional and cosine
/// degenerates to ±1; closeness of the measure values is used instead
/// ("the k countries most similar … based on the values of the measure at
/// the current aggregation level").
fn scalar_similarity(a: &FxHashMap<FeatureKey, f64>, b: &FxHashMap<FeatureKey, f64>) -> f64 {
    let x = a.values().copied().next().unwrap_or(0.0);
    let y = b.values().copied().next().unwrap_or(0.0);
    -(x - y).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_model::{ExampleBinding, GroupColumn};
    use re2x_sparql::{AggFunc, Query};

    /// Reproduces Figure 5 of the paper: ⟨dest, origin⟩ example dims with
    /// Year as the context dimension.
    fn figure5() -> (VirtualSchemaGraph, OlapQuery, Solutions, Graph) {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        let dest = v.add_dimension("http://ex/dest", "Country of Destination");
        let origin = v.add_dimension("http://ex/origin", "Country of Origin");
        let year = v.add_dimension("http://ex/year", "Year");
        let m = v.add_measure("http://ex/applicants", "Num Applicants");
        let dest_l = v.add_level(dest, vec!["http://ex/dest".into()], 3, vec![], "Country");
        let origin_l = v.add_level(
            origin,
            vec!["http://ex/origin".into()],
            2,
            vec![],
            "Country",
        );
        let year_l = v.add_level(year, vec!["http://ex/year".into()], 2, vec![], "Year");

        let mut g = Graph::new();
        let mut iri = |name: &str| g.intern_iri(format!("http://ex/{name}"));
        let (germany, france, sweden) = (iri("Germany"), iri("France"), iri("Sweden"));
        let (syria, china) = (iri("Syria"), iri("China"));
        let (y2013, y2014) = (iri("2013"), iri("2014"));

        // Figure 5 data, in millions
        let data = [
            (germany, syria, y2013, 0.3),
            (france, syria, y2013, 0.3),
            (sweden, syria, y2013, 0.2),
            (germany, china, y2013, 0.1),
            (france, china, y2013, 0.1),
            (sweden, china, y2013, 0.3),
            (germany, syria, y2014, 0.6),
            (france, syria, y2014, 0.3),
            (sweden, syria, y2014, 0.4),
            (germany, china, y2014, 0.1),
            (france, china, y2014, 0.3),
            (sweden, china, y2014, 0.2),
        ];
        let rows = data
            .iter()
            .map(|&(d, o, y, v)| {
                vec![
                    Some(Value::Term(d)),
                    Some(Value::Term(o)),
                    Some(Value::Term(y)),
                    Some(Value::Number(v)),
                ]
            })
            .collect();
        let solutions = Solutions {
            vars: vec![
                "dest".into(),
                "origin".into(),
                "year".into(),
                "sum_applicants".into(),
            ],
            rows,
        };
        let query = OlapQuery {
            query: Query::select_all(vec![]),
            group_columns: vec![
                GroupColumn {
                    var: "dest".into(),
                    level: dest_l,
                },
                GroupColumn {
                    var: "origin".into(),
                    level: origin_l,
                },
                GroupColumn {
                    var: "year".into(),
                    level: year_l,
                },
            ],
            measure_columns: vec![MeasureColumn {
                alias: "sum_applicants".into(),
                measure: m,
                agg: AggFunc::Sum,
            }],
            example: vec![vec![
                ExampleBinding {
                    keyword: "Germany".into(),
                    member_iri: "http://ex/Germany".into(),
                    label: "Germany".into(),
                    level: dest_l,
                },
                ExampleBinding {
                    keyword: "Syria".into(),
                    member_iri: "http://ex/Syria".into(),
                    label: "Syria".into(),
                    level: origin_l,
                },
            ]],
            description: "Q".into(),
        };
        (v, query, solutions, g)
    }

    #[test]
    fn figure5_top2_matches_the_paper() {
        let (v, q, sols, g) = figure5();
        let refinements = similarity(&v, &q, &sols, &g, 2);
        assert_eq!(refinements.len(), 1, "one per measure column");
        let r = &refinements[0];
        match &r.kind {
            RefinementKind::Similarity { k, .. } => assert_eq!(*k, 2),
            other => panic!("unexpected {other:?}"),
        }
        // the paper's top-2: ⟨Sweden, Syria⟩ (σ=1) then ⟨France, China⟩
        // (σ≈0.99); the filter must mention them plus the example itself
        let filter_text =
            re2x_sparql::pretty::expr(match r.query.query.wher.last().expect("filter added") {
                PatternElement::Filter(e) => e,
                other => panic!("expected filter, got {other:?}"),
            });
        assert!(filter_text.contains("http://ex/Germany"), "{filter_text}");
        assert!(filter_text.contains("http://ex/Sweden"), "{filter_text}");
        assert!(
            filter_text.contains("http://ex/France") && filter_text.contains("http://ex/China"),
            "{filter_text}"
        );
        assert!(r.explanation.contains("Germany"));
    }

    #[test]
    fn top1_keeps_only_the_most_similar() {
        let (v, q, sols, g) = figure5();
        let r = similarity(&v, &q, &sols, &g, 1).remove(0);
        let filter_text = re2x_sparql::pretty::expr(match r.query.query.wher.last().expect("f") {
            PatternElement::Filter(e) => e,
            _ => unreachable!(),
        });
        // Sweden/Syria is σ=1 (perfectly proportional profile ⟨0.2,0.4⟩ vs
        // ⟨0.3,0.6⟩); France/China ⟨0.1,0.3⟩ is slightly lower.
        assert!(filter_text.contains("http://ex/Sweden"));
        assert!(!filter_text.contains("http://ex/France"));
    }

    #[test]
    fn similarity_without_example_columns_yields_nothing() {
        let (v, mut q, sols, g) = figure5();
        q.example.clear();
        assert!(similarity(&v, &q, &sols, &g, 2).is_empty());
    }

    fn sparse(entries: &[(u32, f64)]) -> FxHashMap<FeatureKey, f64> {
        entries
            .iter()
            .map(|&(k, v)| (vec![Some(re2x_rdf::TermId(k))], v))
            .collect()
    }

    #[test]
    fn one_dimensional_fallback_prefers_closest_values() {
        let five = sparse(&[(0, 5.0)]);
        let six = sparse(&[(0, 6.0)]);
        let fifty = sparse(&[(0, 50.0)]);
        assert!(scalar_similarity(&five, &six) > scalar_similarity(&five, &fifty));
        assert_eq!(scalar_similarity(&sparse(&[]), &sparse(&[])), 0.0);
    }

    #[test]
    fn cosine_properties() {
        let a = sparse(&[(0, 1.0), (1, 2.0)]);
        let proportional = sparse(&[(0, 2.0), (1, 4.0)]);
        assert!((sparse_cosine(&a, &proportional) - 1.0).abs() < 1e-12);
        let orthogonal_a = sparse(&[(0, 1.0)]);
        let orthogonal_b = sparse(&[(1, 1.0)]);
        assert!(sparse_cosine(&orthogonal_a, &orthogonal_b).abs() < 1e-12);
        let zero = sparse(&[(0, 0.0), (1, 0.0)]);
        let ones = sparse(&[(0, 1.0), (1, 1.0)]);
        assert_eq!(sparse_cosine(&zero, &ones), 0.0);
        // sparse == dense semantics: missing keys are zeros
        let partial = sparse(&[(0, 3.0)]);
        let full = sparse(&[(0, 3.0), (1, 4.0)]);
        let expected = 9.0 / (3.0 * 5.0);
        assert!((sparse_cosine(&partial, &full) - expected).abs() < 1e-12);
    }
}
