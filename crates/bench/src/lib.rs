#![forbid(unsafe_code)]

//! # re2x-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` §3 for the index) plus the ablation
//! studies of §4.
//!
//! * the [`figures`] module implements one function per table/figure,
//! * the [`ablation`] module implements the design-choice ablations,
//! * the `repro` binary runs them and writes `bench_results/`,
//! * the micro-benches (`benches/`, on the in-repo [`micro`] harness,
//!   gated behind the `bench-criterion` feature) time the hot paths per
//!   figure.

pub mod ablation;
pub mod env;
pub mod figures;
pub mod micro;
pub mod plan;
pub mod report;
pub mod scale;
pub mod serve;
pub mod sharding;
pub mod trace;
pub mod watch;
