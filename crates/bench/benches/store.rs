//! Micro-benchmarks of the triple store: bulk insert throughput, pattern
//! scans through each index, full-text lookup, and serialization.
//! (Moved here from `crates/rdf` so bench deps stay out of library
//! crates.)

use re2x_bench::micro::Group;
use re2x_rdf::{Graph, Literal, Term};

const N: usize = 50_000;

fn build_graph() -> Graph {
    let mut g = Graph::new();
    let dest = g.intern_iri("http://ex/dest");
    let value = g.intern_iri("http://ex/value");
    let label = g.intern_iri("http://ex/label");
    let members: Vec<_> = (0..100)
        .map(|i| {
            let m = g.intern_iri(format!("http://ex/member/{i}"));
            let l = g.intern_literal(Literal::simple(format!("Member {i}")));
            g.insert_ids(m, label, l);
            m
        })
        .collect();
    for j in 0..N {
        let obs = g.intern_iri(format!("http://ex/obs/{j}"));
        g.insert_ids(obs, dest, members[j % members.len()]);
        let v = g.intern_literal(Literal::integer((j % 977) as i64));
        g.insert_ids(obs, value, v);
    }
    g
}

fn main() {
    let group = Group::new("store");

    group.bench("bulk_insert_100k_triples", build_graph);

    let g = build_graph();
    let dest = g.iri_id("http://ex/dest").expect("pred");
    let member0 = g.iri_id("http://ex/member/0").expect("member");

    group.bench("scan_by_predicate", || {
        let mut n = 0usize;
        g.for_each_matching(None, Some(dest), None, |_| n += 1);
        n
    });

    group.bench("scan_by_predicate_object", || {
        g.subjects(dest, member0).len()
    });

    group.bench("text_exact_lookup", || {
        g.literals_matching_exact("Member 42").len()
    });

    group.bench("count_matching_wildcards", || {
        g.count_matching(None, None, None)
    });

    // serialization throughput
    let ser = Group::new("serialization");
    ser.bench("to_ntriples", || re2x_rdf::io::to_ntriples(&g));
    let text = re2x_rdf::io::to_ntriples(&g);
    ser.bench("parse_ntriples", || {
        let mut fresh = Graph::new();
        re2x_rdf::io::parse_ntriples(&text, &mut fresh).expect("parse");
        fresh
    });

    // keep Term in the public surface exercised
    let _ = Term::iri("http://ex/x");
}
