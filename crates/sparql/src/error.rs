//! Error type for parsing and evaluating queries.

use std::fmt;

/// Errors raised by the SPARQL subset engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Parse error with a line number.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The query uses a feature outside the supported subset, or uses a
    /// supported feature in an unsupported position.
    Unsupported(String),
    /// A semantically invalid query (e.g. aggregate in a WHERE filter,
    /// projected variable neither grouped nor aggregated).
    Invalid(String),
    /// The backend (or an injected-fault decorator standing in for one)
    /// failed to answer: the query was well-formed but the endpoint could
    /// not serve it. Callers treat this as transient and per-query — it
    /// fails the round that issued it, never the session.
    Endpoint(String),
    /// A per-session query budget was exhausted: exactly `limit` queries
    /// were admitted before this one was refused without reaching the
    /// endpoint. Raised by admission-control decorators (`re2x-serve`).
    BudgetExhausted {
        /// The configured budget the session ran through.
        limit: u64,
    },
    /// An async ticket's response had a different shape than the request
    /// it was submitted as (a SELECT ticket answered with an ASK, …).
    /// Indicates a caller-side ticket mix-up; surfaced as a typed error so
    /// a confused batch fails its round instead of killing the session.
    TicketMismatch {
        /// The response shape the caller unwrapped for.
        expected: &'static str,
        /// The shape the ticket actually resolved to.
        got: &'static str,
    },
}

impl SparqlError {
    /// Convenience constructor for syntax errors.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        SparqlError::Syntax {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for invalid-query errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        SparqlError::Invalid(message.into())
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Syntax { line, message } => {
                write!(f, "syntax error at line {line}: {message}")
            }
            SparqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SparqlError::Invalid(m) => write!(f, "invalid query: {m}"),
            SparqlError::Endpoint(m) => write!(f, "endpoint failure: {m}"),
            SparqlError::BudgetExhausted { limit } => {
                write!(f, "query budget exhausted after {limit} queries")
            }
            SparqlError::TicketMismatch { expected, got } => {
                write!(f, "async ticket mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            SparqlError::syntax(4, "oops").to_string(),
            "syntax error at line 4: oops"
        );
        assert_eq!(
            SparqlError::Unsupported("OPTIONAL".into()).to_string(),
            "unsupported: OPTIONAL"
        );
        assert_eq!(
            SparqlError::invalid("bad").to_string(),
            "invalid query: bad"
        );
        assert_eq!(
            SparqlError::Endpoint("connection reset".into()).to_string(),
            "endpoint failure: connection reset"
        );
        assert_eq!(
            SparqlError::BudgetExhausted { limit: 9 }.to_string(),
            "query budget exhausted after 9 queries"
        );
        assert_eq!(
            SparqlError::TicketMismatch {
                expected: "SELECT",
                got: "ASK"
            }
            .to_string(),
            "async ticket mismatch: expected SELECT, got ASK"
        );
    }
}
