//! Emitting W3C RDF Data Cube / QB4OLAP annotations for a discovered
//! schema.
//!
//! The paper's only structural assumption is the observation class; other
//! tools in the QB ecosystem, however, expect explicit `qb:` /` qb4o:`
//! annotations. This module materializes them from a
//! [`VirtualSchemaGraph`], which is the inverse of what enrichment
//! approaches like QB4OLAP annotators do, and lets a RE²xOLAP-discovered
//! schema interoperate with QB tooling.

// lint:allow-file(endpoint-seam, materializes annotations into a caller-local graph rather than querying the endpoint store)

use crate::model::LevelId;
use crate::vgraph::VirtualSchemaGraph;
use re2x_rdf::{vocab, Graph, Literal, Term};

/// Auxiliary vocabulary for round-tripping schema details that QB4OLAP has
/// no terms for (level paths, member counts, the observation class).
pub mod re2x_vocab {
    /// The schema root node carrying dataset-level facts.
    pub const SCHEMA: &str = "urn:re2x:schema";
    /// Root → observation-class IRI.
    pub const OBSERVATION_CLASS: &str = "urn:re2x:vocab:observationClass";
    /// Root → observation count (integer literal).
    pub const OBSERVATION_COUNT: &str = "urn:re2x:vocab:observationCount";
    /// Level → dimension predicate IRI it belongs to.
    pub const IN_DIMENSION: &str = "urn:re2x:vocab:inDimension";
    /// Level → distinct member count (integer literal).
    pub const MEMBER_COUNT: &str = "urn:re2x:vocab:memberCount";
    /// Level → attribute predicate IRI.
    pub const LEVEL_ATTRIBUTE: &str = "urn:re2x:vocab:levelAttribute";

    /// Level → i-th predicate of its observation path.
    pub fn path_step(i: usize) -> String {
        format!("urn:re2x:vocab:pathStep{i}")
    }
}

/// A synthetic IRI identifying a level in the emitted annotations.
pub fn level_iri(schema: &VirtualSchemaGraph, id: LevelId) -> String {
    let level = schema.level(id);
    format!(
        "urn:re2x:level:{}",
        level
            .path
            .iter()
            .map(|p| crate::labels::local_name(p))
            .collect::<Vec<_>>()
            .join("/")
    )
}

/// Writes QB/QB4OLAP annotation triples describing `schema` into `graph`.
/// Returns the number of triples inserted.
pub fn annotate(schema: &VirtualSchemaGraph, graph: &mut Graph) -> usize {
    let mut inserted = 0;
    let mut add = |graph: &mut Graph, s: Term, p: &str, o: Term| {
        if graph.insert(s, Term::iri(p), o) {
            inserted += 1;
        }
    };

    for dimension in schema.dimensions() {
        add(
            graph,
            Term::iri(dimension.predicate.clone()),
            vocab::rdf::TYPE,
            Term::iri(vocab::qb::DIMENSION_PROPERTY),
        );
        add(
            graph,
            Term::iri(dimension.predicate.clone()),
            vocab::rdfs::LABEL,
            Term::from(Literal::simple(dimension.label.clone())),
        );
    }
    for measure in schema.measures() {
        add(
            graph,
            Term::iri(measure.predicate.clone()),
            vocab::rdf::TYPE,
            Term::iri(vocab::qb::MEASURE_PROPERTY),
        );
        add(
            graph,
            Term::iri(measure.predicate.clone()),
            vocab::rdfs::LABEL,
            Term::from(Literal::simple(measure.label.clone())),
        );
    }
    // dataset-level facts
    add(
        graph,
        Term::iri(re2x_vocab::SCHEMA),
        re2x_vocab::OBSERVATION_CLASS,
        Term::iri(schema.observation_class.clone()),
    );
    add(
        graph,
        Term::iri(re2x_vocab::SCHEMA),
        re2x_vocab::OBSERVATION_COUNT,
        Term::from(Literal::integer(schema.observation_count as i64)),
    );
    for level in schema.levels() {
        let iri = level_iri(schema, level.id);
        add(
            graph,
            Term::iri(iri.clone()),
            vocab::rdf::TYPE,
            Term::iri(vocab::qb4o::LEVEL_PROPERTY),
        );
        add(
            graph,
            Term::iri(iri.clone()),
            vocab::rdfs::LABEL,
            Term::from(Literal::simple(level.label.clone())),
        );
        add(
            graph,
            Term::iri(iri.clone()),
            re2x_vocab::IN_DIMENSION,
            Term::iri(schema.dimension(level.dimension).predicate.clone()),
        );
        add(
            graph,
            Term::iri(iri.clone()),
            re2x_vocab::MEMBER_COUNT,
            Term::from(Literal::integer(level.member_count as i64)),
        );
        for (i, step) in level.path.iter().enumerate() {
            add(
                graph,
                Term::iri(iri.clone()),
                &re2x_vocab::path_step(i),
                Term::iri(step.clone()),
            );
        }
        for attr in &level.attribute_predicates {
            add(
                graph,
                Term::iri(attr.clone()),
                vocab::rdf::TYPE,
                Term::iri(vocab::qb::ATTRIBUTE_PROPERTY),
            );
            add(
                graph,
                Term::iri(iri.clone()),
                re2x_vocab::LEVEL_ATTRIBUTE,
                Term::iri(attr.clone()),
            );
        }
        if let Some(parent) = schema.parent(level.id) {
            // qb4o:parentLevel points from the finer level to the coarser
            // one; in the virtual graph the "parent" is the finer level, so
            // the emitted edge goes parent(finer) → this(coarser).
            let finer = level_iri(schema, parent);
            add(
                graph,
                Term::iri(finer),
                vocab::qb4o::PARENT_LEVEL,
                Term::iri(iri.clone()),
            );
        }
    }
    inserted
}

/// Reconstructs a [`VirtualSchemaGraph`] from annotations previously
/// written by [`annotate`] — the bootstrap shortcut for stores that carry
/// QB/QB4OLAP (plus re2x auxiliary) metadata alongside the data.
/// Returns `None` if no schema root is present.
pub fn from_annotations(graph: &Graph) -> Option<VirtualSchemaGraph> {
    let iri_of = |id: re2x_rdf::TermId| graph.term(id).as_iri().map(str::to_owned);
    let root = graph.iri_id(re2x_vocab::SCHEMA)?;
    let class_p = graph.iri_id(re2x_vocab::OBSERVATION_CLASS)?;
    let observation_class = iri_of(*graph.objects(root, class_p).first()?)?;
    let mut schema = VirtualSchemaGraph::new(observation_class);
    if let Some(count_p) = graph.iri_id(re2x_vocab::OBSERVATION_COUNT) {
        if let Some(&count) = graph.objects(root, count_p).first() {
            schema.observation_count = graph.numeric_value(count).unwrap_or(0.0) as usize;
        }
    }

    let type_p = graph.iri_id(vocab::rdf::TYPE)?;
    let label_p = graph.iri_id(vocab::rdfs::LABEL);
    let label_of = |subject: re2x_rdf::TermId| -> String {
        label_p
            .and_then(|p| graph.objects(subject, p).first().copied())
            .and_then(|l| graph.term(l).as_literal().map(|l| l.lexical().to_owned()))
            .unwrap_or_default()
    };

    // measures and dimensions by their declared classes
    if let Some(class) = graph.iri_id(vocab::qb::MEASURE_PROPERTY) {
        let mut subjects = graph.subjects(type_p, class).to_vec();
        subjects.sort_by_key(|&s| iri_of(s));
        for s in subjects {
            let predicate = iri_of(s)?;
            let label = label_of(s);
            schema.add_measure(predicate, label);
        }
    }
    let mut dim_ids = std::collections::HashMap::new();
    if let Some(class) = graph.iri_id(vocab::qb::DIMENSION_PROPERTY) {
        let mut subjects = graph.subjects(type_p, class).to_vec();
        subjects.sort_by_key(|&s| iri_of(s));
        for s in subjects {
            let predicate = iri_of(s)?;
            let label = label_of(s);
            dim_ids.insert(predicate.clone(), schema.add_dimension(predicate, label));
        }
    }

    // levels: reassemble paths from the indexed pathStep predicates and
    // insert base levels before their extensions
    let level_class = graph.iri_id(vocab::qb4o::LEVEL_PROPERTY)?;
    let in_dim_p = graph.iri_id(re2x_vocab::IN_DIMENSION)?;
    let count_p = graph.iri_id(re2x_vocab::MEMBER_COUNT);
    let attr_p = graph.iri_id(re2x_vocab::LEVEL_ATTRIBUTE);
    struct PendingLevel {
        dimension: crate::model::DimensionId,
        path: Vec<String>,
        member_count: usize,
        attributes: Vec<String>,
        label: String,
    }
    let mut pending = Vec::new();
    for &level_node in graph.subjects(type_p, level_class) {
        let dim_iri = iri_of(*graph.objects(level_node, in_dim_p).first()?)?;
        let dimension = *dim_ids.get(&dim_iri)?;
        let mut path = Vec::new();
        while let Some(step_p) = graph.iri_id(&re2x_vocab::path_step(path.len())) {
            match graph.objects(level_node, step_p).first() {
                Some(&step) => path.push(iri_of(step)?),
                None => break,
            }
        }
        if path.is_empty() {
            return None; // malformed annotations
        }
        let member_count = count_p
            .and_then(|p| graph.objects(level_node, p).first().copied())
            .and_then(|v| graph.numeric_value(v))
            .unwrap_or(0.0) as usize;
        let mut attributes: Vec<String> = attr_p
            .map(|p| {
                graph
                    .objects(level_node, p)
                    .iter()
                    .filter_map(|&a| iri_of(a))
                    .collect()
            })
            .unwrap_or_default();
        attributes.sort();
        pending.push(PendingLevel {
            dimension,
            path,
            member_count,
            attributes,
            label: label_of(level_node),
        });
    }
    pending.sort_by(|a, b| {
        a.path
            .len()
            .cmp(&b.path.len())
            .then_with(|| a.path.cmp(&b.path))
    });
    for level in pending {
        schema.add_level(
            level.dimension,
            level.path,
            level.member_count,
            level.attributes,
            level.label,
        );
    }
    Some(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DimensionId;

    fn schema() -> VirtualSchemaGraph {
        let mut v = VirtualSchemaGraph::new("http://ex/Observation");
        let origin = v.add_dimension("http://ex/origin", "Country of Origin");
        v.add_measure("http://ex/applicants", "Num Applicants");
        v.add_level(
            origin,
            vec!["http://ex/origin".into()],
            10,
            vec!["http://ex/label".to_owned()],
            "Country",
        );
        v.add_level(
            origin,
            vec!["http://ex/origin".into(), "http://ex/inContinent".into()],
            3,
            vec![],
            "Continent",
        );
        v
    }

    #[test]
    fn level_iris_are_stable_and_distinct() {
        let s = schema();
        let ids: Vec<String> = s.levels().iter().map(|l| level_iri(&s, l.id)).collect();
        assert_eq!(ids[0], "urn:re2x:level:origin");
        assert_eq!(ids[1], "urn:re2x:level:origin/inContinent");
    }

    #[test]
    fn annotation_triples_cover_all_schema_elements() {
        let s = schema();
        let mut g = Graph::new();
        let n = annotate(&s, &mut g);
        assert_eq!(n, g.len());
        let type_p = g.iri_id(vocab::rdf::TYPE).expect("typed");
        let dim_class = g.iri_id(vocab::qb::DIMENSION_PROPERTY).expect("class");
        assert_eq!(g.subjects(type_p, dim_class).len(), 1);
        let measure_class = g.iri_id(vocab::qb::MEASURE_PROPERTY).expect("class");
        assert_eq!(g.subjects(type_p, measure_class).len(), 1);
        let level_class = g.iri_id(vocab::qb4o::LEVEL_PROPERTY).expect("class");
        assert_eq!(g.subjects(type_p, level_class).len(), 2);
        let attr_class = g.iri_id(vocab::qb::ATTRIBUTE_PROPERTY).expect("class");
        assert_eq!(g.subjects(type_p, attr_class).len(), 1);
        // hierarchy edge from country level to continent level
        let parent_p = g.iri_id(vocab::qb4o::PARENT_LEVEL).expect("pred");
        assert_eq!(g.predicate_cardinality(parent_p), 1);
    }

    #[test]
    fn annotations_round_trip_to_an_equivalent_schema() {
        let s = schema();
        let mut g = Graph::new();
        annotate(&s, &mut g);
        let restored = from_annotations(&g).expect("round trip");
        assert_eq!(restored.observation_class, s.observation_class);
        assert_eq!(restored.stats(), s.stats());
        for level in s.levels() {
            let found = restored.level_by_path(&level.path).expect("level kept");
            let r = restored.level(found);
            assert_eq!(r.member_count, level.member_count);
            assert_eq!(r.label, level.label);
            assert_eq!(r.attribute_predicates, level.attribute_predicates);
            assert_eq!(
                restored.dimension(r.dimension).predicate,
                s.dimension(level.dimension).predicate
            );
        }
    }

    #[test]
    fn from_annotations_requires_a_schema_root() {
        let g = Graph::new();
        assert!(from_annotations(&g).is_none());
    }

    #[test]
    fn annotate_is_idempotent() {
        let s = schema();
        let mut g = Graph::new();
        let first = annotate(&s, &mut g);
        let second = annotate(&s, &mut g);
        assert!(first > 0);
        assert_eq!(second, 0, "re-annotation inserts nothing new");
    }

    #[test]
    #[should_panic]
    fn level_iri_rejects_foreign_id() {
        let s = schema();
        let _ = level_iri(&s, crate::model::LevelId(99));
        let _ = DimensionId(0); // silence unused import
    }
}
