//! Micro-benchmarks of the SPARQL engine on a Figure 2-shaped star schema:
//! parsing, planning+execution of aggregation queries, filters, and the
//! greedy vs. in-order planner. (Moved here from `crates/sparql` so bench
//! deps stay out of library crates.)

use re2x_bench::micro::Group;
use re2x_datagen::prng::StdRng;
use re2x_rdf::{Graph, Literal};
use re2x_sparql::{evaluate, evaluate_with, parse_query, PlanMode};

const OBS: usize = 20_000;

fn build_graph() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    let mut g = Graph::new();
    let dest_p = g.intern_iri("http://ex/dest");
    let origin_p = g.intern_iri("http://ex/origin");
    let continent_p = g.intern_iri("http://ex/inContinent");
    let value_p = g.intern_iri("http://ex/value");
    let continents: Vec<_> = (0..5)
        .map(|i| g.intern_iri(format!("http://ex/continent/{i}")))
        .collect();
    let origins: Vec<_> = (0..150)
        .map(|i| {
            let m = g.intern_iri(format!("http://ex/origin/{i}"));
            g.insert_ids(m, continent_p, continents[i % 5]);
            m
        })
        .collect();
    let dests: Vec<_> = (0..30)
        .map(|i| g.intern_iri(format!("http://ex/dest/{i}")))
        .collect();
    for j in 0..OBS {
        let obs = g.intern_iri(format!("http://ex/obs/{j}"));
        g.insert_ids(obs, dest_p, dests[rng.gen_range(0..dests.len())]);
        g.insert_ids(obs, origin_p, origins[rng.gen_range(0..origins.len())]);
        let v = g.intern_literal(Literal::integer(rng.gen_range(1i64..5_000)));
        g.insert_ids(obs, value_p, v);
    }
    g
}

const FIG2: &str = "SELECT ?c ?d (SUM(?v) AS ?total) WHERE {
    ?o <http://ex/origin> / <http://ex/inContinent> ?c .
    ?o <http://ex/dest> ?d .
    ?o <http://ex/value> ?v .
} GROUP BY ?c ?d";

fn main() {
    let g = build_graph();
    let group = Group::new("engine");

    group.bench("parse_fig2_query", || parse_query(FIG2).expect("parses"));

    let fig2 = parse_query(FIG2).expect("parses");
    group.bench("fig2_aggregation_20k_obs", || {
        evaluate(&g, &fig2).expect("runs")
    });
    group.bench("fig2_aggregation_inorder_plan", || {
        evaluate_with(&g, &fig2, PlanMode::InOrder).expect("runs")
    });

    let selective = parse_query(
        "SELECT ?o ?v WHERE {
            ?o <http://ex/dest> <http://ex/dest/3> .
            ?o <http://ex/value> ?v .
            FILTER(?v > 4000)
        }",
    )
    .expect("parses");
    group.bench("selective_filter_query", || {
        evaluate(&g, &selective).expect("runs")
    });

    let having = parse_query(
        "SELECT ?d (SUM(?v) AS ?t) WHERE {
            ?o <http://ex/dest> ?d . ?o <http://ex/value> ?v
        } GROUP BY ?d HAVING(SUM(?v) > 100000) ORDER BY DESC(?t) LIMIT 5",
    )
    .expect("parses");
    group.bench("having_order_limit", || {
        evaluate(&g, &having).expect("runs")
    });

    let ask = parse_query("ASK { ?o <http://ex/dest> <http://ex/dest/7> }").expect("parses");
    group.bench("ask_short_circuits", || {
        re2x_sparql::evaluate_ask(&g, &ask).expect("runs")
    });
}
