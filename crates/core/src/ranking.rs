//! Ranking of candidate interpretations and refinements.
//!
//! The paper leaves "ranking interpretations" and "a method for ranking
//! the suggested query reformulations" as future work (Sections 4.1 and
//! 8); this module provides a transparent, explainable baseline for both,
//! following the design criteria of Section 6 (simplicity and
//! explainability): every score decomposes into named factors that can be
//! shown to the user.

use crate::query_model::OlapQuery;
use crate::refine::{Refinement, RefinementKind};
use re2x_cube::VirtualSchemaGraph;
use re2x_rdf::text::normalize;

/// The factors contributing to an interpretation's score, each in
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankFactors {
    /// Fraction of example bindings whose member label equals the typed
    /// keyword exactly (after normalization) — exact hits beat partial
    /// ones.
    pub exactness: f64,
    /// How discriminating the matched levels are: levels with fewer
    /// members pin the interpretation down more (1 / avg member count,
    /// scaled).
    pub specificity: f64,
    /// Preference for base levels: users typing an entity name usually
    /// mean the entity itself, not a roll-up of it (1 / avg level depth).
    pub base_affinity: f64,
}

impl RankFactors {
    /// The combined score (fixed, documented weights).
    pub fn score(&self) -> f64 {
        0.5 * self.exactness + 0.3 * self.specificity + 0.2 * self.base_affinity
    }
}

/// A scored interpretation.
#[derive(Debug, Clone)]
pub struct RankedQuery {
    /// The interpretation.
    pub query: OlapQuery,
    /// Its factors.
    pub factors: RankFactors,
}

impl RankedQuery {
    /// Combined score.
    pub fn score(&self) -> f64 {
        self.factors.score()
    }
}

/// Computes the rank factors of one interpretation.
pub fn factors(schema: &VirtualSchemaGraph, query: &OlapQuery) -> RankFactors {
    let bindings: Vec<_> = query.bindings().collect();
    if bindings.is_empty() {
        return RankFactors {
            exactness: 0.0,
            specificity: 0.0,
            base_affinity: 0.0,
        };
    }
    let exact = bindings
        .iter()
        .filter(|b| normalize(&b.label) == normalize(&b.keyword))
        .count() as f64
        / bindings.len() as f64;
    let avg_members = bindings
        .iter()
        .map(|b| schema.level(b.level).member_count.max(1) as f64)
        .sum::<f64>()
        / bindings.len() as f64;
    let avg_depth = bindings
        .iter()
        .map(|b| schema.level(b.level).depth() as f64)
        .sum::<f64>()
        / bindings.len() as f64;
    RankFactors {
        exactness: exact,
        // 1 member → 1.0, 10 → ~0.5, 1000 → ~0.25 (log scaling keeps huge
        // pools comparable)
        specificity: 1.0 / (1.0 + avg_members.log10().max(0.0)),
        base_affinity: 1.0 / avg_depth,
    }
}

/// Ranks interpretations best-first; ties broken deterministically by
/// description.
pub fn rank_interpretations(
    schema: &VirtualSchemaGraph,
    queries: Vec<OlapQuery>,
) -> Vec<RankedQuery> {
    let mut ranked: Vec<RankedQuery> = queries
        .into_iter()
        .map(|query| RankedQuery {
            factors: factors(schema, &query),
            query,
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score()
            .total_cmp(&a.score())
            .then_with(|| a.query.description.cmp(&b.query.description))
    });
    ranked
}

/// Ranks refinements by how *inspectable* the refined result is expected
/// to be: closest to `target_rows` wins (the interviews of Section 7.2
/// show users want small, explainable result sets). Estimates are static —
/// no query is executed:
///
/// * Top-k → `k` rows,
/// * Percentile over an interval covering `q%` of values → `q% · current`,
/// * Similarity keeping `k` combinations → `(k+1)/combos · current`,
/// * Disaggregate → `current · members-of-added-level`, capped by the
///   observation count (drill-downs grow the view).
pub fn rank_refinements(
    schema: &VirtualSchemaGraph,
    refinements: Vec<Refinement>,
    current_rows: usize,
    target_rows: usize,
) -> Vec<(Refinement, usize)> {
    let estimate = |r: &Refinement| -> usize {
        match &r.kind {
            RefinementKind::TopK { k, .. } => *k,
            RefinementKind::Percentile {
                lower_pct,
                upper_pct,
                ..
            } => {
                let share = f64::from(upper_pct - lower_pct) / 100.0;
                ((current_rows as f64) * share).ceil() as usize
            }
            RefinementKind::Similarity { k, .. } => {
                // keeps k+1 of the example-dimension member combinations;
                // the combination count is estimated from the example
                // levels' member counts
                let combos: usize = r
                    .query
                    .bindings()
                    .map(|b| schema.level(b.level).member_count.max(1))
                    .product::<usize>()
                    .max(1);
                (current_rows * (k + 1) / combos.min(current_rows.max(1))).max(k + 1)
            }
            RefinementKind::Disaggregate { level } => {
                let members = schema.level(*level).member_count.max(1);
                current_rows
                    .saturating_mul(members)
                    .min(schema.observation_count.max(current_rows))
            }
        }
    };
    let mut scored: Vec<(Refinement, usize)> = refinements
        .into_iter()
        .map(|r| {
            let e = estimate(&r);
            (r, e)
        })
        .collect();
    scored.sort_by_key(|(r, e)| {
        (
            e.abs_diff(target_rows),
            r.explanation.clone(), // deterministic tie-break
        )
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_model::{ExampleBinding, GroupColumn};
    use re2x_cube::LevelId;
    use re2x_sparql::Query;

    fn schema() -> (VirtualSchemaGraph, LevelId, LevelId) {
        let mut v = VirtualSchemaGraph::new("http://ex/Obs");
        v.observation_count = 1000;
        let d = v.add_dimension("http://ex/p", "P");
        v.add_measure("http://ex/m", "M");
        let base = v.add_level(d, vec!["http://ex/p".into()], 10, vec![], "Base");
        let coarse = v.add_level(
            d,
            vec!["http://ex/p".into(), "http://ex/up".into()],
            1000,
            vec![],
            "Coarse",
        );
        (v, base, coarse)
    }

    fn query_with(level: LevelId, keyword: &str, label: &str) -> OlapQuery {
        OlapQuery {
            query: Query::select_all(vec![]),
            group_columns: vec![GroupColumn {
                var: "x".into(),
                level,
            }],
            measure_columns: vec![],
            example: vec![vec![ExampleBinding {
                keyword: keyword.into(),
                member_iri: "http://ex/M1".into(),
                label: label.into(),
                level,
            }]],
            description: format!("{level:?}"),
        }
    }

    #[test]
    fn exact_base_level_matches_rank_first() {
        let (schema, base, coarse) = schema();
        let strong = query_with(base, "Germany", "Germany");
        let weak = query_with(coarse, "Germany", "West Germany Region");
        let ranked = rank_interpretations(&schema, vec![weak.clone(), strong.clone()]);
        assert_eq!(ranked[0].query, strong);
        assert!(ranked[0].score() > ranked[1].score());
        let f = &ranked[0].factors;
        assert_eq!(f.exactness, 1.0);
        assert!(f.base_affinity > ranked[1].factors.base_affinity);
        assert!(f.specificity > ranked[1].factors.specificity);
    }

    #[test]
    fn empty_example_scores_zero() {
        let (schema, base, _) = schema();
        let mut q = query_with(base, "x", "x");
        q.example.clear();
        let f = factors(&schema, &q);
        assert_eq!(f.score(), 0.0);
    }

    #[test]
    fn refinement_ranking_prefers_target_sized_results() {
        let (schema, base, _) = schema();
        let q = query_with(base, "Germany", "Germany");
        let make = |kind: RefinementKind| Refinement {
            query: q.clone(),
            explanation: format!("{kind:?}"),
            kind,
        };
        let refinements = vec![
            make(RefinementKind::TopK {
                measure_alias: "s".into(),
                k: 100,
                order: re2x_sparql::Order::Desc,
            }),
            make(RefinementKind::TopK {
                measure_alias: "s".into(),
                k: 10,
                order: re2x_sparql::Order::Desc,
            }),
            make(RefinementKind::Disaggregate { level: base }),
        ];
        let ranked = rank_refinements(&schema, refinements, 200, 10);
        // top-10 is exactly the target; the drill-down (200·10 rows,
        // capped at 1000) is furthest
        assert!(matches!(
            ranked[0].0.kind,
            RefinementKind::TopK { k: 10, .. }
        ));
        assert!(matches!(
            ranked[2].0.kind,
            RefinementKind::Disaggregate { .. }
        ));
        assert_eq!(ranked[0].1, 10);
    }

    #[test]
    fn percentile_estimate_scales_with_interval() {
        let (schema, base, _) = schema();
        let q = query_with(base, "Germany", "Germany");
        let narrow = Refinement {
            query: q.clone(),
            kind: RefinementKind::Percentile {
                measure_alias: "s".into(),
                lower_pct: 90,
                upper_pct: 100,
            },
            explanation: "narrow".into(),
        };
        let wide = Refinement {
            query: q,
            kind: RefinementKind::Percentile {
                measure_alias: "s".into(),
                lower_pct: 0,
                upper_pct: 100,
            },
            explanation: "wide".into(),
        };
        let ranked = rank_refinements(&schema, vec![wide, narrow], 100, 10);
        assert_eq!(ranked[0].0.explanation, "narrow");
        assert_eq!(ranked[0].1, 10, "10% of 100 rows");
        assert_eq!(ranked[1].1, 100);
    }
}
