//! Human-readable labels for IRIs, used when presenting query
//! interpretations ("Return SUM(Num Applicants) grouped by Country of
//! Destination", Section 5.1).
//!
//! RDF keeps schema annotations alongside the data, so we first look for an
//! `rdfs:label` (or another configured label predicate) on the IRI and fall
//! back to a humanized local name.

use re2x_sparql::{PatternElement, Query, SparqlEndpoint, TermPattern, TriplePattern};

/// The local name of an IRI: everything after the last `#`, `/` or `:`.
pub fn local_name(iri: &str) -> &str {
    let cut = iri
        .rfind(['#', '/'])
        .or_else(|| iri.rfind(':'))
        .map_or(0, |i| i + 1);
    &iri[cut..]
}

/// Turns a local name into words: splits on `_`, `-` and camelCase
/// boundaries, capitalizing each word. `"Country_Origin"` → `"Country
/// Origin"`, `"inContinent"` → `"In Continent"`.
pub fn humanize(name: &str) -> String {
    let mut words: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c == '_' || c == '-' || c == ' ' {
            if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
            prev_lower = false;
        } else {
            if c.is_uppercase() && prev_lower && !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
            current.push(c);
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
        .iter()
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// `SELECT ?l WHERE { <iri> <predicate> ?l }` — one step of a label
/// lookup chain (shared by [`label_of`] and the async bootstrap crawl).
pub fn label_query(iri: &str, predicate: &str) -> Query {
    Query::select_all(vec![PatternElement::Triple(TriplePattern::new(
        TermPattern::Iri(iri.to_owned()),
        predicate.to_owned(),
        TermPattern::Var("l".to_owned()),
    ))])
}

/// Looks up a label for `iri` on the endpoint using the given label
/// predicates, falling back to the humanized local name.
pub fn label_of(endpoint: &dyn SparqlEndpoint, iri: &str, label_predicates: &[String]) -> String {
    for pred in label_predicates {
        if let Ok(solutions) = endpoint.select(&label_query(iri, pred)) {
            if let Some(value) = solutions.value(0, "l") {
                return value.string_form(endpoint.graph());
            }
        }
    }
    humanize(local_name(iri))
}

/// Default label predicates: `rdfs:label` plus the informal `label` IRIs
/// common in exported statistical data.
pub fn default_label_predicates() -> Vec<String> {
    vec![
        re2x_rdf::vocab::rdfs::LABEL.to_owned(),
        "http://www.w3.org/2004/02/skos/core#prefLabel".to_owned(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::{Graph, Literal, Term};
    use re2x_sparql::LocalEndpoint;

    #[test]
    fn local_name_extraction() {
        assert_eq!(local_name("http://ex/ns#CountryOrigin"), "CountryOrigin");
        assert_eq!(
            local_name("http://ex/path/Num_Applicants"),
            "Num_Applicants"
        );
        assert_eq!(local_name("urn:x:thing"), "thing");
        assert_eq!(local_name("plain"), "plain");
    }

    #[test]
    fn humanize_splits_words() {
        assert_eq!(humanize("Country_Origin"), "Country Origin");
        assert_eq!(humanize("inContinent"), "In Continent");
        assert_eq!(humanize("refPeriod"), "Ref Period");
        assert_eq!(humanize("num-applicants"), "Num Applicants");
        assert_eq!(humanize("AGE"), "AGE");
        assert_eq!(humanize("age18to34"), "Age18to34");
    }

    #[test]
    fn label_of_prefers_graph_labels() {
        let mut g = Graph::new();
        g.insert(
            Term::iri("http://ex/p1"),
            Term::iri(re2x_rdf::vocab::rdfs::LABEL),
            Term::from(Literal::simple("Country of Destination")),
        );
        let ep = LocalEndpoint::new(g);
        let preds = default_label_predicates();
        assert_eq!(
            label_of(&ep, "http://ex/p1", &preds),
            "Country of Destination"
        );
        assert_eq!(label_of(&ep, "http://ex/refPeriod", &preds), "Ref Period");
    }
}
