//! Figure 6c: system-bootstrap (Virtual Schema Graph construction) time
//! per dataset. The paper attributes bootstrap cost to schema complexity
//! and endpoint speed, not to observation count — the two Eurostat scales
//! benched here demonstrate the latter dependence is sub-linear. The
//! parallel crawl is timed alongside the serial one to show the fan-out
//! win.

use re2x_bench::micro::Group;
use re2x_cube::{bootstrap, bootstrap_parallel, BootstrapConfig};
use re2x_sparql::LocalEndpoint;

fn main() {
    let group = Group::new("fig6c_bootstrap");

    let cases: Vec<(&str, re2x_datagen::Dataset)> = vec![
        ("eurostat_2k", re2x_datagen::eurostat::generate(2_000, 42)),
        ("eurostat_8k", re2x_datagen::eurostat::generate(8_000, 42)),
        (
            "production_2k",
            re2x_datagen::production::generate(2_000, 42),
        ),
        ("dbpedia_2k", re2x_datagen::dbpedia::generate(2_000, 42)),
    ];
    for (name, mut dataset) in cases {
        let class = dataset.observation_class.clone();
        let endpoint = LocalEndpoint::new(std::mem::take(&mut dataset.graph));
        let config = BootstrapConfig::new(class);
        group.bench(name, || bootstrap(&endpoint, &config).expect("bootstrap"));
        group.bench(&format!("{name}_parallel"), || {
            bootstrap_parallel(&endpoint, &config).expect("bootstrap")
        });
    }
}
