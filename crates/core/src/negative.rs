//! Negative examples — "the user provides instead a set of negative
//! examples" (paper Section 8, future work).
//!
//! A negative example is a keyword naming members the user does *not* want
//! in the result. Applying it to an [`OlapQuery`] resolves the keyword
//! exactly like a positive example and adds `FILTER(?var != <member>)`
//! conditions for every match on a projected level, so all downstream
//! refinements keep honoring the exclusion (filters survive cloning).

use crate::error::Re2xError;
use crate::matching::{matches, MatchMode};
use crate::query_model::OlapQuery;
use re2x_cube::VirtualSchemaGraph;
use re2x_sparql::{CmpOp, Expr, PatternElement, SparqlEndpoint};

/// Outcome of applying negative examples.
#[derive(Debug, Clone)]
pub struct NegativeOutcome {
    /// The query with exclusion filters added.
    pub query: OlapQuery,
    /// Members excluded, as `(keyword, member IRI)` pairs.
    pub excluded: Vec<(String, String)>,
    /// Keywords that matched nothing projected (reported, not fatal: a
    /// negative that cannot appear needs no filter).
    pub inert: Vec<String>,
}

/// Applies negative example keywords to a query.
pub fn exclude_negatives(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    query: &OlapQuery,
    negatives: &[&str],
    mode: MatchMode,
) -> Result<NegativeOutcome, Re2xError> {
    let mut refined = query.clone();
    let mut excluded = Vec::new();
    let mut inert = Vec::new();
    for keyword in negatives {
        let hits = matches(endpoint, schema, keyword, mode)?;
        if hits.is_empty() {
            return Err(Re2xError::NoMatch {
                keyword: (*keyword).to_owned(),
            });
        }
        let mut applied = false;
        for hit in hits {
            let Some(column) = query.column_for_level(hit.binding.level) else {
                continue; // the member's level is not projected: cannot occur
            };
            let pair = ((*keyword).to_owned(), hit.binding.member_iri.clone());
            if excluded.contains(&pair) {
                continue;
            }
            refined.query.wher.push(PatternElement::Filter(Expr::cmp(
                Expr::var(column.var.clone()),
                CmpOp::Ne,
                Expr::Iri(hit.binding.member_iri.clone()),
            )));
            excluded.push(pair);
            applied = true;
        }
        if !applied {
            inert.push((*keyword).to_owned());
        }
    }
    if !excluded.is_empty() {
        let names: Vec<&str> = excluded
            .iter()
            .map(|(k, _)| k.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        refined.description = format!("{} — excluding {}", query.description, names.join(", "));
    }
    Ok(NegativeOutcome {
        query: refined,
        excluded,
        inert,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reolap::{reolap, ReolapConfig};
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_sparql::LocalEndpoint;

    fn env() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut dataset = re2x_datagen::running::generate();
        let graph = std::mem::take(&mut dataset.graph);
        let endpoint = LocalEndpoint::new(graph);
        let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap")
            .schema;
        (endpoint, schema)
    }

    #[test]
    fn negative_member_disappears_from_results() {
        let (endpoint, schema) = env();
        let outcome =
            reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default()).expect("synthesis");
        let query = outcome.queries[0].clone();
        let before = endpoint.select(&query.query).expect("runs");

        let negative = exclude_negatives(&endpoint, &schema, &query, &["France"], MatchMode::Exact)
            .expect("negatives apply");
        assert_eq!(negative.excluded.len(), 1);
        assert!(negative.inert.is_empty());
        assert!(negative.query.description.contains("excluding France"));

        let after = endpoint.select(&negative.query.query).expect("runs");
        assert_eq!(after.len(), before.len() - 1, "one destination removed");
        let graph = endpoint.graph();
        let france = graph.iri_id("http://data.example.org/asylum/member/country/France");
        for row in &after.rows {
            for cell in row.iter().flatten() {
                if let re2x_sparql::Value::Term(id) = cell {
                    assert_ne!(Some(*id), france, "France must not appear");
                }
            }
        }
        // the positive example is still present
        assert!(!negative.query.matching_rows(&after, graph).is_empty());
    }

    #[test]
    fn unprojected_negative_is_inert() {
        let (endpoint, schema) = env();
        let outcome =
            reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default()).expect("synthesis");
        let query = outcome.queries[0].clone();
        // "Male" lives on the sex dimension, which this query does not
        // project — no filter is needed or added
        let negative = exclude_negatives(&endpoint, &schema, &query, &["Male"], MatchMode::Exact)
            .expect("negatives apply");
        assert!(negative.excluded.is_empty());
        assert_eq!(negative.inert, vec!["Male".to_owned()]);
        assert_eq!(negative.query.query, query.query, "query unchanged");
    }

    #[test]
    fn unknown_negative_keyword_is_an_error() {
        let (endpoint, schema) = env();
        let outcome =
            reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default()).expect("synthesis");
        let err = exclude_negatives(
            &endpoint,
            &schema,
            &outcome.queries[0],
            &["Atlantis"],
            MatchMode::Exact,
        )
        .unwrap_err();
        assert!(matches!(err, Re2xError::NoMatch { .. }));
    }

    #[test]
    fn negatives_survive_further_refinement() {
        let (endpoint, schema) = env();
        let outcome =
            reolap(&endpoint, &schema, &["Germany"], &ReolapConfig::default()).expect("synthesis");
        let negative = exclude_negatives(
            &endpoint,
            &schema,
            &outcome.queries[0],
            &["Austria"],
            MatchMode::Exact,
        )
        .expect("negatives apply");
        // drill down afterwards: the exclusion filter is still in WHERE
        let refinement = crate::refine::disaggregate::disaggregate(&schema, &negative.query)
            .into_iter()
            .next()
            .expect("dis available");
        let solutions = endpoint.select(&refinement.query.query).expect("runs");
        let graph = endpoint.graph();
        let austria = graph.iri_id("http://data.example.org/asylum/member/country/Austria");
        for row in &solutions.rows {
            for cell in row.iter().flatten() {
                if let re2x_sparql::Value::Term(id) = cell {
                    assert_ne!(Some(*id), austria);
                }
            }
        }
    }
}
