//! Property suite for [`EndpointStats::merge`]: the sharded gather, the
//! async fan-out and the decorator stack all fold per-backend statistics in
//! whatever order their threads finish, so the fold must form a commutative
//! monoid — associative, commutative, with the default value as identity —
//! including the latency-histogram buckets. `EndpointStats` is `Eq`, so the
//! laws are checked with direct equality (bucket-exact, not approximate).

use re2x_sparql::EndpointStats;
use re2x_testkit::TestRng;
use std::time::Duration;

/// A random statistics record, including a random latency distribution
/// (zero durations, sub-microsecond, and multi-second outliers all land in
/// different histogram buckets).
fn random_stats(rng: &mut TestRng) -> EndpointStats {
    let mut stats = EndpointStats {
        selects: rng.gen_range(0..1000u64),
        asks: rng.gen_range(0..100u64),
        keyword_searches: rng.gen_range(0..100u64),
        rows_returned: rng.gen_range(0..1_000_000u64),
        busy: Duration::from_nanos(rng.gen_range(0..5_000_000_000u64)),
        cache_hits: rng.gen_range(0..500u64),
        cache_misses: rng.gen_range(0..500u64),
        cache_evictions: rng.gen_range(0..50u64),
        ..EndpointStats::default()
    };
    for _ in 0..rng.gen_range(0..40u32) {
        let nanos = match rng.gen_range(0..4u32) {
            0 => 0,
            1 => rng.gen_range(0..1_000u64),
            2 => rng.gen_range(0..10_000_000u64),
            _ => rng.gen_range(0..60_000_000_000u64),
        };
        stats.latency.record(Duration::from_nanos(nanos));
    }
    stats
}

fn merged(a: &EndpointStats, b: &EndpointStats) -> EndpointStats {
    let mut out = *a;
    out.merge(b);
    out
}

#[test]
fn merge_is_commutative() {
    re2x_testkit::check("stats_merge_commutative", |rng| {
        let a = random_stats(rng);
        let b = random_stats(rng);
        assert_eq!(merged(&a, &b), merged(&b, &a));
    });
}

#[test]
fn merge_is_associative() {
    re2x_testkit::check("stats_merge_associative", |rng| {
        let a = random_stats(rng);
        let b = random_stats(rng);
        let c = random_stats(rng);
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    });
}

#[test]
fn default_is_the_identity() {
    re2x_testkit::check("stats_merge_identity", |rng| {
        let a = random_stats(rng);
        let zero = EndpointStats::default();
        assert_eq!(merged(&a, &zero), a);
        assert_eq!(merged(&zero, &a), a);
    });
}

#[test]
fn merge_preserves_histogram_counts_and_buckets() {
    re2x_testkit::check("stats_merge_histogram", |rng| {
        let a = random_stats(rng);
        let b = random_stats(rng);
        let ab = merged(&a, &b);
        assert_eq!(ab.latency.count(), a.latency.count() + b.latency.count());
        // Bucket-wise: every merged bucket is the sum of the operands'
        // (buckets() yields only non-empty buckets, so key by bound).
        let buckets_of = |s: &EndpointStats| -> std::collections::BTreeMap<Duration, u64> {
            s.latency.buckets().collect()
        };
        let (ba, bb, bab) = (buckets_of(&a), buckets_of(&b), buckets_of(&ab));
        let bounds: std::collections::BTreeSet<Duration> = ba
            .keys()
            .chain(bb.keys())
            .chain(bab.keys())
            .copied()
            .collect();
        for bound in bounds {
            let sum = ba.get(&bound).copied().unwrap_or(0) + bb.get(&bound).copied().unwrap_or(0);
            assert_eq!(
                bab.get(&bound).copied().unwrap_or(0),
                sum,
                "bucket {bound:?}"
            );
        }
        assert_eq!(ab.total_queries(), a.total_queries() + b.total_queries());
    });
}

#[test]
fn shard_stats_fold_into_one_report_in_any_order() {
    // The concrete use: folding per-shard stats from a scatter. Any
    // permutation of the fold yields the same report.
    re2x_testkit::check("stats_merge_fold_order", |rng| {
        let shards: Vec<EndpointStats> = (0..rng.gen_range(2..6u32))
            .map(|_| random_stats(rng))
            .collect();
        let forward = shards
            .iter()
            .fold(EndpointStats::default(), |acc, s| merged(&acc, s));
        let backward = shards
            .iter()
            .rev()
            .fold(EndpointStats::default(), |acc, s| merged(&acc, s));
        assert_eq!(forward, backward);
    });
}
