//! endpoint-seam FIRE fixture (linted as crate `core`): direct graph
//! evaluation instead of going through the `SparqlEndpoint` trait.

pub fn sidesteps_the_seam(graph: &Graph, query: &Query) -> usize {
    let mut hits = 0;
    graph.for_each_matching(None, None, None, |_s, _p, _o| hits += 1);
    let _ = evaluate(graph, query);
    let local = LocalEndpoint::new(Graph::new());
    let _ = local;
    hits
}
