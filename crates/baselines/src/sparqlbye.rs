//! A SPARQLByE-style reverse-engineering baseline.
//!
//! SPARQLByE synthesizes the *minimal basic graph pattern* that covers the
//! user's example nodes. Per the paper's comparison (Section 7.2,
//! Figure 10):
//!
//! * it recognizes the immediate characterization of each example node
//!   (e.g. that "Asia" is a member of the Continent level) from the node's
//!   one-hop neighbourhood,
//! * it does **not** navigate connections of two or more hops, so it never
//!   reaches observation nodes from dimension members,
//! * it produces no grouping or aggregation.
//!
//! The output for `⟨"Asia", "2011"⟩` is therefore a flat
//! `SELECT * WHERE { … }` with one disconnected variable per example
//! component — precisely the Figure 10a behaviour RE²xOLAP improves on.

use re2x_sparql::{PatternElement, Query, SparqlEndpoint, SparqlError, TermPattern, TriplePattern};

/// Result of a baseline run: the synthesized queries plus the qualitative
/// flags the Figure 10 comparison reports.
#[derive(Debug, Clone)]
pub struct ByExampleOutcome {
    /// The synthesized queries (one per interpretation combination).
    pub queries: Vec<Query>,
    /// `true` — the baseline never reaches observations.
    pub reaches_observations: bool,
    /// `true` — the baseline never emits aggregates.
    pub has_aggregates: bool,
}

/// Reverse engineers minimal BGPs from example keywords.
///
/// For each keyword: resolve it to member nodes through the full-text
/// index; for every member, emit a variable constrained by (a) the
/// attribute pattern that matched the keyword and (b) one pattern per
/// distinct outgoing IRI-valued predicate of the member (its one-hop
/// characterization). Variables of different keywords are *not* connected.
pub fn reverse_engineer(
    endpoint: &dyn SparqlEndpoint,
    example: &[&str],
    exact: bool,
) -> Result<ByExampleOutcome, SparqlError> {
    let graph = endpoint.graph();
    // per keyword: list of (attribute predicate, literal term, member node)
    let mut per_keyword: Vec<Vec<(String, re2x_rdf::Literal, Vec<String>)>> = Vec::new();
    for keyword in example {
        let mut interpretations = Vec::new();
        for lit in endpoint.keyword_search(keyword, exact) {
            let Some(literal) = graph.term(lit).as_literal().cloned() else {
                continue;
            };
            // members and the predicates pointing at the literal
            let mut by_attr: Vec<(String, Vec<String>)> = Vec::new();
            graph.for_each_matching(None, None, Some(lit), |t| {
                let (Some(member), Some(attr)) =
                    (graph.term(t.s).as_iri(), graph.term(t.p).as_iri())
                else {
                    return;
                };
                match by_attr.iter_mut().find(|(a, _)| a == attr) {
                    Some((_, members)) => members.push(member.to_owned()),
                    None => by_attr.push((attr.to_owned(), vec![member.to_owned()])),
                }
            });
            for (attr, members) in by_attr {
                interpretations.push((attr, literal.clone(), members));
            }
        }
        per_keyword.push(interpretations);
    }

    // one query per choice of attribute interpretation per keyword
    let mut queries = Vec::new();
    let combinations: usize = per_keyword.iter().map(|v| v.len().max(1)).product();
    'combo: for mut index in 0..combinations {
        let mut wher = Vec::new();
        for (k, interpretations) in per_keyword.iter().enumerate() {
            if interpretations.is_empty() {
                continue 'combo; // keyword with no match: no covering query
            }
            let choice = index % interpretations.len();
            index /= interpretations.len();
            let (attr, literal, members) = &interpretations[choice];
            let var = format!("x{k}");
            // the pattern that covers the example component
            wher.push(PatternElement::Triple(TriplePattern::new(
                TermPattern::Var(var.clone()),
                attr.clone(),
                TermPattern::Literal(literal.clone()),
            )));
            // one-hop characterization: distinct outgoing IRI predicates of
            // the matched members
            let mut characterization: Vec<String> = Vec::new();
            for member_iri in members {
                let Some(member) = graph.iri_id(member_iri) else {
                    continue;
                };
                for p in graph.predicates_from(member) {
                    let Some(pred) = graph.term(p).as_iri() else {
                        continue;
                    };
                    if pred == attr || characterization.iter().any(|c| c == pred) {
                        continue;
                    }
                    // only IRI-valued predicates characterize structure
                    let points_to_iri = graph
                        .objects(member, p)
                        .iter()
                        .any(|&o| graph.term(o).is_iri());
                    if points_to_iri {
                        characterization.push(pred.to_owned());
                    }
                }
            }
            for (ci, pred) in characterization.iter().enumerate() {
                wher.push(PatternElement::Triple(TriplePattern::new(
                    TermPattern::Var(var.clone()),
                    pred.clone(),
                    TermPattern::Var(format!("c{k}_{ci}")),
                )));
            }
        }
        if !wher.is_empty() {
            queries.push(Query::select_all(wher));
        }
    }

    Ok(ByExampleOutcome {
        queries,
        reaches_observations: false,
        has_aggregates: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::{LocalEndpoint, QueryForm};

    fn endpoint() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Syria rdfs:label "Syria" ; ex:inContinent ex:Asia .
            ex:Asia rdfs:label "Asia" .
            ex:y2011 rdfs:label "2011" .
            ex:m2011 rdfs:label "May 2011" ; ex:inYear ex:y2011 .
            ex:o1 a ex:Obs ; ex:origin ex:Syria ; ex:refPeriod ex:m2011 ; ex:applicants 10 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        LocalEndpoint::new(g)
    }

    #[test]
    fn produces_disconnected_flat_patterns() {
        let ep = endpoint();
        let outcome = reverse_engineer(&ep, &["Asia", "2011"], true).expect("baseline");
        assert_eq!(outcome.queries.len(), 1);
        let q = &outcome.queries[0];
        assert_eq!(q.form, QueryForm::Select);
        assert!(q.select.is_empty(), "SELECT *");
        assert!(q.group_by.is_empty(), "no aggregation");
        // two disconnected variables, no shared variable between x0 and x1
        let vars = q.pattern_variables();
        assert!(vars.contains(&"x0".to_owned()) && vars.contains(&"x1".to_owned()));
        // the synthesized query runs and covers the example
        let solutions = ep.select(q).expect("runs");
        assert!(!solutions.is_empty());
    }

    #[test]
    fn does_not_reach_observations() {
        let ep = endpoint();
        let outcome = reverse_engineer(&ep, &["Syria"], true).expect("baseline");
        assert!(!outcome.reaches_observations);
        assert!(!outcome.has_aggregates);
        let q = &outcome.queries[0];
        // Syria's one-hop characterization (inContinent) is present …
        let text = re2x_sparql::query_to_sparql(q);
        assert!(text.contains("inContinent"), "{text}");
        // … but nothing reaches the observation or the measure
        assert!(!text.contains("applicants"), "{text}");
        assert!(!text.contains("origin"), "{text}");
    }

    #[test]
    fn unmatched_keyword_yields_no_queries() {
        let ep = endpoint();
        let outcome = reverse_engineer(&ep, &["Atlantis"], true).expect("baseline");
        assert!(outcome.queries.is_empty());
    }

    #[test]
    fn keyword_mode_multiplies_interpretations() {
        let ep = endpoint();
        // "2011" as keyword matches both the year and the month literal
        let outcome = reverse_engineer(&ep, &["2011"], false).expect("baseline");
        assert_eq!(outcome.queries.len(), 2);
    }
}
