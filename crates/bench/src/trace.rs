//! The `trace` experiment: runs the full pipeline — bootstrap, synthesis,
//! execution, refinement — with the tracer enabled over an endpoint with
//! injected latency, and emits a machine-readable phase-attributed cost
//! breakdown (`bench_results/trace.json`).
//!
//! This reproduces the paper's Figs. 6–9 observation in one artifact:
//! under realistic endpoint latency, endpoint time dominates the total
//! pipeline wall time (the emitted `endpoint_fraction` is expected to be
//! ≥ 0.8 with even 1–2 ms of injected latency).
//!
//! The [`TracingEndpoint`] sits directly over the [`LocalEndpoint`] — no
//! cache in between — so the per-phase query counts in the provenance
//! table sum *exactly* to the endpoint's own [`EndpointStats`], which the
//! integration tests assert.

use crate::report::{fmt_duration, Table};
use re2x_cube::{bootstrap, bootstrap_async, bootstrap_parallel, BootstrapConfig};
use re2x_obs::export::{aggregate_spans, events_to_jsonl, json_escape, render_self_time_tree};
use re2x_obs::{PhaseQueryStats, TraceEvent, Tracer};
use re2x_sparql::{EndpointStats, LocalEndpoint, SparqlEndpoint, TracingEndpoint};
use re2xolap::{reolap, RefineOp, ReolapConfig, Session, SessionConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The coarse pipeline phases the span paths are classified into.
pub const PHASES: [&str; 4] = ["bootstrap", "synthesis", "execution", "refinement"];

/// Classifies a span path into one of [`PHASES`] (or `"other"`).
pub fn phase_of(path: &str) -> &'static str {
    // The span path is a '/'-joined chain; the phase is decided by the
    // outermost phase-bearing segment so nested spans (e.g.
    // `session.synthesize/reolap/reolap.validate`) attribute to the phase
    // that initiated them.
    for segment in path.split('/') {
        if segment.starts_with("bootstrap") {
            return "bootstrap";
        }
        if segment.starts_with("session.synthesize") || segment.starts_with("reolap") {
            return "synthesis";
        }
        if segment.starts_with("session.execute") {
            return "execution";
        }
        if segment.starts_with("session.refine") {
            return "refinement";
        }
    }
    "other"
}

/// Serial-vs-async measurement of the query-fan-out hot paths (bootstrap
/// crawl + ReOLAP candidate validation) over the same dataset and
/// injected latency. The async legs are differential-tested to be
/// byte-identical to serial, so the comparison isolates pure overlap.
pub struct AsyncComparison {
    /// Pool threads servicing async tickets.
    pub workers: usize,
    /// Injected per-query endpoint latency.
    pub injected: Duration,
    /// Wall time of serial bootstrap + serial candidate validation.
    pub serial_wall: Duration,
    /// Wall time of `bootstrap_async` + batched candidate validation.
    pub async_wall: Duration,
    /// Endpoint busy time consumed by the async leg (summed across pool
    /// threads).
    pub async_busy: Duration,
    /// Whether the async leg produced a byte-identical Virtual Schema
    /// Graph and synthesis outcome (it must; also enforced by the
    /// differential test suites).
    pub identical: bool,
}

impl AsyncComparison {
    /// Serial wall time over async wall time (> 1 means the fan-out won).
    pub fn speedup(&self) -> f64 {
        if self.async_wall.is_zero() {
            return 0.0;
        }
        self.serial_wall.as_secs_f64() / self.async_wall.as_secs_f64()
    }

    /// Endpoint busy time per wall second of the async leg. A ratio above
    /// 1.0 means the pool genuinely overlapped round-trips: the endpoint
    /// was kept busy on several tickets at once.
    pub fn overlap_ratio(&self) -> f64 {
        if self.async_wall.is_zero() {
            return 0.0;
        }
        self.async_busy.as_secs_f64() / self.async_wall.as_secs_f64()
    }
}

/// Measures [`AsyncComparison`] on the running-example dataset.
pub fn compare_async(injected: Duration, workers: usize) -> AsyncComparison {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph).with_latency(injected);
    let bootstrap_config = BootstrapConfig::new(dataset.observation_class.clone());
    let example = ["Germany", "2014"];

    let serial_start = Instant::now();
    let serial_report = bootstrap(&endpoint, &bootstrap_config).expect("serial bootstrap");
    let serial_outcome = reolap(
        &endpoint,
        &serial_report.schema,
        &example,
        &ReolapConfig::default(),
    )
    .expect("serial synthesis");
    let serial_wall = serial_start.elapsed();

    let busy_before = endpoint.stats().busy;
    let async_start = Instant::now();
    let async_report =
        bootstrap_async(&endpoint, &bootstrap_config, workers).expect("async bootstrap");
    let async_outcome = reolap(
        &endpoint,
        &async_report.schema,
        &example,
        &ReolapConfig {
            validation_workers: workers,
            ..Default::default()
        },
    )
    .expect("async synthesis");
    let async_wall = async_start.elapsed();
    let async_busy = endpoint.stats().busy.saturating_sub(busy_before);

    AsyncComparison {
        workers,
        injected,
        serial_wall,
        async_wall,
        async_busy,
        identical: async_report.schema == serial_report.schema
            && async_outcome.queries == serial_outcome.queries,
    }
}

/// Everything one traced pipeline run produced.
pub struct TraceReport {
    /// Wall-clock time of the whole pipeline (the root span).
    pub pipeline_wall: Duration,
    /// Injected per-query endpoint latency.
    pub injected: Duration,
    /// Endpoint statistics of the run.
    pub stats: EndpointStats,
    /// Query provenance by full span path.
    pub provenance: Vec<(String, PhaseQueryStats)>,
    /// The raw trace event log.
    pub events: Vec<TraceEvent>,
    /// Serial-vs-async fan-out measurement, when the experiment ran it.
    pub async_comparison: Option<AsyncComparison>,
}

impl TraceReport {
    /// Fraction of the pipeline wall time spent inside the endpoint.
    ///
    /// Endpoint busy time is summed across threads, so the fraction can
    /// exceed 1.0 when parallel phases (`bootstrap_parallel`) keep the
    /// endpoint busy on several threads at once — still "endpoint
    /// dominates", only more so.
    pub fn endpoint_fraction(&self) -> f64 {
        if self.pipeline_wall.is_zero() {
            return 0.0;
        }
        self.stats.busy.as_secs_f64() / self.pipeline_wall.as_secs_f64()
    }

    /// Provenance rolled up into the coarse [`PHASES`].
    pub fn phase_rollup(&self) -> Vec<(&'static str, PhaseQueryStats)> {
        let mut rollup: Vec<(&'static str, PhaseQueryStats)> = PHASES
            .iter()
            .map(|&p| (p, PhaseQueryStats::default()))
            .chain(std::iter::once(("other", PhaseQueryStats::default())))
            .collect();
        for (path, stats) in &self.provenance {
            let phase = phase_of(path);
            let slot = rollup
                .iter_mut()
                .find(|(p, _)| *p == phase)
                .expect("phase slot exists");
            slot.1.merge(stats);
        }
        rollup.retain(|(_, s)| s.queries() + s.cache_hits + s.cache_misses > 0);
        rollup
    }

    /// The machine-readable `trace.json` artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"pipeline_wall_us\": {},",
            self.pipeline_wall.as_micros()
        );
        let _ = writeln!(
            out,
            "  \"injected_latency_us\": {},",
            self.injected.as_micros()
        );
        let _ = writeln!(
            out,
            "  \"endpoint_busy_us\": {},",
            self.stats.busy.as_micros()
        );
        let _ = writeln!(
            out,
            "  \"endpoint_queries\": {},",
            self.stats.total_queries()
        );
        let _ = writeln!(
            out,
            "  \"endpoint_fraction\": {:.4},",
            self.endpoint_fraction()
        );
        if let Some(c) = &self.async_comparison {
            let _ = writeln!(
                out,
                "  \"async_comparison\": {{\"workers\": {}, \"serial_wall_us\": {}, \
                 \"async_wall_us\": {}, \"async_busy_us\": {}, \"speedup\": {:.2}, \
                 \"overlap_ratio\": {:.2}, \"identical\": {}}},",
                c.workers,
                c.serial_wall.as_micros(),
                c.async_wall.as_micros(),
                c.async_busy.as_micros(),
                c.speedup(),
                c.overlap_ratio(),
                c.identical,
            );
        }
        out.push_str("  \"phases\": [\n");
        let rollup = self.phase_rollup();
        for (i, (phase, stats)) in rollup.iter().enumerate() {
            let comma = if i + 1 < rollup.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"phase\": \"{}\", \"selects\": {}, \"asks\": {}, \
                 \"keyword_searches\": {}, \"busy_us\": {}, \"p50_us\": {}, \
                 \"p99_us\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{comma}",
                json_escape(phase),
                stats.selects,
                stats.asks,
                stats.keyword_searches,
                stats.busy.as_micros(),
                stats.latency.p50().unwrap_or_default().as_micros(),
                stats.latency.p99().unwrap_or_default().as_micros(),
                stats.cache_hits,
                stats.cache_misses,
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"spans\": [\n");
        let aggs = aggregate_spans(&self.events);
        for (i, agg) in aggs.iter().enumerate() {
            let comma = if i + 1 < aggs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"count\": {}, \"wall_us\": {}, \"self_us\": {}}}{comma}",
                json_escape(&agg.path),
                agg.count,
                agg.wall.as_micros(),
                agg.self_time.as_micros(),
            );
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// The raw event log as JSONL (for `RE2X_TRACE`).
    pub fn events_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// Human-readable summary: per-phase table plus the self-time tree.
    pub fn summary(&self) -> String {
        let mut t = Table::new(["phase", "queries", "endpoint busy", "p50", "p99"]);
        for (phase, stats) in self.phase_rollup() {
            t.row([
                phase.to_owned(),
                stats.queries().to_string(),
                fmt_duration(stats.busy),
                stats.latency.p50().map_or("—".to_owned(), fmt_duration),
                stats.latency.p99().map_or("—".to_owned(), fmt_duration),
            ]);
        }
        let mut out = t.render();
        if let Some(c) = &self.async_comparison {
            let _ = writeln!(
                out,
                "\nasync fan-out ({} workers): bootstrap+validation serial {} vs async {} \
                 → {:.2}x speedup, overlap ratio {:.2}, byte-identical: {}",
                c.workers,
                fmt_duration(c.serial_wall),
                fmt_duration(c.async_wall),
                c.speedup(),
                c.overlap_ratio(),
                c.identical,
            );
        }
        let _ = writeln!(
            out,
            "\npipeline wall {}  endpoint busy {}  endpoint fraction {:.1}%{}\n",
            fmt_duration(self.pipeline_wall),
            fmt_duration(self.stats.busy),
            100.0 * self.endpoint_fraction(),
            if self.endpoint_fraction() > 1.0 {
                " (busy summed across parallel bootstrap threads)"
            } else {
                ""
            },
        );
        out.push_str("Self-time tree:\n\n");
        out.push_str(&render_self_time_tree(&self.events));
        out
    }
}

/// Runs the traced end-to-end pipeline on the running-example dataset with
/// `injected` per-query endpoint latency.
pub fn run(injected: Duration) -> TraceReport {
    let tracer = Tracer::enabled();
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    // Tracing sits directly over the local endpoint — no cache — so the
    // provenance table reconciles exactly with EndpointStats.
    let endpoint = TracingEndpoint::new(
        LocalEndpoint::new(graph).with_latency(injected),
        tracer.clone(),
    );

    let start = Instant::now();
    let pipeline_wall;
    {
        let _pipeline = tracer.span("pipeline");
        let bootstrap_config =
            BootstrapConfig::new(dataset.observation_class.clone()).with_tracer(tracer.clone());
        let report = bootstrap_parallel(&endpoint, &bootstrap_config).expect("bootstrap");

        let session_config = SessionConfig {
            tracer: tracer.clone(),
            ..SessionConfig::default()
        };
        let mut session = Session::new(&endpoint, &report.schema, session_config);
        let outcome = session
            .synthesize(&["Germany", "2014"])
            .expect("synthesis on the running example");
        session
            .choose(outcome.queries[0].clone())
            .expect("query runs");
        let refinements = session
            .refinements(RefineOp::Disaggregate)
            .expect("refinements");
        if let Some(refinement) = refinements.into_iter().next() {
            session.apply(refinement).expect("refined query runs");
        }
        let tops = session.refinements(RefineOp::TopK).expect("top-k");
        if let Some(top) = tops.into_iter().next() {
            session.apply(top).expect("top-k query runs");
        }
        pipeline_wall = start.elapsed();
    }

    TraceReport {
        pipeline_wall,
        injected,
        stats: endpoint.stats(),
        provenance: tracer.provenance(),
        events: tracer.take_events(),
        async_comparison: None,
    }
}

/// [`run`] followed by the serial-vs-async fan-out measurement at the same
/// injected latency, attached to the report (and its `trace.json`).
pub fn run_with_async_comparison(injected: Duration, workers: usize) -> TraceReport {
    let mut report = run(injected);
    report.async_comparison = Some(compare_async(injected, workers));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_classification_covers_the_span_vocabulary() {
        assert_eq!(phase_of("pipeline/bootstrap"), "bootstrap");
        assert_eq!(
            phase_of("pipeline/bootstrap/bootstrap.crawl_dimension"),
            "bootstrap"
        );
        assert_eq!(phase_of("pipeline/session.synthesize"), "synthesis");
        assert_eq!(
            phase_of("pipeline/session.synthesize/reolap/reolap.validate"),
            "synthesis"
        );
        assert_eq!(phase_of("pipeline/session.execute"), "execution");
        assert_eq!(phase_of("pipeline/session.refine"), "refinement");
        assert_eq!(phase_of("(unattributed)"), "other");
    }

    #[test]
    fn traced_run_reconciles_and_emits_json() {
        let report = run(Duration::ZERO);
        // provenance counts sum exactly to the endpoint's own stats
        let attributed: u64 = report.provenance.iter().map(|(_, s)| s.queries()).sum();
        assert_eq!(attributed, report.stats.total_queries());
        assert!(report.stats.total_queries() > 10, "full pipeline ran");
        // every phase of the pipeline issued at least one query
        let rollup = report.phase_rollup();
        for phase in ["bootstrap", "synthesis", "execution"] {
            assert!(
                rollup.iter().any(|(p, s)| *p == phase && s.queries() > 0),
                "phase {phase} missing from {rollup:?}"
            );
        }
        // the artifact is structurally sound
        let json = report.to_json();
        assert!(json.contains("\"endpoint_fraction\""));
        assert!(json.contains("\"phase\": \"bootstrap\""));
        assert!(json.contains("\"spans\""));
        assert!(!json.contains("\"async_comparison\""), "not measured here");
        let summary = report.summary();
        assert!(summary.contains("endpoint fraction"));
        assert!(summary.contains("pipeline"));
    }

    #[test]
    fn async_comparison_is_identical_and_lands_in_the_artifact() {
        // zero injected latency: no speedup claim, but the legs must agree
        // byte-for-byte and the artifact must carry the row
        let comparison = compare_async(Duration::ZERO, 4);
        assert!(comparison.identical, "async legs diverged from serial");
        let mut report = run(Duration::ZERO);
        report.async_comparison = Some(comparison);
        let json = report.to_json();
        assert!(json.contains("\"async_comparison\""));
        assert!(json.contains("\"overlap_ratio\""));
        assert!(json.contains("\"identical\": true"));
        assert!(report.summary().contains("async fan-out"));
    }

    #[test]
    fn async_comparison_overlaps_injected_latency() {
        let comparison = compare_async(Duration::from_millis(2), 8);
        assert!(comparison.identical);
        assert!(
            comparison.speedup() > 1.0,
            "async bootstrap+validation ({:?}) should beat serial ({:?}) at 2 ms",
            comparison.async_wall,
            comparison.serial_wall
        );
    }
}
