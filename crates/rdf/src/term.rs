//! The RDF term model: IRIs, blank nodes, and literals.

use std::fmt;

/// An RDF literal: a lexical form with an optional datatype IRI or language
/// tag (mutually exclusive per the RDF 1.1 specification; a language-tagged
/// literal implicitly has datatype `rdf:langString`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Box<str>,
    /// Datatype IRI, if any. `None` together with `language: None` means a
    /// plain `xsd:string` literal.
    datatype: Option<Box<str>>,
    /// BCP-47 language tag, lowercased.
    language: Option<Box<str>>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn simple(lexical: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into().into_boxed_str(),
            datatype: None,
            language: None,
        }
    }

    /// A literal with an explicit datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into().into_boxed_str(),
            datatype: Some(datatype.into().into_boxed_str()),
            language: None,
        }
    }

    /// A language-tagged literal. The tag is normalized to lowercase.
    pub fn tagged(lexical: impl Into<String>, language: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into().into_boxed_str(),
            datatype: None,
            language: Some(language.into().to_ascii_lowercase().into_boxed_str()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal::typed(value.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(value: f64) -> Self {
        Literal::typed(format_double(value), crate::vocab::xsd::DOUBLE)
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(value: f64) -> Self {
        Literal::typed(format_double(value), crate::vocab::xsd::DECIMAL)
    }

    /// The lexical form.
    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    /// The datatype IRI, if explicitly typed.
    pub fn datatype(&self) -> Option<&str> {
        self.datatype.as_deref()
    }

    /// The language tag, if language-tagged.
    pub fn language(&self) -> Option<&str> {
        self.language.as_deref()
    }

    /// Attempts to interpret the literal as a number.
    ///
    /// Untyped literals are *not* treated as numeric — statistical KGs type
    /// their measure values — but any literal whose datatype is one of the
    /// XSD numeric types is parsed.
    pub fn as_f64(&self) -> Option<f64> {
        let dt = self.datatype.as_deref()?;
        if crate::vocab::xsd::is_numeric(dt) {
            self.lexical.trim().parse::<f64>().ok()
        } else {
            None
        }
    }

    /// `true` if the literal carries one of the XSD numeric datatypes and
    /// parses as a finite number.
    pub fn is_numeric(&self) -> bool {
        self.as_f64().is_some_and(f64::is_finite)
    }
}

/// Formats a double so that round-trips through the lexical form are exact
/// while whole numbers stay readable (`3` rather than `3.0` is avoided —
/// XSD doubles want a decimal point or exponent, so we keep `3.0`).
fn format_double(value: f64) -> String {
    if value.fract() == 0.0 && value.is_finite() && value.abs() < 1e15 {
        format!("{value:.1}")
    } else {
        format!("{value}")
    }
}

/// An RDF term: the subject/predicate/object vocabulary of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI (stored without the surrounding angle brackets).
    Iri(Box<str>),
    /// A blank node with its local label (without the `_:` prefix).
    BlankNode(Box<str>),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Constructs an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into().into_boxed_str())
    }

    /// Constructs a blank-node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::BlankNode(label.into().into_boxed_str())
    }

    /// `true` for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// `true` for [`Term::Literal`].
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// `true` for [`Term::BlankNode`].
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::BlankNode(_))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(iri) => Some(iri),
            _ => None,
        }
    }

    /// The literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(lit) => Some(lit),
            _ => None,
        }
    }
}

impl From<Literal> for Term {
    fn from(value: Literal) -> Self {
        Term::Literal(value)
    }
}

impl fmt::Display for Literal {
    /// N-Triples-compatible rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"")?;
        for c in self.lexical.chars() {
            match c {
                '"' => write!(f, "\\\"")?,
                '\\' => write!(f, "\\\\")?,
                '\n' => write!(f, "\\n")?,
                '\r' => write!(f, "\\r")?,
                '\t' => write!(f, "\\t")?,
                other => write!(f, "{other}")?,
            }
        }
        write!(f, "\"")?;
        if let Some(lang) = &self.language {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

impl fmt::Display for Term {
    /// N-Triples-compatible rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BlankNode(label) => write!(f, "_:{label}"),
            Term::Literal(lit) => write!(f, "{lit}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::xsd;

    #[test]
    fn literal_constructors() {
        let l = Literal::simple("Germany");
        assert_eq!(l.lexical(), "Germany");
        assert_eq!(l.datatype(), None);
        assert_eq!(l.language(), None);

        let l = Literal::typed("42", xsd::INTEGER);
        assert_eq!(l.datatype(), Some(xsd::INTEGER));

        let l = Literal::tagged("Allemagne", "FR");
        assert_eq!(l.language(), Some("fr"));
    }

    #[test]
    fn numeric_parsing_requires_numeric_datatype() {
        assert_eq!(Literal::simple("42").as_f64(), None);
        assert_eq!(Literal::integer(42).as_f64(), Some(42.0));
        assert_eq!(Literal::double(1.5).as_f64(), Some(1.5));
        assert_eq!(Literal::typed("x", xsd::INTEGER).as_f64(), None);
        assert!(!Literal::typed("NaN", xsd::DOUBLE).is_numeric());
    }

    #[test]
    fn double_formatting_round_trips() {
        assert_eq!(Literal::double(3.0).lexical(), "3.0");
        assert_eq!(Literal::double(3.25).lexical(), "3.25");
        assert_eq!(Literal::double(3.25).as_f64(), Some(3.25));
    }

    #[test]
    fn display_is_ntriples_compatible() {
        assert_eq!(Term::iri("http://ex/a").to_string(), "<http://ex/a>");
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
        assert_eq!(
            Term::from(Literal::simple("say \"hi\"\n")).to_string(),
            "\"say \\\"hi\\\"\\n\""
        );
        assert_eq!(
            Term::from(Literal::tagged("Berlin", "de")).to_string(),
            "\"Berlin\"@de"
        );
        assert_eq!(
            Term::from(Literal::integer(7)).to_string(),
            format!("\"7\"^^<{}>", xsd::INTEGER)
        );
    }

    #[test]
    fn term_predicates() {
        assert!(Term::iri("http://ex/a").is_iri());
        assert!(Term::blank("x").is_blank());
        assert!(Term::from(Literal::simple("v")).is_literal());
        assert_eq!(Term::iri("http://ex/a").as_iri(), Some("http://ex/a"));
        assert!(Term::blank("x").as_iri().is_none());
    }
}
