//! The interactive RE²xOLAP session (Algorithm 2).
//!
//! A [`Session`] drives the full workflow: synthesize candidate queries
//! from an example, let the caller pick one, execute it, offer refinements
//! from the ExRef suite, apply one, and repeat — with backtracking to any
//! earlier step. It also keeps the exploration accounting the paper reports
//! in Figure 8c: the cumulative number of *exploration paths* (distinct
//! queries offered) and of result tuples made accessible.

use crate::error::Re2xError;
use crate::query_model::OlapQuery;
use crate::refine::{disaggregate, similar, subset, RefineOp, Refinement};
use crate::reolap::{reolap, ReolapConfig, SynthesisOutcome};
use re2x_cube::VirtualSchemaGraph;
use re2x_sparql::{Solutions, SparqlEndpoint};

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Synthesis configuration.
    pub reolap: ReolapConfig,
    /// `k` for similarity-search refinements.
    pub similarity_k: usize,
    /// Percentile boundaries for the percentile refinement.
    pub percentiles: Vec<u8>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            reolap: ReolapConfig::default(),
            similarity_k: 3,
            percentiles: subset::DEFAULT_PERCENTILES.to_vec(),
        }
    }
}

/// One executed step of the exploration: a query and its results.
#[derive(Debug, Clone)]
pub struct Step {
    /// The executed query.
    pub query: OlapQuery,
    /// Its result set.
    pub solutions: Solutions,
}

/// Cumulative exploration accounting (Figure 8c).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorationMetrics {
    /// Number of user interactions performed (synthesis, executions,
    /// refinement requests).
    pub interactions: u64,
    /// Cumulative number of exploration paths (queries) offered.
    pub paths_offered: u64,
    /// Cumulative number of result tuples made accessible.
    pub tuples_accessible: u64,
}

/// An interactive example-driven exploration session.
pub struct Session<'a> {
    endpoint: &'a dyn SparqlEndpoint,
    schema: &'a VirtualSchemaGraph,
    config: SessionConfig,
    history: Vec<Step>,
    metrics: ExplorationMetrics,
}

impl<'a> Session<'a> {
    /// Starts a session over a bootstrapped schema.
    pub fn new(
        endpoint: &'a dyn SparqlEndpoint,
        schema: &'a VirtualSchemaGraph,
        config: SessionConfig,
    ) -> Self {
        Session {
            endpoint,
            schema,
            config,
            history: Vec::new(),
            metrics: ExplorationMetrics::default(),
        }
    }

    /// The schema this session explores.
    pub fn schema(&self) -> &VirtualSchemaGraph {
        self.schema
    }

    /// Step 1 (Algorithm 2, line 1): synthesize candidate queries from an
    /// example tuple.
    pub fn synthesize(&mut self, example: &[&str]) -> Result<SynthesisOutcome, Re2xError> {
        let outcome = reolap(self.endpoint, self.schema, example, &self.config.reolap)?;
        self.metrics.interactions += 1;
        self.metrics.paths_offered += outcome.queries.len() as u64;
        Ok(outcome)
    }

    /// Executes a chosen query and makes it the current step (Algorithm 2,
    /// line 5).
    pub fn choose(&mut self, query: OlapQuery) -> Result<&Step, Re2xError> {
        let solutions = self.endpoint.select(&query.query)?;
        self.metrics.interactions += 1;
        self.metrics.tuples_accessible += solutions.len() as u64;
        self.history.push(Step { query, solutions });
        Ok(self.history.last().expect("just pushed"))
    }

    /// The current step, if any query has been executed.
    pub fn current(&self) -> Option<&Step> {
        self.history.last()
    }

    /// Full history, oldest first.
    pub fn history(&self) -> &[Step] {
        &self.history
    }

    /// Generates refinements of the current query with one ExRef operation
    /// (Algorithm 2, line 10).
    pub fn refinements(&mut self, op: RefineOp) -> Result<Vec<Refinement>, Re2xError> {
        let Some(step) = self.history.last() else {
            return Err(Re2xError::NotApplicable(
                "no query has been executed yet".to_owned(),
            ));
        };
        let graph = self.endpoint.graph();
        let refinements = match op {
            RefineOp::Disaggregate => disaggregate::disaggregate(self.schema, &step.query),
            RefineOp::TopK => subset::topk(self.schema, &step.query, &step.solutions, graph),
            RefineOp::Percentile => subset::percentile(
                self.schema,
                &step.query,
                &step.solutions,
                graph,
                &self.config.percentiles,
            ),
            RefineOp::Similarity => similar::similarity(
                self.schema,
                &step.query,
                &step.solutions,
                graph,
                self.config.similarity_k,
            ),
        };
        self.metrics.interactions += 1;
        self.metrics.paths_offered += refinements.len() as u64;
        Ok(refinements)
    }

    /// Applies a refinement: executes its query and makes it current.
    pub fn apply(&mut self, refinement: Refinement) -> Result<&Step, Re2xError> {
        self.choose(refinement.query)
    }

    /// Backtracks to the previous step. Returns `false` when already at the
    /// beginning.
    pub fn backtrack(&mut self) -> bool {
        if self.history.len() <= 1 {
            return false;
        }
        self.history.pop();
        true
    }

    /// Exploration accounting so far.
    pub fn metrics(&self) -> ExplorationMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::LocalEndpoint;

    fn fixture() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Germany rdfs:label "Germany" .
            ex:France rdfs:label "France" .
            ex:Sweden rdfs:label "Sweden" .
            ex:Syria rdfs:label "Syria" .
            ex:China rdfs:label "China" .
            ex:y2013 rdfs:label "2013" .
            ex:y2014 rdfs:label "2014" .

            ex:o1 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 300 .
            ex:o2 a ex:Obs ; ex:dest ex:France ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 300 .
            ex:o3 a ex:Obs ; ex:dest ex:Sweden ; ex:origin ex:Syria ; ex:year ex:y2013 ; ex:applicants 200 .
            ex:o4 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:China ; ex:year ex:y2013 ; ex:applicants 100 .
            ex:o5 a ex:Obs ; ex:dest ex:Germany ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 600 .
            ex:o6 a ex:Obs ; ex:dest ex:France ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 300 .
            ex:o7 a ex:Obs ; ex:dest ex:Sweden ; ex:origin ex:Syria ; ex:year ex:y2014 ; ex:applicants 400 .
            ex:o8 a ex:Obs ; ex:dest ex:France ; ex:origin ex:China ; ex:year ex:y2014 ; ex:applicants 300 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        let ep = LocalEndpoint::new(g);
        let report = bootstrap(&ep, &BootstrapConfig::new("http://ex/Obs")).expect("bootstrap");
        (ep, report.schema)
    }

    /// The paper's example workflow: ReOLAP → Disaggregate → Disaggregate →
    /// Similarity → TopK, checking every hand-off.
    #[test]
    fn full_exploration_workflow() {
        let (ep, schema) = fixture();
        let config = SessionConfig {
            similarity_k: 1,
            ..SessionConfig::default()
        };
        let mut session = Session::new(&ep, &schema, config);

        // 1. synthesize from ⟨Germany⟩
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        assert_eq!(outcome.queries.len(), 1, "Germany appears only as destination");
        let step = session.choose(outcome.queries[0].clone()).expect("run");
        assert_eq!(step.solutions.len(), 3, "3 destinations");

        // 2. disaggregate by origin
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        assert_eq!(dis.len(), 2, "origin and year can be added");
        let by_origin = dis
            .into_iter()
            .find(|r| r.explanation.contains("Origin"))
            .expect("origin refinement");
        let step = session.apply(by_origin).expect("run");
        assert_eq!(step.solutions.len(), 5, "5 (dest, origin) combos");

        // 3. disaggregate by year
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        assert_eq!(dis.len(), 1, "only year remains");
        let step = session.apply(dis.into_iter().next().expect("year")).expect("run");
        assert_eq!(step.solutions.len(), 8);

        // 4. similarity: Germany at dest level; origin & year are context
        let sims = session.refinements(RefineOp::Similarity).expect("sim");
        assert_eq!(sims.len(), 4, "one per measure column (4 aggregates)");
        let step = session.apply(sims.into_iter().next().expect("sim")).expect("run");
        assert!(step.solutions.len() < 8, "similarity restricts the combos");
        assert!(!step.solutions.is_empty());

        // 5. top-k on the restricted set
        let tops = session.refinements(RefineOp::TopK).expect("topk");
        assert!(!tops.is_empty());
        let step = session.apply(tops.into_iter().next().expect("top")).expect("run");
        assert!(!step.solutions.is_empty());

        let metrics = session.metrics();
        assert!(metrics.interactions >= 9);
        assert!(metrics.paths_offered >= 8);
        assert!(metrics.tuples_accessible >= 16);
    }

    #[test]
    fn refinements_before_any_query_is_an_error() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let err = session.refinements(RefineOp::TopK).unwrap_err();
        assert!(matches!(err, Re2xError::NotApplicable(_)));
    }

    #[test]
    fn backtracking_restores_previous_step() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let first_len = session.current().expect("step").solutions.len();

        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        session.apply(dis.into_iter().next().expect("one")).expect("run");
        assert_ne!(session.current().expect("step").solutions.len(), first_len);

        assert!(session.backtrack());
        assert_eq!(session.current().expect("step").solutions.len(), first_len);
        assert!(!session.backtrack(), "cannot backtrack past the first step");
    }

    #[test]
    fn every_refinement_result_still_contains_the_example() {
        let (ep, schema) = fixture();
        let mut session = Session::new(&ep, &schema, SessionConfig::default());
        let outcome = session.synthesize(&["Germany"]).expect("synthesis");
        session.choose(outcome.queries[0].clone()).expect("run");
        let dis = session.refinements(RefineOp::Disaggregate).expect("dis");
        session.apply(dis.into_iter().next().expect("one")).expect("run");

        for op in [RefineOp::TopK, RefineOp::Percentile, RefineOp::Similarity] {
            let refinements = session.refinements(op).expect("refine");
            for refinement in refinements {
                let solutions = ep.select(&refinement.query.query).expect("runs");
                let graph = ep.graph();
                assert!(
                    !refinement.query.matching_rows(&solutions, graph).is_empty(),
                    "{op:?} refinement lost the example: {}",
                    refinement.query.sparql()
                );
            }
        }
    }
}
