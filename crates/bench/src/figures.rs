//! The per-table / per-figure experiment functions.
//!
//! Every function regenerates one table or figure of the paper's
//! evaluation (Section 7) and returns the result as rendered text plus, for
//! figures consumed by other experiments, structured data.

use crate::env::PreparedDataset;
use crate::report::{fmt_bytes, fmt_duration, mean, Table};
use re2x_baselines::TABLE1;
use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_datagen::{example_workload_on, running};
use re2x_sparql::AggFunc;
use re2x_sparql::{LocalEndpoint, SparqlEndpoint};
use re2xolap::{
    refine::subset::DEFAULT_PERCENTILES, reolap, OlapQuery, RefineOp, ReolapConfig, Session,
    SessionConfig,
};
use std::time::{Duration, Instant};

/// Input sizes used by the Figure 7–9 experiments.
pub const INPUT_SIZES: [usize; 4] = [1, 2, 3, 4];
/// Example tuples per input size (the paper uses 10).
pub const INPUTS_PER_SIZE: usize = 10;

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: capability matrix of the compared approaches.
pub fn table1() -> String {
    let mut t = Table::new([
        "",
        "RDF",
        "Large KGs",
        "Aggregations",
        "Reformulations",
        "User Input",
        "Partial Input",
    ]);
    let mark = |b: bool| if b { "yes" } else { "—" };
    for c in TABLE1 {
        t.row([
            c.system,
            mark(c.rdf),
            mark(c.large_kgs),
            mark(c.aggregations),
            mark(c.reformulations),
            mark(c.user_input),
            mark(c.partial_input),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Table 2: result set of `⟨"Germany", "2014"⟩` on the running example,
/// interpreting Germany as Country of Destination.
pub fn table2() -> String {
    let mut dataset = running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    let config = ReolapConfig {
        aggregates: vec![AggFunc::Sum],
        ..Default::default()
    };
    let outcome =
        reolap(&endpoint, &schema, &["Germany", "2014"], &config).expect("synthesis succeeds");
    let mut body = String::new();
    for q in &outcome.queries {
        body.push_str(&format!("{}\n\n", q.description));
        let mut query = q.query.clone();
        // Table 2 orders by descending SUM
        query.order_by = vec![re2x_sparql::OrderKey {
            column: q.measure_columns[0].alias.clone(),
            order: re2x_sparql::Order::Desc,
        }];
        let solutions = endpoint.select(&query).expect("query runs");
        // resolve member IRIs to labels for presentation
        let mut t = Table::new(["Country of Destination", "Year", "SUM(# Applicants)"]);
        for row in 0..solutions.len() {
            let label = |col: &str| -> String {
                let value = solutions.value(row, col);
                match value {
                    Some(re2x_sparql::Value::Term(id)) => member_label(&endpoint, *id),
                    Some(v) => v.string_form(endpoint.graph()),
                    None => "—".to_owned(),
                }
            };
            t.row([
                label(&q.group_columns[0].var),
                label(&q.group_columns[1].var),
                label(&q.measure_columns[0].alias),
            ]);
        }
        body.push_str(&t.render());
        body.push('\n');
    }
    body
}

fn member_label(endpoint: &LocalEndpoint, id: re2x_rdf::TermId) -> String {
    let graph = endpoint.graph();
    if let Some(label_p) = graph.iri_id(re2x_rdf::vocab::rdfs::LABEL) {
        if let Some(&lit) = graph.objects(id, label_p).first() {
            if let Some(l) = graph.term(lit).as_literal() {
                return l.lexical().to_owned();
            }
        }
    }
    graph.term(id).to_string()
}

// ---------------------------------------------------------------------------
// Table 3 + Figure 6
// ---------------------------------------------------------------------------

/// Table 3: dataset characteristics as discovered by the bootstrap crawler,
/// against the generator's specification.
pub fn table3(prepared: &[PreparedDataset]) -> String {
    let mut t = Table::new([
        "",
        "|D|",
        "|M|",
        "|H|",
        "|L|",
        "|N_D|",
        "Store (mem)",
        "VGraph (mem)",
        "spec |D|/|M|/|L|/|N_D|",
    ]);
    for p in prepared {
        let stats = p.report.schema.stats();
        let spec = p.dataset.expected;
        t.row([
            p.kind.name().to_owned(),
            stats.dimensions.to_string(),
            stats.measures.to_string(),
            stats.hierarchies.to_string(),
            stats.levels.to_string(),
            stats.members.to_string(),
            fmt_bytes(p.endpoint.graph().heap_bytes()),
            fmt_bytes(stats.vgraph_bytes),
            format!(
                "{}/{}/{}/{}",
                spec.dimensions, spec.measures, spec.levels, spec.members
            ),
        ]);
    }
    t.render()
}

/// Figure 6: (a) observations, (b) triples, (c) bootstrap time.
pub fn fig6(prepared: &[PreparedDataset]) -> String {
    let mut t = Table::new([
        "",
        "# Observations (a)",
        "# Triples (b)",
        "Bootstrap time (c)",
        "Bootstrap queries",
        "Generation time",
    ]);
    for p in prepared {
        t.row([
            p.kind.name().to_owned(),
            p.report.schema.observation_count.to_string(),
            p.endpoint.graph().len().to_string(),
            fmt_duration(p.report.elapsed),
            p.report.endpoint_queries.to_string(),
            fmt_duration(p.generation_time),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// One measured synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisSample {
    /// The example tuple used.
    pub example: Vec<String>,
    /// Synthesis wall-clock time.
    pub elapsed: Duration,
    /// Queries produced.
    pub queries: Vec<OlapQuery>,
    /// Interpretation combinations enumerated (Section 5.3's search-space
    /// measure).
    pub interpretations: usize,
}

/// Per-(dataset, size) synthesis measurements.
#[derive(Debug, Clone)]
pub struct Fig7Series {
    /// Input size (1–4).
    pub size: usize,
    /// Samples (one per workload tuple).
    pub samples: Vec<SynthesisSample>,
}

impl Fig7Series {
    /// Mean synthesis time.
    pub fn mean_time(&self) -> Duration {
        mean(&self.samples.iter().map(|s| s.elapsed).collect::<Vec<_>>())
    }

    /// Mean number of queries produced.
    pub fn mean_queries(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.queries.len()).sum::<usize>() as f64
            / self.samples.len() as f64
    }

    /// Mean number of interpretation combinations enumerated.
    pub fn mean_interpretations(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|s| s.interpretations)
            .sum::<usize>() as f64
            / self.samples.len() as f64
    }
}

/// Runs the Figure 7 workload on one dataset: REOLAP over
/// [`INPUTS_PER_SIZE`] random example tuples per input size.
pub fn fig7_measure(prepared: &PreparedDataset, seed: u64) -> Vec<Fig7Series> {
    let config = ReolapConfig::default();
    let mut series = Vec::new();
    for size in INPUT_SIZES {
        let workload = example_workload_on(
            prepared.endpoint.graph(),
            &prepared.dataset,
            size,
            INPUTS_PER_SIZE,
            seed + size as u64,
        );
        let mut samples = Vec::new();
        for example in workload {
            let refs: Vec<&str> = example.iter().map(String::as_str).collect();
            let start = Instant::now();
            let outcome = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config);
            let elapsed = start.elapsed();
            let (queries, interpretations) = match outcome {
                Ok(o) => (o.queries, o.interpretations_considered),
                // ambiguity explosions count as a sample with 0 queries
                Err(_) => (Vec::new(), 0),
            };
            samples.push(SynthesisSample {
                example,
                elapsed,
                queries,
                interpretations,
            });
        }
        series.push(Fig7Series { size, samples });
    }
    series
}

/// Renders Figure 7a (running time) and 7b (#queries) rows for a set of
/// datasets.
pub fn fig7(results: &[(&str, Vec<Fig7Series>)]) -> String {
    let mut t = Table::new([
        "dataset",
        "input size",
        "avg time (a)",
        "avg #queries (b)",
        "avg #interpretations",
    ]);
    for (name, series) in results {
        for s in series {
            t.row([
                (*name).to_owned(),
                format!("{} Ex.", s.size),
                fmt_duration(s.mean_time()),
                format!("{:.1}", s.mean_queries()),
                format!("{:.1}", s.mean_interpretations()),
            ]);
        }
    }
    t.render()
}

/// Scaling study (Section 5.3's claim, checked directly): synthesis time
/// at several observation counts of the same schema. "Time complexity is
/// independent of the actual number of observations" — the per-scale means
/// should stay flat while the store grows.
pub fn scaling(seed: u64) -> String {
    use crate::env::{prepare, DatasetKind, Scales};
    let mut t = Table::new([
        "observations",
        "triples",
        "avg synthesis time (2 Ex.)",
        "bootstrap time",
    ]);
    for scale in [2_000usize, 10_000, 40_000] {
        let scales = Scales {
            eurostat: scale,
            production: scale,
            dbpedia: scale,
        };
        let prepared = prepare(DatasetKind::Eurostat, &scales, seed);
        let workload = example_workload_on(
            prepared.endpoint.graph(),
            &prepared.dataset,
            2,
            INPUTS_PER_SIZE,
            seed,
        );
        let config = ReolapConfig::default();
        let mut times = Vec::new();
        for tuple in &workload {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            let start = Instant::now();
            let _ = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config);
            times.push(start.elapsed());
        }
        t.row([
            scale.to_string(),
            prepared.endpoint.graph().len().to_string(),
            fmt_duration(mean(&times)),
            fmt_duration(prepared.report.elapsed),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Figure 8 (a, b) — Orig / Dis.1 / Dis.2 execution
// ---------------------------------------------------------------------------

/// Measurements for one disaggregation depth.
#[derive(Debug, Clone, Default)]
pub struct DepthStats {
    /// Query execution times.
    pub times: Vec<Duration>,
    /// Result-set sizes.
    pub tuples: Vec<usize>,
}

/// Per-(dataset, size) Figure 8 measurements: index 0 = Orig., 1 = Dis.1,
/// 2 = Dis.2.
#[derive(Debug, Clone)]
pub struct Fig8Series {
    /// Input size.
    pub size: usize,
    /// Stats per disaggregation depth (0..=2).
    pub depths: [DepthStats; 3],
}

/// Executes every synthesized query of the Figure 7 samples at
/// disaggregation depths 0–2, measuring endpoint time and result size.
/// Also returns the queries+solutions at each depth for the Figure 9
/// refinement experiment.
pub type ExecutedQuery = (OlapQuery, re2x_sparql::Solutions);

/// Result sets larger than this are excluded from the Figure 9 refinement
/// pool — the analog of the paper's 15-minute endpoint timeout, which the
/// DBpedia M-to-N blow-ups trigger for similarity search (§7.1).
pub const FIG9_ROW_CAP: usize = 120_000;

/// Runs Figure 8 on one dataset, returning the rendered series plus the
/// executed Dis.1/Dis.2 queries for reuse.
pub fn fig8_measure(
    prepared: &PreparedDataset,
    fig7: &[Fig7Series],
) -> (Vec<Fig8Series>, Vec<ExecutedQuery>) {
    let schema = &prepared.report.schema;
    let mut out = Vec::new();
    let mut executed = Vec::new();
    for series in fig7 {
        let mut depths: [DepthStats; 3] = Default::default();
        for sample in &series.samples {
            // the paper's user picks one interpretation; we take the first
            let Some(query) = sample.queries.first() else {
                continue;
            };
            let mut current = query.clone();
            #[allow(clippy::needless_range_loop)] // depth doubles as loop state
            for depth in 0..3 {
                if depth > 0 {
                    let refinements =
                        re2xolap::refine::disaggregate::disaggregate(schema, &current);
                    let Some(r) = refinements.into_iter().next() else {
                        break;
                    };
                    current = r.query;
                }
                let start = Instant::now();
                let solutions = match prepared.endpoint.select(&current.query) {
                    Ok(s) => s,
                    Err(_) => break,
                };
                depths[depth].times.push(start.elapsed());
                depths[depth].tuples.push(solutions.len());
                if depth > 0 && solutions.len() <= FIG9_ROW_CAP {
                    executed.push((current.clone(), solutions));
                }
            }
        }
        out.push(Fig8Series {
            size: series.size,
            depths,
        });
    }
    (out, executed)
}

/// Renders Figure 8a (execution time) and 8b (#result tuples).
pub fn fig8(results: &[(&str, Vec<Fig8Series>)]) -> String {
    let mut t = Table::new([
        "dataset",
        "input size",
        "Orig. time",
        "Dis.1 time",
        "Dis.2 time",
        "Orig. #tuples",
        "Dis.1 #tuples",
        "Dis.2 #tuples",
    ]);
    for (name, series) in results {
        for s in series {
            let avg_tuples = |d: &DepthStats| {
                if d.tuples.is_empty() {
                    "—".to_owned()
                } else {
                    format!(
                        "{:.0}",
                        d.tuples.iter().sum::<usize>() as f64 / d.tuples.len() as f64
                    )
                }
            };
            let avg_time = |d: &DepthStats| {
                if d.times.is_empty() {
                    "—".to_owned()
                } else {
                    fmt_duration(mean(&d.times))
                }
            };
            t.row([
                (*name).to_owned(),
                format!("{} Ex.", s.size),
                avg_time(&s.depths[0]),
                avg_time(&s.depths[1]),
                avg_time(&s.depths[2]),
                avg_tuples(&s.depths[0]),
                avg_tuples(&s.depths[1]),
                avg_tuples(&s.depths[2]),
            ]);
        }
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Figure 8c — exploration workflow accounting
// ---------------------------------------------------------------------------

/// Figure 8c: the cumulative exploration paths and accessible tuples over
/// the paper's 5-interaction workflow (ReOLAP → Dis → Dis → Sim → TopK) on
/// the Eurostat dataset with a single example entity.
pub fn fig8c(prepared: &PreparedDataset, seed: u64) -> String {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 1, 1, seed);
    let example: Vec<&str> = workload[0].iter().map(String::as_str).collect();
    let mut session = Session::new(
        &prepared.endpoint,
        &prepared.report.schema,
        SessionConfig::default(),
    );
    let mut t = Table::new([
        "interaction",
        "operation",
        "paths offered (cum.)",
        "tuples (cum.)",
    ]);
    let outcome = session.synthesize(&example).expect("synthesis");
    let mut record = |session: &Session, step: usize, op: &str| {
        let m = session.metrics();
        t.row([
            step.to_string(),
            op.to_owned(),
            m.paths_offered.to_string(),
            m.tuples_accessible.to_string(),
        ]);
    };
    record(&session, 1, &format!("ReOLAP({:?})", example));
    session
        .choose(outcome.queries.first().expect("≥1 interpretation").clone())
        .expect("runs");
    for (step, op) in [
        (2, RefineOp::Disaggregate),
        (3, RefineOp::Disaggregate),
        (4, RefineOp::Similarity),
        (5, RefineOp::TopK),
    ] {
        let refinements = session.refinements(op).expect("refinements");
        record(&session, step, &format!("{op:?}"));
        if let Some(r) = refinements.into_iter().next() {
            session.apply(r).expect("runs");
        }
    }
    record(&session, 6, "final");
    t.render()
}

// ---------------------------------------------------------------------------
// Figure 9 — refinement generation
// ---------------------------------------------------------------------------

/// Per-method refinement measurements.
#[derive(Debug, Clone, Default)]
pub struct RefineStats {
    /// Generation times.
    pub times: Vec<Duration>,
    /// Number of refinements produced.
    pub counts: Vec<usize>,
}

/// Runs the three post-hoc refinement methods over executed queries
/// (Dis.1/Dis.2 from Figure 8), measuring generation time and output count.
pub fn fig9_measure(
    prepared: &PreparedDataset,
    executed: &[ExecutedQuery],
    similarity_k: usize,
) -> [RefineStats; 3] {
    let schema = &prepared.report.schema;
    let graph = prepared.endpoint.graph();
    let mut stats: [RefineStats; 3] = Default::default();
    for (query, solutions) in executed {
        let start = Instant::now();
        let topk = re2xolap::refine::subset::topk(schema, query, solutions, graph);
        stats[0].times.push(start.elapsed());
        stats[0].counts.push(topk.len());

        let start = Instant::now();
        let perc = re2xolap::refine::subset::percentile(
            schema,
            query,
            solutions,
            graph,
            &DEFAULT_PERCENTILES,
        );
        stats[1].times.push(start.elapsed());
        stats[1].counts.push(perc.len());

        let start = Instant::now();
        let sim =
            re2xolap::refine::similar::similarity(schema, query, solutions, graph, similarity_k);
        stats[2].times.push(start.elapsed());
        stats[2].counts.push(sim.len());
    }
    stats
}

/// Renders Figure 9a (generation time) and 9b (#refinements).
pub fn fig9(results: &[(&str, [RefineStats; 3])]) -> String {
    let mut t = Table::new([
        "dataset",
        "method",
        "avg time (a)",
        "avg #refinements (b)",
        "queries refined",
    ]);
    for (name, stats) in results {
        for (mi, method) in ["Top-k", "Perc.", "Sim."].iter().enumerate() {
            let s = &stats[mi];
            let avg_count = if s.counts.is_empty() {
                "—".to_owned()
            } else {
                format!(
                    "{:.1}",
                    s.counts.iter().sum::<usize>() as f64 / s.counts.len() as f64
                )
            };
            t.row([
                (*name).to_owned(),
                (*method).to_owned(),
                fmt_duration(mean(&s.times)),
                avg_count,
                s.times.len().to_string(),
            ]);
        }
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Endpoint latency profile (cached decorator stack)
// ---------------------------------------------------------------------------

/// Per-phase endpoint profile under injected latency: query counts, cache
/// hit rates, and p50/p99 latency quantiles from the endpoint's
/// [`re2x_sparql::LatencyHistogram`], measured through the decorator stack
/// `LocalEndpoint (+latency) → CachingEndpoint`.
///
/// Each phase is run cold (empty cache) and warm (same work repeated); the
/// warm rows show the caching layer absorbing endpoint round-trips —
/// the paper attributes most of the bootstrap and validation cost to
/// exactly those round-trips.
pub fn latency_profile(seed: u64) -> String {
    use re2x_cube::bootstrap_parallel;
    use re2x_sparql::CachingEndpoint;

    let injected = Duration::from_millis(1);
    let mut dataset = re2x_datagen::eurostat::generate(2_000, seed);
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = CachingEndpoint::new(LocalEndpoint::new(graph).with_latency(injected));
    let config = BootstrapConfig::new(dataset.observation_class.clone());

    let mut t = Table::new([
        "phase",
        "endpoint queries",
        "cache hits",
        "cache misses",
        "p50",
        "p99",
    ]);
    let fmt_quantile = |q: Option<Duration>| q.map_or("—".to_owned(), fmt_duration);
    let mut record = |phase: &str| {
        let stats = endpoint.stats();
        t.row([
            phase.to_owned(),
            stats.total_queries().to_string(),
            stats.cache_hits.to_string(),
            stats.cache_misses.to_string(),
            fmt_quantile(stats.latency.p50()),
            fmt_quantile(stats.latency.p99()),
        ]);
        endpoint.reset_stats();
    };

    let report = bootstrap_parallel(&endpoint, &config).expect("bootstrap");
    record("bootstrap (cold)");
    bootstrap_parallel(&endpoint, &config).expect("bootstrap");
    record("bootstrap (warm)");

    let schema = report.schema;
    let workload = example_workload_on(endpoint.graph(), &dataset, 2, 5, seed);
    let reolap_config = ReolapConfig::default();
    let synthesize_all = || {
        for tuple in &workload {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            let _ = reolap(&endpoint, &schema, &refs, &reolap_config);
        }
    };
    synthesize_all();
    record("synthesis (cold)");
    synthesize_all();
    record("synthesis (warm)");

    format!(
        "injected endpoint latency: {}\n\n{}",
        fmt_duration(injected),
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Figure 10 — comparison with SPARQLByE
// ---------------------------------------------------------------------------

/// Figure 10: the queries SPARQLByE-style reverse engineering and ReOLAP
/// produce for the same example on the running-example KG.
pub fn fig10() -> String {
    let mut dataset = running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    let example = ["Asia", "2014"];

    let mut body = String::new();
    body.push_str(&format!("Example: {example:?}\n\n"));
    body.push_str("(a) SPARQLByE-style minimal BGP (flat, no observations, no aggregates):\n\n");
    let baseline =
        re2x_baselines::reverse_engineer(&endpoint, &example, true).expect("baseline runs");
    match baseline.queries.first() {
        Some(q) => body.push_str(&re2x_sparql::query_to_sparql(q)),
        None => body.push_str("(no query)"),
    }
    body.push_str("\n\n(b) ReOLAP (connects members to observations, aggregates measures):\n\n");
    let config = ReolapConfig {
        aggregates: vec![AggFunc::Sum],
        ..Default::default()
    };
    let outcome = reolap(&endpoint, &schema, &example, &config).expect("synthesis");
    match outcome.queries.first() {
        Some(q) => {
            body.push_str(&q.sparql());
            body.push_str(&format!("\n\n   described as: {}", q.description));
        }
        None => body.push_str("(no query)"),
    }
    body.push('\n');
    body
}
