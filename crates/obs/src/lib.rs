//! # re2x-obs — observability for the RE2X pipeline
//!
//! A zero-dependency tracing and metrics layer:
//!
//! * [`Tracer`] — span-based tracer with RAII guards ([`SpanGuard`]),
//!   per-thread nesting, wall-/self-time accounting, and explicit
//!   cross-thread parenting ([`SpanHandle`]) for scoped worker threads;
//! * query provenance — [`Tracer::record_query`] attributes every SPARQL
//!   query to the pipeline phase (innermost span path) that issued it,
//!   with per-phase counts and latency quantiles ([`PhaseQueryStats`]);
//! * [`Metrics`] — a registry of named counters, gauges, and latency
//!   histograms built on the fixed-bucket [`LatencyHistogram`] (moved
//!   here from `re2x-sparql`, which re-exports it);
//! * exporters ([`export`]) — JSONL event log, Prometheus-style text
//!   exposition, and a flamegraph-style self-time tree.
//!
//! The crate is a dependency *leaf*: every layer of the workspace,
//! including `re2x-sparql` at the bottom of the stack, can depend on it
//! without cycles. A disabled tracer ([`Tracer::disabled`], the default)
//! costs nothing — no allocation, no locking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod sync;
pub mod tracer;

pub use export::{
    aggregate_spans, event_to_json, events_to_jsonl, json_escape, prometheus_exposition,
    render_self_time_tree, SpanAgg,
};
pub use hist::LatencyHistogram;
pub use metrics::{label, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use sync::{lock_or_recover, wait_or_recover};
pub use tracer::{
    AdoptGuard, PhaseQueryStats, QueryKind, SpanGuard, SpanHandle, TraceEvent, Tracer, UNATTRIBUTED,
};
