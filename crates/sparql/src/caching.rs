//! A memoizing endpoint decorator.
//!
//! ReOLAP's candidate validation (Algorithm 1) and the bootstrap crawler
//! issue many near-duplicate `ASK`/`SELECT` probes per keyword tuple, and
//! the paper attributes most of both phases' cost to endpoint round-trips.
//! [`CachingEndpoint`] wraps any [`SparqlEndpoint`] and memoizes query
//! results in a bounded LRU keyed by the *pretty-printed canonical query
//! text* ([`query_to_sparql`]): two structurally identical queries share a
//! key regardless of how they were built, and the key is exactly what a
//! remote endpoint would receive, so caching is transparent to the seam.
//!
//! Hit/miss/eviction counters are folded into the [`EndpointStats`]
//! snapshot of the wrapped endpoint, so one `stats()` call describes the
//! whole decorator stack (Local → Caching → future Sharded).

use crate::ast::Query;
use crate::endpoint::{EndpointStats, SparqlEndpoint};
use crate::error::SparqlError;
use crate::pretty::query_to_sparql;
use crate::value::Solutions;
use re2x_obs::{lock_or_recover, Tracer};
use re2x_rdf::{Graph, TermId};
use std::collections::HashMap;
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// A bounded least-recently-used map from canonical query text to a cached
/// result. Intrusive doubly-linked order over a slot vector: `get` and
/// `insert` are O(1) amortized.
struct Lru<V> {
    capacity: usize,
    map: HashMap<String, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

struct Slot<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

impl<V: Clone> Lru<V> {
    fn new(capacity: usize) -> Lru<V> {
        assert!(capacity > 0, "cache capacity must be positive");
        Lru {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Looks a key up, marking it most recently used.
    fn get(&mut self, key: &str) -> Option<V> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot].value.clone())
    }

    /// Inserts (or refreshes) an entry; returns `true` if a *different*
    /// entry was evicted to make room.
    fn insert(&mut self, key: String, value: V) -> bool {
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

struct CacheState {
    selects: Lru<Solutions>,
    asks: Lru<bool>,
    keywords: Lru<Vec<TermId>>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A [`SparqlEndpoint`] decorator memoizing `SELECT`, `ASK`, and
/// keyword-search results in bounded LRU caches.
///
/// Results are cached per canonical query text; errors are never cached.
/// The decorator assumes the underlying data does not change while it is
/// in place — after updating the store, call [`CachingEndpoint::clear`]
/// (mirroring how the schema requires a fresh bootstrap after structural
/// changes).
pub struct CachingEndpoint<E> {
    inner: E,
    // lock-order: sparql.cache.state
    state: Mutex<CacheState>,
    tracer: Tracer,
}

impl<E: SparqlEndpoint> CachingEndpoint<E> {
    /// Default per-cache entry bound: large enough for every distinct query
    /// of a bootstrap crawl plus an interactive session on the paper's
    /// datasets, small enough to bound memory under adversarial workloads.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Wraps an endpoint with the default capacity.
    pub fn new(inner: E) -> CachingEndpoint<E> {
        CachingEndpoint::with_capacity(inner, Self::DEFAULT_CAPACITY)
    }

    /// Wraps an endpoint with an explicit per-cache entry bound.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn with_capacity(inner: E, capacity: usize) -> CachingEndpoint<E> {
        CachingEndpoint {
            inner,
            state: Mutex::new(CacheState {
                selects: Lru::new(capacity),
                asks: Lru::new(capacity),
                keywords: Lru::new(capacity),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            tracer: Tracer::disabled(),
        }
    }

    /// Attributes every cache hit/miss to the pipeline phase (innermost
    /// span of `tracer` on the calling thread) that issued the query.
    pub fn with_tracer(mut self, tracer: Tracer) -> CachingEndpoint<E> {
        self.tracer = tracer;
        self
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Number of currently cached entries across all three caches.
    pub fn cached_entries(&self) -> usize {
        let state = lock_or_recover("sparql.cache.state", &self.state);
        state.selects.len() + state.asks.len() + state.keywords.len()
    }

    /// Drops every cached entry (counters are kept; use
    /// [`SparqlEndpoint::reset_stats`] to zero those). Required after the
    /// underlying store changes.
    pub fn clear(&self) {
        let mut state = lock_or_recover("sparql.cache.state", &self.state);
        state.selects.clear();
        state.asks.clear();
        state.keywords.clear();
    }

    /// Snapshot of the merged statistics (inherent mirror of the trait
    /// method, callable without importing the trait).
    pub fn stats(&self) -> EndpointStats {
        let mut stats = self.inner.stats();
        let state = lock_or_recover("sparql.cache.state", &self.state);
        stats.merge(&EndpointStats {
            cache_hits: state.hits,
            cache_misses: state.misses,
            cache_evictions: state.evictions,
            ..EndpointStats::default()
        });
        stats
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for CachingEndpoint<E> {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        let key = query_to_sparql(query);
        {
            let mut state = lock_or_recover("sparql.cache.state", &self.state);
            if let Some(cached) = state.selects.get(&key) {
                state.hits += 1;
                drop(state);
                self.tracer.record_cache(true);
                return Ok(cached);
            }
            state.misses += 1;
        }
        self.tracer.record_cache(false);
        // the lock is released while the inner endpoint evaluates, so
        // concurrent misses proceed in parallel (at worst re-evaluating)
        let solutions = self.inner.select(query)?;
        let mut state = lock_or_recover("sparql.cache.state", &self.state);
        let evicted = state.selects.insert(key, solutions.clone());
        if evicted {
            state.evictions += 1;
        }
        drop(state);
        if evicted {
            self.tracer.counter_add("cache.evictions", 1);
        }
        Ok(solutions)
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        let key = query_to_sparql(query);
        {
            let mut state = lock_or_recover("sparql.cache.state", &self.state);
            if let Some(cached) = state.asks.get(&key) {
                state.hits += 1;
                drop(state);
                self.tracer.record_cache(true);
                return Ok(cached);
            }
            state.misses += 1;
        }
        self.tracer.record_cache(false);
        let answer = self.inner.ask(query)?;
        let mut state = lock_or_recover("sparql.cache.state", &self.state);
        let evicted = state.asks.insert(key, answer);
        if evicted {
            state.evictions += 1;
        }
        drop(state);
        if evicted {
            self.tracer.counter_add("cache.evictions", 1);
        }
        Ok(answer)
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        // '\u{1}' cannot occur in a keyword's normalized form, keeping the
        // exact/substring namespaces disjoint
        let key = format!("{exact}\u{1}{keyword}");
        {
            let mut state = lock_or_recover("sparql.cache.state", &self.state);
            if let Some(cached) = state.keywords.get(&key) {
                state.hits += 1;
                drop(state);
                self.tracer.record_cache(true);
                return cached;
            }
            state.misses += 1;
        }
        self.tracer.record_cache(false);
        let hits = self.inner.keyword_search(keyword, exact);
        let mut state = lock_or_recover("sparql.cache.state", &self.state);
        let evicted = state.keywords.insert(key, hits.clone());
        if evicted {
            state.evictions += 1;
        }
        drop(state);
        if evicted {
            self.tracer.counter_add("cache.evictions", 1);
        }
        hits
    }

    fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    fn stats(&self) -> EndpointStats {
        CachingEndpoint::stats(self)
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
        let mut state = lock_or_recover("sparql.cache.state", &self.state);
        state.hits = 0;
        state.misses = 0;
        state.evictions = 0;
    }

    fn tracer(&self) -> Option<&Tracer> {
        if self.tracer.is_enabled() {
            Some(&self.tracer)
        } else {
            self.inner.tracer()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::LocalEndpoint;
    use re2x_rdf::io::parse_turtle;

    fn caching_endpoint() -> CachingEndpoint<LocalEndpoint> {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany ; ex:value 5 .
            ex:o2 ex:dest ex:France ; ex:value 7 .
            ex:Germany ex:label "Germany" .
            ex:France ex:label "France" .
            "#,
            &mut g,
        )
        .expect("parse");
        CachingEndpoint::new(LocalEndpoint::new(g))
    }

    #[test]
    fn repeated_select_hits_the_cache() {
        let ep = caching_endpoint();
        let text = "SELECT ?d WHERE { ?o <http://ex/dest> ?d }";
        let first = ep.select_text(text).expect("query");
        let second = ep.select_text(text).expect("query");
        assert_eq!(first, second);
        let stats = ep.stats();
        assert_eq!(stats.selects, 1, "inner answered once");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn ask_and_keyword_results_are_memoized() {
        let ep = caching_endpoint();
        for _ in 0..3 {
            assert!(ep
                .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
                .expect("ask"));
            assert_eq!(ep.keyword_search("germany", true).len(), 1);
        }
        let stats = ep.stats();
        assert_eq!(stats.asks, 1);
        assert_eq!(stats.keyword_searches, 1);
        assert_eq!(stats.cache_hits, 4);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn exact_and_substring_keyword_lookups_do_not_collide() {
        let ep = caching_endpoint();
        assert!(ep.keyword_search("ger", true).is_empty());
        // a substring search for the same keyword is a different cache key
        assert!(ep.keyword_search("ger", false).is_empty());
        assert_eq!(ep.stats().keyword_searches, 2);
    }

    #[test]
    fn structurally_identical_queries_share_an_entry() {
        let ep = caching_endpoint();
        // same canonical form, different surface text
        let a = "SELECT ?d WHERE { ?o <http://ex/dest> ?d }";
        let b = "SELECT  ?d  WHERE  {  ?o  <http://ex/dest>  ?d  }";
        let _ = ep.select_text(a).expect("query");
        let _ = ep.select_text(b).expect("query");
        assert_eq!(ep.stats().selects, 1);
        assert_eq!(ep.stats().cache_hits, 1);
    }

    #[test]
    fn lru_bound_evicts_and_counts() {
        let ep = {
            let mut g = Graph::new();
            parse_turtle(
                "@prefix ex: <http://ex/> . ex:o1 ex:dest ex:Germany .",
                &mut g,
            )
            .expect("parse");
            CachingEndpoint::with_capacity(LocalEndpoint::new(g), 2)
        };
        for i in 0..4 {
            let _ = ep
                .select_text(&format!("SELECT ?d WHERE {{ ?o <http://ex/p{i}> ?d }}"))
                .expect("query");
        }
        let stats = ep.stats();
        assert_eq!(stats.cache_misses, 4);
        assert_eq!(stats.cache_evictions, 2);
        // the two oldest entries are gone: re-asking them misses again
        let _ = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/p0> ?d }")
            .expect("query");
        assert_eq!(ep.stats().cache_misses, 5);
        // while the newest is still cached
        let _ = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/p3> ?d }")
            .expect("query");
        assert_eq!(ep.stats().cache_hits, 1);
    }

    #[test]
    fn lru_get_refreshes_recency() {
        let mut lru: Lru<u32> = Lru::new(2);
        assert!(!lru.insert("a".into(), 1));
        assert!(!lru.insert("b".into(), 2));
        assert_eq!(lru.get("a"), Some(1)); // a becomes MRU
        assert!(lru.insert("c".into(), 3)); // evicts b, not a
        assert_eq!(lru.get("a"), Some(1));
        assert_eq!(lru.get("b"), None);
        assert_eq!(lru.get("c"), Some(3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinserting_a_key_updates_without_eviction() {
        let mut lru: Lru<u32> = Lru::new(2);
        lru.insert("a".into(), 1);
        lru.insert("a".into(), 2);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get("a"), Some(2));
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let ep = caching_endpoint();
        let text = "SELECT ?d WHERE { ?o <http://ex/dest> ?d }";
        let _ = ep.select_text(text).expect("query");
        assert!(ep.cached_entries() > 0);
        ep.clear();
        assert_eq!(ep.cached_entries(), 0);
        let _ = ep.select_text(text).expect("query");
        let stats = ep.stats();
        assert_eq!(stats.selects, 2, "second call re-evaluates");
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn reset_stats_zeroes_counters_but_keeps_entries() {
        let ep = caching_endpoint();
        let text = "SELECT ?d WHERE { ?o <http://ex/dest> ?d }";
        let _ = ep.select_text(text).expect("query");
        ep.reset_stats();
        assert_eq!(ep.stats(), EndpointStats::default());
        let _ = ep.select_text(text).expect("query");
        assert_eq!(ep.stats().cache_hits, 1, "entry survived the reset");
    }

    #[test]
    fn cache_outcomes_are_attributed_to_the_open_span() {
        let tracer = re2x_obs::Tracer::enabled();
        let ep = caching_endpoint().with_tracer(tracer.clone());
        let text = "SELECT ?d WHERE { ?o <http://ex/dest> ?d }";
        {
            let _warm = tracer.span("warmup");
            let _ = ep.select_text(text).expect("query");
        }
        {
            let _probe = tracer.span("probe");
            let _ = ep.select_text(text).expect("query");
            let _ = ep.select_text(text).expect("query");
        }
        let prov = tracer.provenance();
        let by_path: std::collections::BTreeMap<&str, _> =
            prov.iter().map(|(k, v)| (k.as_str(), v)).collect();
        assert_eq!(by_path["warmup"].cache_misses, 1);
        assert_eq!(by_path["warmup"].cache_hits, 0);
        assert_eq!(by_path["probe"].cache_hits, 2);
        assert_eq!(by_path["probe"].cache_misses, 0);
        // per-phase outcomes sum to the aggregate counters
        let stats = ep.stats();
        let (hits, misses) = prov.iter().fold((0, 0), |(h, m), (_, s)| {
            (h + s.cache_hits, m + s.cache_misses)
        });
        assert_eq!(hits, stats.cache_hits);
        assert_eq!(misses, stats.cache_misses);
    }

    #[test]
    fn concurrent_access_stays_consistent() {
        let ep = caching_endpoint();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..20 {
                        let q = format!("SELECT ?d WHERE {{ ?o <http://ex/q{}> ?d }}", i % 5);
                        let _ = ep.select_text(&q).expect("query");
                    }
                });
            }
        });
        let stats = ep.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, 80);
        // every distinct query was evaluated at least once, and no more
        // often than once per racing thread
        assert!(stats.selects >= 5 && stats.selects <= 20, "{stats:?}");
    }
}
