//! End-to-end reproduction checks across crates: the running example must
//! yield the paper's Table 2 numbers through the complete stack
//! (generator → store → SPARQL engine → bootstrap → ReOLAP → session), and
//! the Figure 10 comparison properties must hold.

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_sparql::{CachingEndpoint, EndpointStats, LocalEndpoint, SparqlEndpoint, Value};
use re2xolap::{RefineOp, ReolapConfig, Session, SessionConfig};

fn running_endpoint() -> (LocalEndpoint, re2x_cube::VirtualSchemaGraph) {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    (endpoint, schema)
}

fn label_of(endpoint: &LocalEndpoint, value: Option<&Value>) -> String {
    let graph = endpoint.graph();
    match value {
        Some(Value::Term(id)) => {
            let label_p = graph.iri_id(re2x_rdf::vocab::rdfs::LABEL).expect("labels");
            graph
                .objects(*id, label_p)
                .first()
                .and_then(|&l| graph.term(l).as_literal())
                .map(|l| l.lexical().to_owned())
                .unwrap_or_default()
        }
        Some(v) => v.string_form(graph),
        None => String::new(),
    }
}

#[test]
fn table2_numbers_through_the_full_stack() {
    let (endpoint, schema) = running_endpoint();
    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
    // Germany appears only as destination in the running example
    assert_eq!(outcome.queries.len(), 1);
    let q = outcome.queries[0].clone();
    assert!(q.description.contains("Country of Destination"));
    let step = session.choose(q).expect("runs");

    // collect (destination, year) → SUM
    let sols = &step.solutions;
    let dest_col = &step.query.group_columns[0].var;
    let year_col = &step.query.group_columns[1].var;
    let sum_col = step
        .query
        .measure_columns
        .iter()
        .find(|m| m.alias.starts_with("sum"))
        .expect("sum column");
    let mut sums = std::collections::BTreeMap::new();
    for row in 0..sols.len() {
        let dest = label_of(&endpoint, sols.value(row, dest_col));
        let year = label_of(&endpoint, sols.value(row, year_col));
        let total = sols
            .value(row, &sum_col.alias)
            .and_then(|v| v.as_number(endpoint.graph()))
            .expect("sum bound");
        sums.insert((dest, year), total);
    }
    // Table 2 of the paper
    assert_eq!(sums[&("Germany".into(), "2014".into())], 8030.0);
    assert_eq!(sums[&("France".into(), "2014".into())], 5011.0);
    assert_eq!(sums[&("Italy".into(), "2014".into())], 1220.0);
    assert_eq!(sums[&("Austria".into(), "2014".into())], 120.0);
}

#[test]
fn synthesized_queries_always_contain_the_example() {
    let (endpoint, schema) = running_endpoint();
    for example in [
        vec!["Syria"],
        vec!["Asia"],
        vec!["Germany", "Syria"],
        vec!["2013"],
    ] {
        let outcome = re2xolap::reolap(&endpoint, &schema, &example, &ReolapConfig::default())
            .expect("synthesis");
        assert!(!outcome.queries.is_empty(), "{example:?} yields queries");
        for q in &outcome.queries {
            let sols = endpoint.select(&q.query).expect("runs");
            assert!(
                !q.matching_rows(&sols, endpoint.graph()).is_empty(),
                "example {example:?} missing from results of {}",
                q.sparql()
            );
            // minimality: exactly the matched levels are grouped
            assert_eq!(q.group_columns.len(), q.query.group_by.len());
        }
    }
}

#[test]
fn figure10_baseline_vs_reolap() {
    let (endpoint, schema) = running_endpoint();
    let example = ["Asia", "2014"];

    let baseline = re2x_baselines::reverse_engineer(&endpoint, &example, true).expect("baseline");
    assert!(!baseline.queries.is_empty());
    assert!(!baseline.reaches_observations);
    assert!(!baseline.has_aggregates);
    for q in &baseline.queries {
        assert!(!q.is_aggregate(), "SPARQLByE never aggregates");
        // flat: no query variable co-occurs across the two example parts
        let text = re2x_sparql::query_to_sparql(q);
        assert!(!text.contains("GROUP BY"), "{text}");
        assert!(
            !text.contains("numApplicants"),
            "never reaches measures: {text}"
        );
    }

    let outcome =
        re2xolap::reolap(&endpoint, &schema, &example, &ReolapConfig::default()).expect("reolap");
    assert!(!outcome.queries.is_empty());
    for q in &outcome.queries {
        assert!(q.query.is_aggregate(), "ReOLAP aggregates");
        let text = q.sparql();
        assert!(text.contains("GROUP BY"), "{text}");
        assert!(
            text.contains(&schema.observation_class),
            "ReOLAP reaches observations: {text}"
        );
        // the ⟨Asia, 2014⟩ interpretation uses 2-hop paths — exactly what
        // the baseline cannot produce
        assert!(text.contains(" / "), "sequence path present: {text}");
    }
}

#[test]
fn alex_workflow_is_reproducible_and_backtrackable() {
    let (endpoint, schema) = running_endpoint();
    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
    session.choose(outcome.queries[0].clone()).expect("runs");
    let base_rows = session.current().expect("step").solutions.len();

    // drill-down by continent of origin exists and grows the result
    let refinements = session.refinements(RefineOp::Disaggregate).expect("dis");
    let continent = refinements
        .into_iter()
        .find(|r| r.explanation.contains("Continent"))
        .expect("continent offer");
    session.apply(continent).expect("runs");
    let after_dis = session.current().expect("step").solutions.len();
    assert!(after_dis >= base_rows);

    // top-k restricts
    let tops = session.refinements(RefineOp::TopK).expect("topk");
    assert!(!tops.is_empty());
    session
        .apply(tops.into_iter().next().expect("one"))
        .expect("runs");
    assert!(session.current().expect("step").solutions.len() <= after_dis);

    // backtracking returns to the disaggregated view
    assert!(session.backtrack());
    assert_eq!(session.current().expect("step").solutions.len(), after_dis);

    let metrics = session.metrics();
    assert!(metrics.paths_offered > 0);
    assert!(metrics.tuples_accessible as usize >= base_rows);
}

/// Endpoint accounting stays monotone and internally consistent while a
/// scripted ReOLAP session runs through a caching decorator: counters only
/// grow, hits+misses cover every issued query, the latency histogram counts
/// one sample per query that reached the inner endpoint, and rows_returned
/// never decreases.
#[test]
fn endpoint_stats_are_monotone_through_a_scripted_session() {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = CachingEndpoint::new(LocalEndpoint::new(graph));
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;

    let monotone = |before: &EndpointStats, after: &EndpointStats, when: &str| {
        assert!(after.selects >= before.selects, "selects shrank {when}");
        assert!(after.asks >= before.asks, "asks shrank {when}");
        assert!(
            after.keyword_searches >= before.keyword_searches,
            "keyword searches shrank {when}"
        );
        assert!(
            after.rows_returned >= before.rows_returned,
            "rows_returned shrank {when}"
        );
        assert!(after.cache_hits >= before.cache_hits, "hits shrank {when}");
        assert!(
            after.cache_misses >= before.cache_misses,
            "misses shrank {when}"
        );
        assert!(after.busy >= before.busy, "busy time shrank {when}");
        assert!(
            after.latency.count() >= before.latency.count(),
            "latency samples shrank {when}"
        );
    };
    let consistent = |stats: &EndpointStats, when: &str| {
        // only misses reach the inner endpoint, which records one latency
        // sample per query it answers
        assert_eq!(
            stats.cache_misses,
            stats.total_queries(),
            "miss accounting {when}"
        );
        assert_eq!(
            stats.latency.count(),
            stats.total_queries(),
            "one latency sample per inner query {when}"
        );
        if stats.latency.count() > 0 {
            let p50 = stats.latency.p50().expect("p50");
            let p99 = stats.latency.p99().expect("p99");
            assert!(p50 <= p99, "quantiles ordered {when}");
        }
    };

    let mut previous = endpoint.stats();
    consistent(&previous, "after bootstrap");
    assert!(previous.total_queries() > 0, "bootstrap issues queries");

    // scripted session: synthesize → run → drill down → top-k → backtrack
    let mut session = Session::new(&endpoint, &schema, SessionConfig::default());
    let outcome = session.synthesize(&["Germany", "2014"]).expect("synthesis");
    session.choose(outcome.queries[0].clone()).expect("runs");
    let mut checkpoint = |when: &str| {
        let now = endpoint.stats();
        monotone(&previous, &now, when);
        consistent(&now, when);
        previous = now;
    };
    checkpoint("after first query");

    let r = session.refinements(RefineOp::Disaggregate).expect("dis");
    session
        .apply(r.into_iter().next().expect("offer"))
        .expect("runs");
    checkpoint("after disaggregate");

    let r = session.refinements(RefineOp::TopK).expect("topk");
    session
        .apply(r.into_iter().next().expect("offer"))
        .expect("runs");
    checkpoint("after top-k");

    assert!(session.backtrack());
    checkpoint("after backtrack");

    // replaying the same synthesis against the warm cache gains hits but no
    // (or almost no) new inner-endpoint work
    let replayed = session.synthesize(&["Germany", "2014"]).expect("synthesis");
    assert_eq!(replayed.queries.len(), outcome.queries.len());
    let now = endpoint.stats();
    monotone(&previous, &now, "after replay");
    consistent(&now, "after replay");
    assert!(
        now.cache_hits > previous.cache_hits,
        "replay hits the cache"
    );
}

#[test]
fn multi_tuple_synthesis_on_running_example() {
    let (endpoint, schema) = running_endpoint();
    let tuples = vec![
        vec!["Germany".to_owned(), "Syria".to_owned()],
        vec!["France".to_owned(), "Iraq".to_owned()],
    ];
    let outcome = re2xolap::reolap_multi(&endpoint, &schema, &tuples, &ReolapConfig::default())
        .expect("synthesis");
    assert_eq!(outcome.queries.len(), 1);
    let q = &outcome.queries[0];
    let sols = endpoint.select(&q.query).expect("runs");
    // both tuples must be represented in the result
    assert!(q.matching_rows(&sols, endpoint.graph()).len() >= 2);
}
