#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2x-baselines
//!
//! Comparator systems re-implemented from their published behaviour, used
//! by the Figure 10 / Table 1 reproductions.
//!
//! * [`sparqlbye`] — the state-of-the-art *general* SPARQL
//!   reverse-engineering-by-example approach the paper compares against
//!   (Diaz, Arenas, Benedikt: "SPARQLByE: Querying RDF data by example",
//!   PVLDB 2016),
//! * [`spade`] — Spade-style interesting-aggregate discovery without user
//!   input (Diao et al., SIGMOD 2021), the other implemented Table 1 row.

pub mod spade;
pub mod sparqlbye;

pub use spade::{interesting_aggregates, InterestingAggregate};
pub use sparqlbye::{reverse_engineer, ByExampleOutcome};

/// A row of the Table 1 capability matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// System name.
    pub system: &'static str,
    /// Operates natively on RDF.
    pub rdf: bool,
    /// Scales to large KGs.
    pub large_kgs: bool,
    /// Produces queries with aggregations.
    pub aggregations: bool,
    /// Supports interactive query reformulation.
    pub reformulations: bool,
    /// Driven by user input.
    pub user_input: bool,
    /// Accepts partial input (no measure values required).
    pub partial_input: bool,
}

/// The Table 1 matrix, as published (RE²xOLAP and the systems it is
/// compared to; the non-RDF systems are listed for completeness and are
/// not implemented here).
pub const TABLE1: [Capabilities; 4] = [
    Capabilities {
        system: "RE2xOLAP",
        rdf: true,
        large_kgs: true,
        aggregations: true,
        reformulations: true,
        user_input: true,
        partial_input: true,
    },
    Capabilities {
        system: "SPARQLByE",
        rdf: true,
        large_kgs: true,
        aggregations: false,
        reformulations: false,
        user_input: true,
        partial_input: true,
    },
    Capabilities {
        system: "Spade",
        rdf: true,
        large_kgs: false,
        aggregations: true,
        reformulations: false,
        user_input: false,
        partial_input: false,
    },
    Capabilities {
        system: "REGAL",
        rdf: false,
        large_kgs: false,
        aggregations: true,
        reformulations: false,
        user_input: true,
        partial_input: false,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        assert_eq!(TABLE1.len(), 4);
        let re2x = &TABLE1[0];
        assert!(re2x.rdf && re2x.large_kgs && re2x.aggregations && re2x.reformulations);
        let bye = &TABLE1[1];
        assert!(bye.rdf && bye.large_kgs && !bye.aggregations && !bye.reformulations);
        let regal = &TABLE1[3];
        assert!(!regal.rdf && regal.aggregations && !regal.partial_input);
    }
}
