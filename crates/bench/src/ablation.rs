//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Virtual Schema Graph vs. direct triplestore navigation** — the
//!    paper's central optimization claim: member→level resolution via the
//!    in-memory virtual graph versus rediscovering the observation-to-member
//!    paths from the store on every lookup.
//! 2. **Interpretation validity check on/off** — the `ASK` probe that
//!    guarantees non-empty results costs endpoint round-trips.
//! 3. **Full-text index vs. literal scan** — keyword resolution through the
//!    inverted index versus scanning every literal.
//! 4. **Greedy vs. in-order join planning** — substrate-level; affects the
//!    Figure 8a shapes.

use crate::env::PreparedDataset;
use crate::report::{fmt_duration, mean, Table};
use re2x_cube::patterns;
use re2x_datagen::example_workload_on;
use re2x_rdf::text::normalize;
use re2x_sparql::{evaluate_with, parse_query, PlanMode, Query, SparqlEndpoint};
use re2xolap::{reolap, ReolapConfig};
use std::time::{Duration, Instant};

/// Resolves the levels of a member *without* the Virtual Schema Graph:
/// breadth-first search of inbound predicate paths from the member until
/// observation nodes of `observation_class` are reached, querying the
/// endpoint at every step — what a system without the paper's optimization
/// has to do.
pub fn member_paths_direct(
    endpoint: &dyn SparqlEndpoint,
    observation_class: &str,
    member_iri: &str,
    max_depth: usize,
) -> Vec<Vec<String>> {
    let mut found = Vec::new();
    // frontier entries: the path (observation → … → member) discovered so
    // far, and the IRI at its head (whose inbound edges we expand next)
    let mut frontier: Vec<(Vec<String>, String)> = vec![(Vec::new(), member_iri.to_owned())];
    for _ in 0..max_depth {
        let mut next = Vec::new();
        for (path, head) in frontier {
            // SELECT DISTINCT ?p WHERE { ?x ?p <head> }
            let mut q = Query::select_all(vec![re2x_sparql::PatternElement::Triple(
                re2x_sparql::TriplePattern::with_pred_var(
                    re2x_sparql::TermPattern::Var("x".to_owned()),
                    "p",
                    re2x_sparql::TermPattern::Iri(head.clone()),
                ),
            )]);
            q.distinct = true;
            q.select.push(re2x_sparql::SelectItem::Var("p".to_owned()));
            let Ok(solutions) = endpoint.select(&q) else {
                continue;
            };
            let graph = endpoint.graph();
            for row in &solutions.rows {
                let Some(re2x_sparql::Value::Term(id)) = row[0] else {
                    continue;
                };
                let Some(pred) = graph.term(id).as_iri() else {
                    continue;
                };
                if pred == re2x_rdf::vocab::rdf::TYPE || path.iter().any(|p| p == pred) {
                    continue;
                }
                let mut extended = vec![pred.to_owned()];
                extended.extend(path.iter().cloned());
                // does an observation reach the member over this path?
                let ask = Query::ask(vec![
                    patterns::observation_type("o", observation_class),
                    patterns::path_to_concrete_member("o", &extended, member_iri),
                ]);
                if endpoint.ask(&ask).unwrap_or(false) {
                    if !found.contains(&extended) {
                        found.push(extended.clone());
                    }
                } else {
                    // keep expanding upstream of this predicate: find one
                    // subject to continue from (sampling the fan-in)
                    let sources = Query::select_all(vec![re2x_sparql::PatternElement::Triple(
                        re2x_sparql::TriplePattern::new(
                            re2x_sparql::TermPattern::Var("x".to_owned()),
                            pred.to_owned(),
                            re2x_sparql::TermPattern::Iri(head.clone()),
                        ),
                    )]);
                    let mut sources = sources;
                    sources.limit = Some(1);
                    if let Ok(s) = endpoint.select(&sources) {
                        if let Some(re2x_sparql::Value::Term(src)) =
                            s.rows.first().and_then(|r| r[0].clone())
                        {
                            if let Some(iri) = graph.term(src).as_iri() {
                                next.push((extended, iri.to_owned()));
                            }
                        }
                    }
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    found
}

/// Ablation 1: time to resolve the levels of each workload member with the
/// virtual graph vs. direct navigation.
pub fn ablation_vgraph(prepared: &PreparedDataset, seed: u64) -> String {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 1, 8, seed);
    let schema = &prepared.report.schema;
    let mut with_vgraph = Vec::new();
    let mut direct = Vec::new();
    for tuple in &workload {
        let keyword = &tuple[0];
        // resolve keyword to a member first (shared cost, not measured)
        let hits = re2xolap::matches(
            &prepared.endpoint,
            schema,
            keyword,
            re2xolap::MatchMode::Exact,
        )
        .expect("matching");
        let Some(hit) = hits.first() else { continue };
        let member = hit.binding.member_iri.clone();

        let start = Instant::now();
        let levels =
            re2xolap::member_levels(&prepared.endpoint, schema, &member).expect("vgraph lookup");
        with_vgraph.push(start.elapsed());

        let start = Instant::now();
        let paths = member_paths_direct(&prepared.endpoint, &schema.observation_class, &member, 4);
        direct.push(start.elapsed());
        assert!(
            !levels.is_empty() && !paths.is_empty(),
            "both strategies find the member's levels"
        );
    }
    let mut t = Table::new(["strategy", "avg member→level resolution", "samples"]);
    t.row([
        "Virtual Schema Graph".to_owned(),
        fmt_duration(mean(&with_vgraph)),
        with_vgraph.len().to_string(),
    ]);
    t.row([
        "direct navigation".to_owned(),
        fmt_duration(mean(&direct)),
        direct.len().to_string(),
    ]);
    let mut out = t.render();

    // The vgraph's larger payoff is at refinement time: Disaggregate
    // enumerates all drill-down paths from the in-memory graph in O(|L̄|),
    // while a system without it would re-crawl the schema from the store
    // (≈ one bootstrap) to enumerate the same paths.
    let queries = reolap(
        &prepared.endpoint,
        schema,
        &[workload[0][0].as_str()],
        &ReolapConfig::default(),
    )
    .ok()
    .map(|o| o.queries)
    .unwrap_or_default();
    if let Some(query) = queries.first() {
        let start = Instant::now();
        let refinements = re2xolap::refine::disaggregate::disaggregate(schema, query);
        let dis_time = start.elapsed();
        let start = Instant::now();
        let config = re2x_cube::BootstrapConfig::new(schema.observation_class.clone());
        let _ = re2x_cube::bootstrap(&prepared.endpoint, &config);
        let crawl_time = start.elapsed();
        let mut t2 = Table::new(["drill-down path enumeration", "time"]);
        t2.row([
            format!("Virtual Schema Graph ({} paths)", refinements.len()),
            fmt_duration(dis_time),
        ]);
        t2.row([
            "re-crawling the store (≈ bootstrap)".to_owned(),
            fmt_duration(crawl_time),
        ]);
        out.push('\n');
        out.push_str(&t2.render());
    }
    out
}

/// Ablation 2: synthesis with and without the validity `ASK` probe.
pub fn ablation_validate(prepared: &PreparedDataset, seed: u64) -> String {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 2, 10, seed);
    let mut rows = Vec::new();
    for validate in [true, false] {
        let config = ReolapConfig {
            validate,
            ..Default::default()
        };
        let mut times = Vec::new();
        let mut queries = 0usize;
        for tuple in &workload {
            let refs: Vec<&str> = tuple.iter().map(String::as_str).collect();
            let start = Instant::now();
            if let Ok(outcome) = reolap(&prepared.endpoint, &prepared.report.schema, &refs, &config)
            {
                queries += outcome.queries.len();
            }
            times.push(start.elapsed());
        }
        rows.push((validate, mean(&times), queries));
    }
    let mut t = Table::new(["validity check", "avg synthesis time", "total queries"]);
    for (validate, time, queries) in rows {
        t.row([
            if validate { "on (paper)" } else { "off" }.to_owned(),
            fmt_duration(time),
            queries.to_string(),
        ]);
    }
    t.render()
}

/// Ablation 3: keyword resolution through the inverted text index vs. a
/// linear scan over every literal in the store.
pub fn ablation_text_index(prepared: &PreparedDataset, seed: u64) -> String {
    let workload = example_workload_on(prepared.endpoint.graph(), &prepared.dataset, 1, 10, seed);
    let graph = prepared.endpoint.graph();
    let mut indexed = Vec::new();
    let mut scanned = Vec::new();
    for tuple in &workload {
        let keyword = &tuple[0];
        let start = Instant::now();
        let via_index = graph.literals_matching_exact(keyword);
        indexed.push(start.elapsed());

        let start = Instant::now();
        let needle = normalize(keyword);
        let mut via_scan = Vec::new();
        for (id, term) in graph.interner().iter() {
            if let Some(l) = term.as_literal() {
                if normalize(l.lexical()) == needle {
                    via_scan.push(id);
                }
            }
        }
        scanned.push(start.elapsed());
        assert_eq!(
            via_index.len(),
            via_scan.len(),
            "both find the same literals"
        );
    }
    let mut t = Table::new(["strategy", "avg keyword lookup", "samples"]);
    t.row([
        "full-text index".to_owned(),
        fmt_duration(mean(&indexed)),
        indexed.len().to_string(),
    ]);
    t.row([
        "literal scan".to_owned(),
        fmt_duration(mean(&scanned)),
        scanned.len().to_string(),
    ]);
    t.render()
}

/// Endpoint-performance study (Section 7.1, "the triplestore performance
/// in serving the data is the determining factor and dominates the
/// bootstrap time"): bootstraps the same store with increasing injected
/// per-query latency and reports how bootstrap time scales with the
/// number of endpoint queries.
pub fn ablation_endpoint_latency(prepared: &PreparedDataset) -> String {
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_sparql::LocalEndpoint;
    let graph = prepared.endpoint.graph().clone();
    let config = BootstrapConfig::new(prepared.dataset.observation_class.clone());
    let mut t = Table::new([
        "injected latency / query",
        "bootstrap time",
        "endpoint queries",
    ]);
    for latency_ms in [0u64, 1, 5] {
        let endpoint = if latency_ms == 0 {
            LocalEndpoint::new(graph.clone())
        } else {
            LocalEndpoint::new(graph.clone()).with_latency(Duration::from_millis(latency_ms))
        };
        let report = bootstrap(&endpoint, &config).expect("bootstrap");
        t.row([
            format!("{latency_ms} ms"),
            fmt_duration(report.elapsed),
            report.endpoint_queries.to_string(),
        ]);
    }
    t.render()
}

/// Ablation 4: greedy vs. in-order join planning on a Figure 2-shaped
/// analytical query.
pub fn ablation_planner(prepared: &PreparedDataset) -> String {
    let schema = &prepared.report.schema;
    // build the most selective star query the schema offers: group by the
    // first two base levels, aggregate the first measure
    let mut levels = schema.base_levels();
    let l1 = levels.next().expect("≥1 level");
    let l2 = levels.next().unwrap_or(l1);
    let measure = &schema.measures()[0];
    let text = format!(
        "SELECT ?a ?b (SUM(?v) AS ?t) WHERE {{ ?o <{}> <{}> . ?o <{}> ?a . ?o <{}> ?b . ?o <{}> ?v }} GROUP BY ?a ?b",
        re2x_rdf::vocab::rdf::TYPE,
        schema.observation_class,
        l1.path[0],
        l2.path[0],
        measure.predicate,
    );
    let query = parse_query(&text).expect("static query parses");
    let graph = prepared.endpoint.graph();
    let mut t = Table::new(["planner", "execution time", "rows"]);
    for (name, mode) in [
        ("planned (default)", PlanMode::Planned),
        ("in-order", PlanMode::InOrder),
    ] {
        let start = Instant::now();
        let solutions = evaluate_with(graph, &query, mode).expect("query runs");
        let elapsed: Duration = start.elapsed();
        t.row([
            name.to_owned(),
            fmt_duration(elapsed),
            solutions.len().to_string(),
        ]);
    }
    t.render()
}
