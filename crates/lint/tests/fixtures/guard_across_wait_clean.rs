//! guard-across-wait CLEAN fixture: the `fx.left -> fx.right` nesting is
//! declared, so the nested acquisition and the wait under `fx.left` are
//! intended; `sequential` scopes the first guard out before the second.

use std::sync::{Condvar, Mutex};

// lock-order: fx.left -> fx.right

pub struct Pair {
    // lock-order: fx.left
    left: Mutex<u64>,
    // lock-order: fx.right
    right: Mutex<u64>,
    cv: Condvar,
}

impl Pair {
    pub fn nested(&self) -> u64 {
        let outer = lock_or_recover("fx.left", &self.left);
        let inner = lock_or_recover("fx.right", &self.right);
        *outer + *inner
    }

    pub fn wait_under_declared_edge(&self) -> u64 {
        let held = lock_or_recover("fx.left", &self.left);
        let mut slot = lock_or_recover("fx.right", &self.right);
        slot = wait_or_recover(&self.cv, slot);
        *held + *slot
    }

    pub fn sequential(&self) -> u64 {
        let first = {
            let guard = lock_or_recover("fx.right", &self.right);
            *guard
        };
        let outer = lock_or_recover("fx.left", &self.left);
        first + *outer
    }
}
