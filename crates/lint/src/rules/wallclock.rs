//! `no-wallclock`: `Instant::now` / `SystemTime` are forbidden outside
//! the bench harness and explicitly annotated latency-measurement layers.
//!
//! The deterministic testkit harness replays failures from a seed; library
//! code that silently reads the wall clock breaks that replayability and
//! sneaks nondeterminism into differential tests. Timing layers (endpoint
//! latency accounting, the tracer, phase metrics) opt in with
//! `// lint:allow-file(no-wallclock, reason)`.

use super::{finding_at, significant};
use crate::findings::Finding;
use crate::source::SourceFile;

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_region(t.start) {
            continue;
        }
        match t.text(text) {
            // Instant :: now
            "Instant"
                if toks.get(i + 1).map(|n| n.text(text)) == Some(":")
                    && toks.get(i + 2).map(|n| n.text(text)) == Some(":")
                    && toks.get(i + 3).map(|n| n.text(text)) == Some("now") =>
            {
                findings.push(finding_at(
                    file,
                    "no-wallclock",
                    t,
                    "`Instant::now` reads the wall clock; only bench/latency layers may".to_owned(),
                ));
            }
            "SystemTime" => {
                findings.push(finding_at(
                    file,
                    "no-wallclock",
                    t,
                    "`SystemTime` reads the wall clock; only bench/latency layers may".to_owned(),
                ));
            }
            _ => {}
        }
    }
    findings
}
