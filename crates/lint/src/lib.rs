//! # re2x-lint — workspace invariant checker
//!
//! A zero-dependency static-analysis library over the workspace's own
//! source: a comment/string/raw-string-aware Rust tokenizer ([`lexer`]),
//! a brace-tree/scope layer with guard-liveness tracking ([`scope`]), a
//! rule engine reporting structured findings ([`findings::Finding`]) as
//! human text and JSON, a checked-in suppression baseline, and
//! `// lint:allow(rule, reason)` escape hatches ([`source`]).
//!
//! The shipped rules (see `DESIGN.md` § Enforced invariants):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic-freedom`        | no `.unwrap()`/`.expect(`/`panic!`/`unreachable!` in non-test library code |
//! | `lock-order`           | every `Mutex`/`RwLock` is registered (`// lock-order: name`) and the workspace nested-acquisition graph (extracted ∪ declared `A -> B` edges) is acyclic |
//! | `no-calls-under-lock`  | no `SparqlEndpoint` method, bus publish, or `std::io`/`std::fs` call while a guard is live |
//! | `guard-across-wait`    | no second acquisition or condvar wait under a held guard unless the pair is a declared `// lock-order: A -> B` edge |
//! | `discarded-result`     | no `let _ =` / bare-statement discard of a same-file `Result`-returning call |
//! | `no-wallclock`         | `Instant::now`/`SystemTime` only in bench/latency-measurement layers |
//! | `endpoint-seam`        | `core`/`cube` query only through the `SparqlEndpoint` trait |
//! | `forbid-unsafe`        | every crate root carries `#![forbid(unsafe_code)]` |
//! | `no-debug-output`      | no `println!`/`dbg!`/`eprintln!` in library crates |
//!
//! The static lock model is cross-checked at runtime: the lock witness in
//! `re2x-obs` (`RE2X_LOCK_WITNESS=1`) records the nesting edges real
//! threads perform, and the witness gate test asserts observed ⊆ the
//! static registry graph — a registry annotation that drifts from real
//! behavior fails CI with both lock names and the acquiring call sites.
//!
//! The binary (`cargo run -p re2x-lint`) walks `crates/*/src`, applies
//! the rules, and exits nonzero on any finding outside the baseline —
//! `scripts/verify.sh` runs it as a standing gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod source;

pub use engine::{
    apply_baseline, collect_files, lint_files, report_to_json, to_baseline, LintResult,
};
pub use findings::{finding_to_json, finding_to_text, json_escape, Finding};
pub use lexer::{tokenize, Token, TokenKind};
pub use scope::{Block, GuardTracker, LiveGuard, ScopeTree};
pub use source::SourceFile;
