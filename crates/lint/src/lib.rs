//! # re2x-lint — workspace invariant checker
//!
//! A zero-dependency static-analysis library over the workspace's own
//! source: a comment/string/raw-string-aware Rust tokenizer
//! ([`lexer`]), a rule engine reporting structured findings
//! ([`findings::Finding`]) as human text and JSON, a checked-in
//! suppression baseline, and `// lint:allow(rule, reason)` escape
//! hatches ([`source`]).
//!
//! The shipped rules (see `DESIGN.md` § Enforced invariants):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `panic-freedom`   | no `.unwrap()`/`.expect(`/`panic!`/`unreachable!` in non-test library code |
//! | `lock-order`      | every `Mutex`/`RwLock` is registered (`// lock-order: name`) and the workspace nested-acquisition graph is acyclic |
//! | `no-wallclock`    | `Instant::now`/`SystemTime` only in bench/latency-measurement layers |
//! | `endpoint-seam`   | `core`/`cube` query only through the `SparqlEndpoint` trait |
//! | `forbid-unsafe`   | every crate root carries `#![forbid(unsafe_code)]` |
//! | `no-debug-output` | no `println!`/`dbg!`/`eprintln!` in library crates |
//!
//! The binary (`cargo run -p re2x-lint`) walks `crates/*/src`, applies
//! the rules, and exits nonzero on any finding outside the baseline —
//! `scripts/verify.sh` runs it as a standing gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod source;

pub use engine::{apply_baseline, collect_files, lint_files, to_baseline, LintResult};
pub use findings::{finding_to_json, finding_to_text, json_escape, Finding};
pub use lexer::{tokenize, Token, TokenKind};
pub use source::SourceFile;
