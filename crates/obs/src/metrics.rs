//! A registry of named counters, gauges, and latency histograms.
//!
//! Names are free-form dotted strings (`"bootstrap.dimensions"`); an
//! optional `{key="value",…}` label suffix can be attached with [`label`],
//! mirroring the Prometheus data model the text exposition
//! ([`crate::export::prometheus_exposition`]) emits. The registry is
//! thread-safe (one mutex, short critical sections) so decorators and
//! scoped crawler threads can update it concurrently.

use crate::bus::{BusEvent, EventBus, EventStream};
use crate::hist::LatencyHistogram;
use crate::sync::lock_or_recover;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// A latency histogram plus the exact sum of its observations (the
/// histogram itself only keeps bucket counts; Prometheus histograms
/// conventionally expose `_sum` as well).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucketed distribution.
    pub histogram: LatencyHistogram,
    /// Exact sum of all recorded durations.
    pub sum: Duration,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The thread-safe metrics registry. Every update also publishes a delta
/// on the registry's [`EventBus`] — free (one atomic load) while nobody
/// subscribes.
#[derive(Default)]
pub struct Metrics {
    // lock-order: obs.metrics
    inner: Mutex<Inner>,
    bus: EventBus,
}

/// A point-in-time copy of every metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(String, f64)>,
    /// Latency histograms with exact sums.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Metrics {
    /// An empty registry with its own private bus.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// An empty registry publishing its deltas on `bus` (how a tracer
    /// shares one bus between trace events and metric updates).
    pub fn with_bus(bus: EventBus) -> Metrics {
        Metrics {
            inner: Mutex::default(),
            bus,
        }
    }

    /// The bus this registry publishes metric deltas on.
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Subscribes to this registry's metric deltas (and, when the bus is
    /// shared with a tracer, its trace events) with a bounded ring.
    pub fn subscribe(&self, capacity: usize) -> EventStream {
        self.bus.subscribe(capacity)
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, delta: u64) {
        {
            let mut inner = lock_or_recover("obs.metrics", &self.inner);
            *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
        }
        self.bus.publish_with(|at| BusEvent::Counter {
            name: name.to_owned(),
            delta,
            at,
        });
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        {
            let mut inner = lock_or_recover("obs.metrics", &self.inner);
            inner.gauges.insert(name.to_owned(), value);
        }
        self.bus.publish_with(|at| BusEvent::Gauge {
            name: name.to_owned(),
            value,
            at,
        });
    }

    /// Adds `delta` (which may be negative) to the gauge `name`, creating
    /// it at zero first — the up/down shape of occupancy gauges such as
    /// active-session counts, where concurrent increments and decrements
    /// must fold atomically rather than last-write-wins.
    pub fn gauge_add(&self, name: &str, delta: f64) {
        let value = {
            let mut inner = lock_or_recover("obs.metrics", &self.inner);
            let v = inner.gauges.entry(name.to_owned()).or_insert(0.0);
            *v += delta;
            *v
        };
        // subscribers see the absolute post-update value, not the delta,
        // so a late joiner converges after one event
        self.bus.publish_with(|at| BusEvent::Gauge {
            name: name.to_owned(),
            value,
            at,
        });
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, latency: Duration) {
        {
            let mut inner = lock_or_recover("obs.metrics", &self.inner);
            let entry = inner.histograms.entry(name.to_owned()).or_default();
            entry.histogram.record(latency);
            entry.sum += latency;
        }
        self.bus.publish_with(|at| BusEvent::Observe {
            name: name.to_owned(),
            latency,
            at,
        });
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let inner = lock_or_recover("obs.metrics", &self.inner);
        inner.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = lock_or_recover("obs.metrics", &self.inner);
        inner.gauges.get(name).copied()
    }

    /// Copy of a histogram, if it ever recorded an observation.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = lock_or_recover("obs.metrics", &self.inner);
        inner.histograms.get(name).copied()
    }

    /// Point-in-time copy of everything, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_or_recover("obs.metrics", &self.inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
        }
    }
}

/// Builds a labeled metric name: `label("cache.hits", &[("phase", "boot")])`
/// → `cache.hits{phase="boot"}`. With no labels, the name passes through.
/// Label values are escaped per the Prometheus exposition format
/// ([`crate::export::prom_escape`]): `\`, `"`, and newlines.
pub fn label(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", crate::export::prom_escape(v)))
        .collect();
    format!("{name}{{{}}}", pairs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let m = Metrics::new();
        assert_eq!(m.counter("c"), 0);
        m.counter_add("c", 2);
        m.counter_add("c", 3);
        assert_eq!(m.counter("c"), 5);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        assert_eq!(m.gauge("g"), None);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", -2.0);
        assert_eq!(m.gauge("g"), Some(-2.0));
    }

    #[test]
    fn gauge_add_folds_deltas() {
        let m = Metrics::new();
        m.gauge_add("active", 1.0);
        m.gauge_add("active", 1.0);
        m.gauge_add("active", -1.0);
        assert_eq!(m.gauge("active"), Some(1.0));
        // concurrent up/down traffic nets out exactly
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        m.gauge_add("active", 1.0);
                        m.gauge_add("active", -1.0);
                    }
                });
            }
        });
        assert_eq!(m.gauge("active"), Some(1.0));
    }

    #[test]
    fn histograms_record_counts_and_sums() {
        let m = Metrics::new();
        m.observe("h", Duration::from_micros(3));
        m.observe("h", Duration::from_micros(7));
        let h = m.histogram("h").expect("recorded");
        assert_eq!(h.histogram.count(), 2);
        assert_eq!(h.sum, Duration::from_micros(10));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let m = Metrics::new();
        m.counter_add("z", 1);
        m.counter_add("a", 1);
        m.gauge_set("g", 0.5);
        m.observe("h", Duration::from_micros(1));
        let snap = m.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "z"]
        );
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn label_builds_prometheus_style_names() {
        assert_eq!(label("plain", &[]), "plain");
        assert_eq!(
            label("cache.hits", &[("phase", "bootstrap"), ("kind", "select")]),
            "cache.hits{phase=\"bootstrap\",kind=\"select\"}"
        );
        assert_eq!(label("n", &[("k", "a\"b")]), "n{k=\"a\\\"b\"}");
    }

    #[test]
    fn updates_publish_deltas_on_the_bus() {
        let m = Metrics::new();
        let stream = m.subscribe(64);
        m.counter_add("c", 2);
        m.gauge_set("g", 1.5);
        m.gauge_add("g", 0.5);
        m.observe("h", Duration::from_micros(7));
        let events = stream.poll();
        assert_eq!(events.len(), 4);
        assert!(matches!(&events[0], BusEvent::Counter { name, delta: 2, .. } if name == "c"));
        assert!(
            matches!(&events[1], BusEvent::Gauge { name, value, .. } if name == "g" && *value == 1.5)
        );
        assert!(
            matches!(&events[2], BusEvent::Gauge { value, .. } if *value == 2.0),
            "gauge_add publishes the absolute post-update value"
        );
        assert!(matches!(
            &events[3],
            BusEvent::Observe { latency, .. } if *latency == Duration::from_micros(7)
        ));
        // the registry state is unaffected by subscription
        assert_eq!(m.counter("c"), 2);
        assert_eq!(m.gauge("g"), Some(2.0));
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = Metrics::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        m.counter_add("c", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("c"), 400);
    }
}
