//! System bootstrap: automatic discovery of the multidimensional schema
//! (Section 5.2, "Construction and use").
//!
//! The crawler is given *only* a SPARQL endpoint and the RDF class
//! identifying observation nodes. It discovers, via standard SPARQL
//! queries:
//!
//! 1. measure predicates — observation edges to numeric literals,
//! 2. dimension predicates — observation edges to IRI nodes,
//! 3. hierarchy levels — by recursively following predicates from dimension
//!    members to further IRI nodes (depth-first with cycle protection: a
//!    predicate may not repeat within one path, and depth is bounded),
//! 4. level attributes — predicates from members to literals,
//! 5. member counts per level.
//!
//! The result is the [`VirtualSchemaGraph`]; everything downstream (query
//! synthesis, refinements) navigates it instead of the triplestore.

use crate::labels::{default_label_predicates, label_of};
use crate::patterns::{observation_type, path_to_member};
use crate::vgraph::VirtualSchemaGraph;
use re2x_obs::Tracer;
use re2x_rdf::vocab;
use re2x_sparql::{
    AggFunc, Expr, Func, PatternElement, Query, SelectItem, SparqlEndpoint, SparqlError,
    TermPattern, TriplePattern,
};
use std::time::{Duration, Instant};

/// Configuration of the bootstrap crawl.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// The RDF class whose instances are observations (e.g.
    /// `qb:Observation`). The only dataset knowledge the system needs.
    pub observation_class: String,
    /// Maximum hierarchy depth to explore below the observation root.
    pub max_depth: usize,
    /// Predicates never treated as dimension or roll-up predicates
    /// (typing and bookkeeping edges).
    pub excluded_predicates: Vec<String>,
    /// Predicates consulted for human-readable labels.
    pub label_predicates: Vec<String>,
    /// Tracer receiving per-phase spans (`bootstrap`, `bootstrap.prelude`,
    /// one `bootstrap.crawl_dimension` per dimension). Disabled by default.
    pub tracer: Tracer,
}

impl BootstrapConfig {
    /// Defaults for a QB-style statistical KG.
    pub fn new(observation_class: impl Into<String>) -> Self {
        BootstrapConfig {
            observation_class: observation_class.into(),
            max_depth: 4,
            excluded_predicates: vec![
                vocab::rdf::TYPE.to_owned(),
                vocab::qb::DATASET_PROP.to_owned(),
                vocab::qb4o::MEMBER_OF.to_owned(),
                vocab::qb4o::IN_HIERARCHY.to_owned(),
            ],
            label_predicates: default_label_predicates(),
            tracer: Tracer::disabled(),
        }
    }

    /// Routes bootstrap spans (and the queries issued inside them) through
    /// `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    fn is_excluded(&self, predicate: &str) -> bool {
        self.excluded_predicates.iter().any(|p| p == predicate)
    }
}

/// Outcome of a bootstrap run: the schema plus cost accounting (the paper
/// reports bootstrap time in Figure 6c and attributes it to endpoint
/// performance).
#[derive(Debug, Clone)]
pub struct BootstrapReport {
    /// The discovered schema.
    pub schema: VirtualSchemaGraph,
    /// Wall-clock time of the crawl.
    pub elapsed: Duration,
    /// Number of SPARQL queries issued.
    pub endpoint_queries: u64,
}

/// Crawls the endpoint and builds the Virtual Schema Graph, one dimension
/// at a time.
pub fn bootstrap(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
) -> Result<BootstrapReport, SparqlError> {
    let start = Instant::now();
    let _root = config.tracer.span("bootstrap");
    let (mut schema, dim_predicates, mut queries) = bootstrap_prelude(endpoint, config)?;

    for predicate in dim_predicates {
        let crawl = {
            let _dim = config
                .tracer
                .span_with("bootstrap.crawl_dimension", &[("dimension", predicate.as_str())]);
            crawl_dimension(endpoint, config, predicate)?
        };
        queries += crawl.queries;
        apply_dimension(&mut schema, crawl);
    }

    Ok(BootstrapReport {
        schema,
        elapsed: start.elapsed(),
        endpoint_queries: queries,
    })
}

/// [`bootstrap`] with the per-dimension hierarchy crawls fanned out over
/// scoped threads, one per dimension.
///
/// Per-dimension crawls are independent — every level path starts with its
/// dimension's predicate, so no discovery in one crawl can affect another —
/// and their results are applied to the schema in dimension order, making
/// the produced [`VirtualSchemaGraph`] *identical* to the serial one (and
/// `endpoint_queries` equal; only `elapsed` differs). Requires an endpoint
/// that tolerates concurrent queries, which [`SparqlEndpoint`]'s `Send +
/// Sync` bound guarantees.
pub fn bootstrap_parallel(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
) -> Result<BootstrapReport, SparqlError> {
    let start = Instant::now();
    let root = config.tracer.span("bootstrap");
    let (mut schema, dim_predicates, mut queries) = bootstrap_prelude(endpoint, config)?;

    // Worker threads have no span context of their own; each per-dimension
    // span is explicitly parented under the root via its handle, so paths
    // (and query provenance) nest identically to the serial variant.
    let root_handle = root.handle();
    let crawls: Vec<Result<DimensionCrawl, SparqlError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = dim_predicates
            .into_iter()
            .map(|predicate| {
                let root_handle = root_handle.clone();
                scope.spawn(move || {
                    let _dim = config.tracer.span_under_with(
                        &root_handle,
                        "bootstrap.crawl_dimension",
                        &[("dimension", predicate.as_str())],
                    );
                    crawl_dimension(endpoint, config, predicate)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dimension crawl thread panicked"))
            .collect()
    });
    for crawl in crawls {
        let crawl = crawl?;
        queries += crawl.queries;
        apply_dimension(&mut schema, crawl);
    }

    Ok(BootstrapReport {
        schema,
        elapsed: start.elapsed(),
        endpoint_queries: queries,
    })
}

/// The serial head of both bootstrap variants: observation count, measure
/// discovery, and the dimension-predicate scan. Returns the partially
/// built schema, the (non-excluded) dimension predicates in discovery
/// order, and the queries spent so far.
fn bootstrap_prelude(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
) -> Result<(VirtualSchemaGraph, Vec<String>, u64), SparqlError> {
    let _span = config.tracer.span("bootstrap.prelude");
    let mut queries = 0u64;
    let mut schema = VirtualSchemaGraph::new(config.observation_class.clone());

    // 1. observation count
    schema.observation_count = count_observations(endpoint, config, &mut queries)?;

    // 2. measures: observation predicates with numeric-literal objects
    for predicate in typed_object_predicates(endpoint, config, Func::IsNumeric, &mut queries)? {
        if config.is_excluded(&predicate) {
            continue;
        }
        let label = label_of(endpoint, &predicate, &config.label_predicates);
        queries += 1; // label lookup
        schema.add_measure(predicate, label);
    }

    // 3. dimensions: observation predicates with IRI objects
    let dim_predicates = typed_object_predicates(endpoint, config, Func::IsIri, &mut queries)?
        .into_iter()
        .filter(|p| !config.is_excluded(p))
        .collect();
    Ok((schema, dim_predicates, queries))
}

/// One discovered hierarchy level, pending insertion into the schema.
struct PendingLevel {
    path: Vec<String>,
    member_count: usize,
    attributes: Vec<String>,
    label: String,
}

/// Everything one dimension's crawl discovered, plus its query count.
struct DimensionCrawl {
    predicate: String,
    label: String,
    levels: Vec<PendingLevel>,
    queries: u64,
}

/// Crawls the hierarchy below one dimension predicate. Self-contained (own
/// query counter, no schema access) so crawls can run on separate threads.
fn crawl_dimension(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    predicate: String,
) -> Result<DimensionCrawl, SparqlError> {
    let mut queries = 0u64;
    let label = label_of(endpoint, &predicate, &config.label_predicates);
    queries += 1;
    let mut levels = Vec::new();
    collect_levels(
        endpoint,
        config,
        &mut levels,
        vec![predicate.clone()],
        &mut queries,
    )?;
    Ok(DimensionCrawl {
        predicate,
        label,
        levels,
        queries,
    })
}

/// Inserts a finished crawl into the schema, preserving depth-first
/// discovery order within the dimension.
fn apply_dimension(schema: &mut VirtualSchemaGraph, crawl: DimensionCrawl) {
    let dim = schema.add_dimension(crawl.predicate, crawl.label);
    for level in crawl.levels {
        schema.add_level(
            dim,
            level.path,
            level.member_count,
            level.attributes,
            level.label,
        );
    }
}

/// Outcome of an incremental refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshReport {
    /// Observations before the refresh.
    pub observations_before: usize,
    /// Observations after the refresh.
    pub observations_after: usize,
    /// Number of levels whose member counts changed.
    pub levels_changed: usize,
    /// SPARQL queries issued.
    pub endpoint_queries: u64,
}

/// Incrementally refreshes an existing schema after data was *added* to
/// the store (the paper: "if the schema does not change and only new data
/// is added, all the in-memory data structures are updated efficiently
/// without the need for re-computation").
///
/// Recounts observations and per-level members — one query per level
/// instead of the full recursive crawl. Structural changes (new
/// predicates, new hierarchy steps) require a fresh [`bootstrap`].
pub fn refresh(
    endpoint: &dyn SparqlEndpoint,
    schema: &mut VirtualSchemaGraph,
) -> Result<RefreshReport, SparqlError> {
    let config = BootstrapConfig::new(schema.observation_class.clone());
    let mut queries = 0u64;
    let observations_before = schema.observation_count;
    schema.observation_count = count_observations(endpoint, &config, &mut queries)?;
    let mut levels_changed = 0usize;
    let paths: Vec<(crate::model::LevelId, Vec<String>)> = schema
        .levels()
        .iter()
        .map(|l| (l.id, l.path.clone()))
        .collect();
    for (id, path) in paths {
        let count = count_level_members(endpoint, &config, &path, &mut queries)?;
        if count != schema.level(id).member_count {
            schema.set_member_count(id, count);
            levels_changed += 1;
        }
    }
    Ok(RefreshReport {
        observations_before,
        observations_after: schema.observation_count,
        levels_changed,
        endpoint_queries: queries,
    })
}

fn count_observations(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    queries: &mut u64,
) -> Result<usize, SparqlError> {
    let mut query = Query::select_all(vec![observation_type("o", &config.observation_class)]);
    query.select.push(SelectItem::Agg {
        func: AggFunc::Count,
        expr: Expr::Number(1.0),
        alias: "n".to_owned(),
    });
    *queries += 1;
    let solutions = endpoint.select(&query)?;
    Ok(solutions
        .value(0, "n")
        .and_then(|v| v.as_number(endpoint.graph()))
        .unwrap_or(0.0) as usize)
}

/// `SELECT DISTINCT ?p WHERE { ?o a C . ?o ?p ?x . FILTER(kind(?x)) }`.
fn typed_object_predicates(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    kind: Func,
    queries: &mut u64,
) -> Result<Vec<String>, SparqlError> {
    let mut query = Query::select_all(vec![
        observation_type("o", &config.observation_class),
        PatternElement::Triple(TriplePattern::with_pred_var(
            TermPattern::Var("o".to_owned()),
            "p",
            TermPattern::Var("x".to_owned()),
        )),
        PatternElement::Filter(Expr::Call(kind, vec![Expr::var("x")])),
    ]);
    query.select.push(SelectItem::Var("p".to_owned()));
    query.distinct = true;
    *queries += 1;
    let solutions = endpoint.select(&query)?;
    let graph = endpoint.graph();
    let mut predicates: Vec<String> = solutions
        .rows
        .iter()
        .filter_map(|row| row[0].as_ref().map(|v| v.string_form(graph)))
        .collect();
    predicates.sort_unstable();
    Ok(predicates)
}

/// Records the level reached by `path` and recurses into its roll-ups,
/// depth-first.
fn collect_levels(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    levels: &mut Vec<PendingLevel>,
    path: Vec<String>,
    queries: &mut u64,
) -> Result<(), SparqlError> {
    // distinct members at this level
    let member_count = count_level_members(endpoint, config, &path, queries)?;
    if member_count == 0 {
        return Ok(());
    }
    // literal-valued predicates on this level's members are its attributes
    let attributes = member_predicates(endpoint, config, &path, Func::IsLiteral, queries)?;
    let label = label_of(
        endpoint,
        path.last().expect("non-empty"),
        &config.label_predicates,
    );
    *queries += 1;
    levels.push(PendingLevel {
        path: path.clone(),
        member_count,
        attributes,
        label,
    });

    if path.len() >= config.max_depth {
        return Ok(());
    }
    // IRI-valued predicates lead to coarser levels
    for rollup in member_predicates(endpoint, config, &path, Func::IsIri, queries)? {
        if config.is_excluded(&rollup) || path.contains(&rollup) {
            continue; // cycle protection: a predicate may not repeat in a path
        }
        let mut child = path.clone();
        child.push(rollup);
        if levels.iter().any(|l| l.path == child) {
            continue;
        }
        collect_levels(endpoint, config, levels, child, queries)?;
    }
    Ok(())
}

fn count_level_members(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    path: &[String],
    queries: &mut u64,
) -> Result<usize, SparqlError> {
    // COUNT(DISTINCT ?m): one result row instead of one per member
    let mut query = Query::select_all(vec![
        observation_type("o", &config.observation_class),
        path_to_member("o", path, "m"),
    ]);
    query.select.push(SelectItem::Agg {
        func: AggFunc::CountDistinct,
        expr: Expr::var("m"),
        alias: "n".to_owned(),
    });
    *queries += 1;
    let solutions = endpoint.select(&query)?;
    Ok(solutions
        .value(0, "n")
        .and_then(|v| v.as_number(endpoint.graph()))
        .unwrap_or(0.0) as usize)
}

/// `SELECT DISTINCT ?q WHERE { ?o a C . ?o <path> ?m . ?m ?q ?x . FILTER(kind(?x)) }`.
fn member_predicates(
    endpoint: &dyn SparqlEndpoint,
    config: &BootstrapConfig,
    path: &[String],
    kind: Func,
    queries: &mut u64,
) -> Result<Vec<String>, SparqlError> {
    let mut query = Query::select_all(vec![
        observation_type("o", &config.observation_class),
        path_to_member("o", path, "m"),
        PatternElement::Triple(TriplePattern::with_pred_var(
            TermPattern::Var("m".to_owned()),
            "q",
            TermPattern::Var("x".to_owned()),
        )),
        PatternElement::Filter(Expr::Call(kind, vec![Expr::var("x")])),
    ]);
    query.select.push(SelectItem::Var("q".to_owned()));
    query.distinct = true;
    *queries += 1;
    let solutions = endpoint.select(&query)?;
    let graph = endpoint.graph();
    let mut predicates: Vec<String> = solutions
        .rows
        .iter()
        .filter_map(|row| row[0].as_ref().map(|v| v.string_form(graph)))
        .collect();
    predicates.sort_unstable();
    Ok(predicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use re2x_sparql::LocalEndpoint;

    /// Tiny asylum KG with typed observations, two-level hierarchies, and a
    /// cycle (partnerCountry ↔ partnerCountry) to exercise protection.
    fn fixture() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"
            @prefix ex: <http://ex/> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:origin rdfs:label "Country of Origin" .
            ex:applicants rdfs:label "Num Applicants" .

            ex:Syria ex:inContinent ex:Asia ; rdfs:label "Syria" ; ex:partner ex:Iraq .
            ex:Iraq ex:inContinent ex:Asia ; rdfs:label "Iraq" ; ex:partner ex:Syria .
            ex:Asia rdfs:label "Asia" .
            ex:Germany rdfs:label "Germany" .
            ex:France rdfs:label "France" .
            ex:m2014 ex:inYear ex:y2014 ; rdfs:label "October 2014" .
            ex:y2014 rdfs:label "2014" .

            ex:o1 a ex:Observation ; ex:origin ex:Syria ; ex:dest ex:Germany ;
                  ex:refPeriod ex:m2014 ; ex:applicants 300 .
            ex:o2 a ex:Observation ; ex:origin ex:Iraq ; ex:dest ex:France ;
                  ex:refPeriod ex:m2014 ; ex:applicants 120 .
            "#,
            &mut g,
        )
        .expect("fixture parses");
        LocalEndpoint::new(g)
    }

    #[test]
    fn discovers_full_schema_from_class_only() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        let s = &report.schema;
        assert_eq!(s.observation_count, 2);
        // measures
        assert_eq!(s.measures().len(), 1);
        assert_eq!(s.measures()[0].predicate, "http://ex/applicants");
        assert_eq!(s.measures()[0].label, "Num Applicants");
        // dimensions: origin, dest, refPeriod
        assert_eq!(s.dimensions().len(), 3);
        assert_eq!(
            s.dimension_by_predicate("http://ex/origin")
                .map(|d| s.dimension(d).label.as_str()),
            Some("Country of Origin")
        );
        // levels: origin (+continent, +partner, +partner/continent...),
        // dest, refPeriod (+year)
        let origin_base = s
            .level_by_path(&["http://ex/origin".to_owned()])
            .expect("base level");
        assert_eq!(s.level(origin_base).member_count, 2);
        let continent = s
            .level_by_path(&[
                "http://ex/origin".to_owned(),
                "http://ex/inContinent".to_owned(),
            ])
            .expect("continent level");
        assert_eq!(s.level(continent).member_count, 1);
        let year = s
            .level_by_path(&[
                "http://ex/refPeriod".to_owned(),
                "http://ex/inYear".to_owned(),
            ])
            .expect("year level");
        assert_eq!(s.level(year).member_count, 1);
        // attributes discovered on members
        assert!(s.level(origin_base)
            .attribute_predicates
            .contains(&re2x_rdf::vocab::rdfs::LABEL.to_owned()));
        assert!(report.endpoint_queries > 5);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn cycle_protection_terminates_partner_loop() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        let s = &report.schema;
        // partner chain exists but `partner` never repeats within a path
        let partner = s.level_by_path(&["http://ex/origin".to_owned(), "http://ex/partner".to_owned()]);
        assert!(partner.is_some(), "one partner hop explored");
        for level in s.levels() {
            let mut seen = std::collections::HashSet::new();
            for p in &level.path {
                assert!(seen.insert(p), "predicate repeated in {:?}", level.path);
            }
            assert!(level.depth() <= config.max_depth);
        }
    }

    #[test]
    fn excluded_predicates_do_not_become_dimensions() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        assert!(report
            .schema
            .dimension_by_predicate(vocab::rdf::TYPE)
            .is_none());
    }

    #[test]
    fn max_depth_limits_exploration() {
        let ep = fixture();
        let mut config = BootstrapConfig::new("http://ex/Observation");
        config.max_depth = 1;
        let report = bootstrap(&ep, &config).expect("bootstrap");
        assert!(report.schema.levels().iter().all(|l| l.depth() == 1));
    }

    #[test]
    fn refresh_recounts_without_recrawling() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/Observation");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        let mut schema = report.schema;

        // add an observation over a *new* origin member to the store
        let mut graph = ep.into_graph();
        re2x_rdf::io::parse_turtle(
            r#"@prefix ex: <http://ex/> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               ex:Eritrea ex:inContinent ex:Africa ; rdfs:label "Eritrea" .
               ex:o3 a ex:Observation ; ex:origin ex:Eritrea ; ex:dest ex:Germany ;
                     ex:refPeriod ex:m2014 ; ex:applicants 42 ."#,
            &mut graph,
        )
        .expect("update parses");
        let ep = LocalEndpoint::new(graph);

        let refresh_report = refresh(&ep, &mut schema).expect("refresh");
        assert_eq!(refresh_report.observations_before, 2);
        assert_eq!(refresh_report.observations_after, 3);
        assert_eq!(schema.observation_count, 3);
        assert!(refresh_report.levels_changed >= 2, "origin country + continent grew");
        let origin = schema
            .level_by_path(&["http://ex/origin".to_owned()])
            .expect("level kept");
        assert_eq!(schema.level(origin).member_count, 3, "Syria, Iraq, Eritrea");
        // refresh is much cheaper than the crawl: one query per level + 1
        assert_eq!(
            refresh_report.endpoint_queries,
            schema.levels().len() as u64 + 1
        );
        assert!(refresh_report.endpoint_queries < report.endpoint_queries);
    }

    #[test]
    fn empty_class_yields_empty_schema() {
        let ep = fixture();
        let config = BootstrapConfig::new("http://ex/NoSuchClass");
        let report = bootstrap(&ep, &config).expect("bootstrap");
        assert_eq!(report.schema.observation_count, 0);
        assert!(report.schema.dimensions().is_empty());
        assert!(report.schema.measures().is_empty());
    }
}
