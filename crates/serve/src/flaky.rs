//! Seeded fault injection at the endpoint seam.
//!
//! [`FlakyEndpoint`] decorates any endpoint with deterministic,
//! seed-driven failures and latency spikes: each `SELECT`/`ASK` call draws
//! from a SplitMix64 stream keyed by `(seed, call index)`, so a given seed
//! always faults the same calls — the fault-injection suites replay
//! byte-identical fault schedules while still exercising "random" arrival
//! patterns. Injected failures surface as the typed
//! [`SparqlError::Endpoint`] variant, which the session layer propagates
//! without panicking, letting the concurrency tests prove one tenant's
//! faults cannot stall or corrupt another's session.

use re2x_rdf::{Graph, TermId};
use re2x_sparql::{EndpointStats, Query, Solutions, SparqlEndpoint, SparqlError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64 step — the same generator the datagen crate seeds xoshiro
/// with, reused here so fault schedules are stable across platforms.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A decorator injecting seeded failures and latency spikes into the
/// `SELECT`/`ASK` traffic of the wrapped endpoint.
pub struct FlakyEndpoint<E> {
    inner: E,
    seed: u64,
    fail_one_in: u64,
    spike_one_in: u64,
    spike: Duration,
    calls: AtomicU64,
    injected: AtomicU64,
}

impl<E: SparqlEndpoint> FlakyEndpoint<E> {
    /// Wraps `inner` with a fault schedule derived from `seed`. Roughly
    /// one in `fail_one_in` queries fails and one in `spike_one_in` sleeps
    /// for `spike` before answering; `0` disables either kind.
    pub fn new(
        inner: E,
        seed: u64,
        fail_one_in: u64,
        spike_one_in: u64,
        spike: Duration,
    ) -> FlakyEndpoint<E> {
        FlakyEndpoint {
            inner,
            seed,
            fail_one_in,
            spike_one_in,
            spike,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A failures-only schedule: one in `fail_one_in` queries errors.
    pub fn failing(inner: E, seed: u64, fail_one_in: u64) -> FlakyEndpoint<E> {
        FlakyEndpoint::new(inner, seed, fail_one_in, 0, Duration::ZERO)
    }

    /// The wrapped endpoint.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Queries that were answered with an injected failure so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Draws the schedule for the next call: sleeps through a scheduled
    /// spike, then reports whether the call must fail.
    fn roll(&self) -> Result<(), SparqlError> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        let draw = splitmix64(self.seed ^ splitmix64(n));
        if self.spike_one_in > 0 && draw.is_multiple_of(self.spike_one_in) && !self.spike.is_zero()
        {
            std::thread::sleep(self.spike);
        }
        let draw = splitmix64(draw);
        if self.fail_one_in > 0 && draw.is_multiple_of(self.fail_one_in) {
            let k = self.injected.fetch_add(1, Ordering::SeqCst) + 1;
            return Err(SparqlError::Endpoint(format!(
                "injected fault #{k} (call {n}, seed {})",
                self.seed
            )));
        }
        Ok(())
    }
}

impl<E: SparqlEndpoint> SparqlEndpoint for FlakyEndpoint<E> {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        self.roll()?;
        self.inner.select(query)
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        self.roll()?;
        self.inner.ask(query)
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        self.inner.keyword_search(keyword, exact)
    }

    fn graph(&self) -> &Graph {
        self.inner.graph()
    }

    fn stats(&self) -> EndpointStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }

    fn tracer(&self) -> Option<&re2x_obs::Tracer> {
        self.inner.tracer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;
    use re2x_sparql::LocalEndpoint;

    fn endpoint() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            "@prefix ex: <http://ex/> . ex:o1 ex:dest ex:Germany .",
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    fn run_schedule(seed: u64) -> Vec<bool> {
        let flaky = FlakyEndpoint::failing(endpoint(), seed, 3);
        (0..32)
            .map(|_| {
                flaky
                    .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                    .is_err()
            })
            .collect()
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_seed() {
        let a = run_schedule(7);
        let b = run_schedule(7);
        let c = run_schedule(8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should fault different calls");
        let failures = a.iter().filter(|f| **f).count();
        assert!(failures > 0, "a 1-in-3 schedule over 32 calls must fault");
        assert!(failures < 32, "and must not fault everything");
    }

    #[test]
    fn injected_failures_are_typed_endpoint_errors() {
        let flaky = FlakyEndpoint::failing(endpoint(), 7, 1); // every call fails
        let err = flaky
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect_err("must fail");
        assert!(matches!(err, SparqlError::Endpoint(_)));
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(flaky.injected_failures(), 1);
        // the inner endpoint never saw the failed call
        assert_eq!(flaky.inner().stats().selects, 0);
    }

    #[test]
    fn disabled_schedules_pass_everything_through() {
        let flaky = FlakyEndpoint::new(endpoint(), 7, 0, 0, Duration::ZERO);
        for _ in 0..8 {
            flaky
                .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                .expect("no faults configured");
        }
        assert_eq!(flaky.injected_failures(), 0);
        assert_eq!(flaky.inner().stats().selects, 8);
    }
}
