//! Serialization round-trips across crates: a generated statistical KG
//! exported as N-Triples and re-imported must bootstrap to an identical
//! schema, and refinement queries must survive print→parse→execute.

use re2x_cube::{bootstrap, BootstrapConfig};
use re2x_rdf::io::{parse_ntriples, to_ntriples};
use re2x_rdf::Graph;
use re2x_sparql::{parse_query, query_to_sparql, LocalEndpoint, SparqlEndpoint};
use re2xolap::{reolap, ReolapConfig};

#[test]
fn dataset_round_trips_through_ntriples() {
    let mut dataset = re2x_datagen::eurostat::generate(400, 5);
    let graph = std::mem::take(&mut dataset.graph);
    let serialized = to_ntriples(&graph);
    assert!(serialized.lines().count() == graph.len());

    let mut reloaded = Graph::new();
    let inserted = parse_ntriples(&serialized, &mut reloaded).expect("reparse");
    assert_eq!(inserted, graph.len());
    assert_eq!(to_ntriples(&reloaded), serialized, "byte-stable round trip");

    // the reloaded store bootstraps to the identical schema
    let ep1 = LocalEndpoint::new(graph);
    let ep2 = LocalEndpoint::new(reloaded);
    let config = BootstrapConfig::new(&dataset.observation_class);
    let r1 = bootstrap(&ep1, &config).expect("bootstrap original");
    let r2 = bootstrap(&ep2, &config).expect("bootstrap reloaded");
    assert_eq!(r1.schema.stats(), r2.schema.stats());
}

#[test]
fn synthesized_queries_round_trip_as_text() {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    let outcome = reolap(
        &endpoint,
        &schema,
        &["Germany", "2014"],
        &ReolapConfig::default(),
    )
    .expect("synthesis");
    for q in &outcome.queries {
        let text = q.sparql();
        let reparsed = parse_query(&text).expect("printed query parses");
        assert_eq!(reparsed, q.query, "AST-stable: {text}");
        // and executing the re-parsed text gives the same rows
        let direct = endpoint.select(&q.query).expect("direct");
        let via_text = endpoint.select(&reparsed).expect("via text");
        assert_eq!(direct, via_text);
    }
}

#[test]
fn printed_queries_are_portable_sparql() {
    // No engine-internal syntax may leak into the printed form: the subset
    // printer emits standard SPARQL 1.1 (strict aliases, angle-bracket
    // IRIs, explicit GROUP BY).
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    let outcome =
        reolap(&endpoint, &schema, &["Asia"], &ReolapConfig::default()).expect("synthesis");
    for q in &outcome.queries {
        let text = query_to_sparql(&q.query);
        assert!(text.starts_with("SELECT "));
        assert!(!text.contains('\u{1}'), "no internal variable names leak");
        for var in &q.query.group_by {
            assert!(text.contains(&format!("?{var}")));
        }
        assert!(text.contains("(SUM(?m0) AS ?"), "strict aggregate aliases");
    }
}
