//! Data profiling — the "general information and statistics about the
//! dataset" functionality of the paper's user-study prototype (Section
//! 7.2: "(i) a data profiling functionality, returning general information
//! and statistics about the dataset (e.g., listing the available
//! dimensions and the number of distinct members)").
//!
//! Profiles are computed from the Virtual Schema Graph plus a few endpoint
//! queries for example members, and render as text for interactive use.

use re2x_cube::{patterns, VirtualSchemaGraph};
use re2x_sparql::{Query, SelectItem, SparqlEndpoint, SparqlError, Value};
use std::fmt::Write as _;

/// Profile of one hierarchy level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelProfile {
    /// Human-readable level display ("Country of Origin / Continent").
    pub display: String,
    /// Predicate path from the observation.
    pub path: Vec<String>,
    /// Distinct members.
    pub member_count: usize,
    /// A few example member labels.
    pub sample_members: Vec<String>,
}

/// Profile of one dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionProfile {
    /// Dimension label.
    pub label: String,
    /// Its levels, base first.
    pub levels: Vec<LevelProfile>,
}

/// The dataset profile shown to users before they type any example.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Observation class IRI.
    pub observation_class: String,
    /// Observation count.
    pub observations: usize,
    /// Per-dimension profiles.
    pub dimensions: Vec<DimensionProfile>,
    /// Measure labels with global (min, max, avg) over all observations.
    pub measures: Vec<(String, Option<MeasureStats>)>,
}

/// Global (min, max, avg) of one measure over all observations.
pub type MeasureStats = (f64, f64, f64);

/// Number of example member labels fetched per level.
const SAMPLES_PER_LEVEL: usize = 3;

/// Computes a dataset profile.
pub fn profile(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
) -> Result<DatasetProfile, SparqlError> {
    let mut dimensions = Vec::new();
    for dim in schema.dimensions() {
        let mut levels = Vec::new();
        for level in schema.levels_of(dim.id) {
            levels.push(LevelProfile {
                display: crate::query_model::OlapQuery::level_display(schema, level.id),
                path: level.path.clone(),
                member_count: level.member_count,
                sample_members: sample_members(endpoint, schema, &level.path)?,
            });
        }
        levels.sort_by_key(|l| l.path.len());
        dimensions.push(DimensionProfile {
            label: dim.label.clone(),
            levels,
        });
    }
    let mut measures = Vec::new();
    for measure in schema.measures() {
        measures.push((
            measure.label.clone(),
            measure_stats(endpoint, schema, &measure.predicate)?,
        ));
    }
    Ok(DatasetProfile {
        observation_class: schema.observation_class.clone(),
        observations: schema.observation_count,
        dimensions,
        measures,
    })
}

fn sample_members(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    path: &[String],
) -> Result<Vec<String>, SparqlError> {
    let mut query = Query::select_all(vec![
        patterns::observation_type("o", &schema.observation_class),
        patterns::path_to_member("o", path, "m"),
    ]);
    query.select.push(SelectItem::Var("m".to_owned()));
    query.distinct = true;
    query.limit = Some(SAMPLES_PER_LEVEL);
    let solutions = endpoint.select(&query)?;
    let graph = endpoint.graph();
    let label_predicates = re2x_cube::labels::default_label_predicates();
    Ok(solutions
        .rows
        .iter()
        .filter_map(|row| match row[0] {
            Some(Value::Term(id)) => graph
                .term(id)
                .as_iri()
                .map(|iri| re2x_cube::labels::label_of(endpoint, iri, &label_predicates)),
            _ => None,
        })
        .collect())
}

fn measure_stats(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    predicate: &str,
) -> Result<Option<(f64, f64, f64)>, SparqlError> {
    let mut query = Query::select_all(vec![
        patterns::observation_type("o", &schema.observation_class),
        re2x_sparql::PatternElement::Triple(re2x_sparql::TriplePattern::new(
            re2x_sparql::TermPattern::Var("o".to_owned()),
            predicate.to_owned(),
            re2x_sparql::TermPattern::Var("v".to_owned()),
        )),
    ]);
    for (func, alias) in [
        (re2x_sparql::AggFunc::Min, "mn"),
        (re2x_sparql::AggFunc::Max, "mx"),
        (re2x_sparql::AggFunc::Avg, "av"),
    ] {
        query.select.push(SelectItem::Agg {
            func,
            expr: re2x_sparql::Expr::var("v"),
            alias: alias.to_owned(),
        });
    }
    let solutions = endpoint.select(&query)?;
    let graph = endpoint.graph();
    let get = |c: &str| solutions.value(0, c).and_then(|v| v.as_number(graph));
    Ok(match (get("mn"), get("mx"), get("av")) {
        (Some(mn), Some(mx), Some(av)) => Some((mn, mx, av)),
        _ => None,
    })
}

impl DatasetProfile {
    /// Renders the profile as readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} observations of <{}>",
            self.observations, self.observation_class
        );
        for (label, stats) in &self.measures {
            match stats {
                Some((mn, mx, av)) => {
                    let _ = writeln!(out, "measure {label}: min {mn}, max {mx}, avg {av:.1}");
                }
                None => {
                    let _ = writeln!(out, "measure {label}: (no values)");
                }
            }
        }
        for dim in &self.dimensions {
            let _ = writeln!(out, "dimension \"{}\":", dim.label);
            for level in &dim.levels {
                let samples = if level.sample_members.is_empty() {
                    String::new()
                } else {
                    format!(" — e.g. {}", level.sample_members.join(", "))
                };
                let _ = writeln!(
                    out,
                    "  {} ({} members){samples}",
                    level.display, level.member_count
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_cube::{bootstrap, BootstrapConfig};
    use re2x_sparql::LocalEndpoint;

    fn env() -> (LocalEndpoint, VirtualSchemaGraph) {
        let mut dataset = re2x_datagen::running::generate();
        let graph = std::mem::take(&mut dataset.graph);
        let endpoint = LocalEndpoint::new(graph);
        let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
            .expect("bootstrap")
            .schema;
        (endpoint, schema)
    }

    #[test]
    fn profile_covers_all_dimensions_and_levels() {
        let (endpoint, schema) = env();
        let p = profile(&endpoint, &schema).expect("profile");
        assert_eq!(p.observations, 22);
        assert_eq!(p.dimensions.len(), schema.dimensions().len());
        let total_levels: usize = p.dimensions.iter().map(|d| d.levels.len()).sum();
        assert_eq!(total_levels, schema.levels().len());
        // base level first within each dimension
        for dim in &p.dimensions {
            for w in dim.levels.windows(2) {
                assert!(w[0].path.len() <= w[1].path.len());
            }
        }
    }

    #[test]
    fn samples_and_measure_stats_populated() {
        let (endpoint, schema) = env();
        let p = profile(&endpoint, &schema).expect("profile");
        let origin = p
            .dimensions
            .iter()
            .find(|d| d.label == "Country of Origin")
            .expect("origin dimension");
        assert!(!origin.levels[0].sample_members.is_empty());
        assert!(origin.levels[0].sample_members.len() <= SAMPLES_PER_LEVEL);
        let (label, stats) = &p.measures[0];
        assert_eq!(label, "Num Applicants");
        let (mn, mx, _) = stats.expect("numeric stats");
        assert_eq!(mn, 10.0, "smallest flow in the running example");
        assert_eq!(mx, 4000.0, "largest flow");
    }

    #[test]
    fn render_is_human_readable() {
        let (endpoint, schema) = env();
        let text = profile(&endpoint, &schema).expect("profile").render();
        assert!(text.contains("22 observations"));
        assert!(text.contains("dimension \"Country of Destination\":"));
        assert!(text.contains("measure Num Applicants: min 10"));
        assert!(text.contains("members"));
    }
}
