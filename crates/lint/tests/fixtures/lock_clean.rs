//! lock-order CLEAN fixture: both locks are registered, nesting happens
//! in one global order only (`fx.outer -> fx.inner`) which is declared,
//! and the re-entrant looking site in `sequential` drops the first guard
//! before taking the second, so no edge (and no cycle) arises there.

use std::sync::Mutex;

// lock-order: fx.outer -> fx.inner

pub struct Nested {
    // lock-order: fx.outer
    outer: Mutex<u32>,
    // lock-order: fx.inner
    inner: Mutex<u32>,
}

impl Nested {
    pub fn nested(&self) -> u32 {
        let o = lock_or_recover(&self.outer);
        let i = lock_or_recover(&self.inner);
        *o + *i
    }

    pub fn sequential(&self) -> u32 {
        let mut total = 0;
        {
            let i = lock_or_recover(&self.inner);
            total += *i;
        }
        let o = lock_or_recover(&self.outer);
        total + *o
    }
}
