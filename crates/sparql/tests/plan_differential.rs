//! Differential proof that the vectorized columnar executor and the
//! greedy planner preserve exact semantics: across all four figure
//! datasets and a seeded random-query harness, every combination of
//! [`PlanMode`] × [`ExecMode`] yields identical solutions, and the
//! [`ShardedEndpoint`] composition (whose shards now run the columnar
//! kernel by default) stays identical to the canonical reference.
//!
//! Two identity strengths apply:
//!
//! * **Row vs. columnar, same plan** — byte identity with no ordering
//!   caveat: the columnar kernel enumerates index matches in exactly the
//!   row executor's order, so even unordered queries must produce the
//!   same row sequence.
//! * **Planned vs. in-order** — the join order legitimately changes the
//!   row sequence, so queries pin a total order (`ORDER BY` over every
//!   projected variable / every group key); measures are integer-valued
//!   on the datasets used here, so aggregate sums are exact in f64 and
//!   reassociation cannot introduce drift.

use re2x_datagen::common::Dataset;
use re2x_datagen::{dbpedia, eurostat, production, running};
use re2x_sparql::{
    evaluate_full, parse_query, reference_solutions, ExecMode, LocalEndpoint, PlanMode, Route,
    ShardedEndpoint, SparqlEndpoint,
};
use re2x_testkit::TestRng;

const COMBOS: [(PlanMode, ExecMode); 4] = [
    (PlanMode::Planned, ExecMode::Columnar),
    (PlanMode::Planned, ExecMode::Row),
    (PlanMode::InOrder, ExecMode::Columnar),
    (PlanMode::InOrder, ExecMode::Row),
];

/// The (per-dataset) measure predicate — the one Dataset field the
/// generators don't expose directly.
fn measure_predicate(dataset: &Dataset) -> String {
    let local = match dataset.name.as_str() {
        "running-example" | "eurostat" => "numApplicants",
        "production" => "amount",
        "dbpedia" => "playCount",
        other => panic!("unknown dataset {other}"),
    };
    let dim = &dataset.dimension_predicates[0];
    let ns = &dim[..dim.rfind('/').expect("namespace separator") + 1];
    format!("{ns}{local}")
}

/// Flat-BGP shapes the columnar kernel handles natively, plus fallback
/// shapes (FILTER-interleaved, OPTIONAL, UNION, property paths) that must
/// silently take the row path — all compared row-for-row.
fn workload(dataset: &Dataset) -> Vec<String> {
    let class = &dataset.observation_class;
    let measure = measure_predicate(dataset);
    let dim0 = &dataset.dimension_predicates[0];
    let dim1 = &dataset.dimension_predicates[dataset.dimension_predicates.len() - 1];
    let rollup = &dataset.rollup_predicates[0];
    let label = &dataset.label_predicate;
    vec![
        // columnar-native flat stars and chains
        format!("SELECT ?o ?d WHERE {{ ?o <{dim0}> ?d }}"),
        format!("SELECT ?o ?d ?m WHERE {{ ?o <{dim0}> ?d . ?o <{measure}> ?m }}"),
        format!(
            "SELECT ?o ?a ?b ?m WHERE {{
                ?o <{dim0}> ?a . ?o <{dim1}> ?b . ?o <{measure}> ?m . ?o a <{class}>
             }}"
        ),
        format!("SELECT ?o ?d ?l WHERE {{ ?o <{dim0}> ?d . ?d <{label}> ?l }}"),
        // semijoin tail: a fully-bound pattern after the star
        format!("SELECT ?o ?d WHERE {{ ?o <{dim0}> ?d . ?o a <{class}> }}"),
        // variable predicate (two fresh vars in one pattern: fallback path)
        format!("SELECT ?p ?v WHERE {{ ?o a <{class}> . ?o ?p ?v }} LIMIT 200"),
        // aggregation over the flat star
        format!(
            "SELECT ?d (SUM(?m) AS ?total) (COUNT(?o) AS ?n) WHERE {{
                ?o <{dim0}> ?d . ?o <{measure}> ?m
             }} GROUP BY ?d ORDER BY ?d"
        ),
        // row-fallback shapes: filters, paths, OPTIONAL, UNION
        format!(
            "SELECT ?o ?m WHERE {{ ?o <{measure}> ?m . FILTER(?m > 10) }} ORDER BY DESC(?m) ?o"
        ),
        format!(
            "SELECT ?up (SUM(?m) AS ?total) WHERE {{
                ?o <{dim0}> / <{rollup}> ?up . ?o <{measure}> ?m
             }} GROUP BY ?up ORDER BY ?up"
        ),
        format!(
            "SELECT ?o ?d ?l WHERE {{
                ?o <{dim0}> ?d . OPTIONAL {{ ?d <{label}> ?l }}
             }} ORDER BY ?o ?d ?l"
        ),
        format!(
            "SELECT ?x WHERE {{
                {{ ?o <{dim0}> ?x }} UNION {{ ?o <{dim1}> ?x }}
             }} ORDER BY ?x"
        ),
        format!("ASK {{ ?o <{dim0}> ?d . ?o <{measure}> ?m }}"),
    ]
}

/// Row-vs-columnar byte identity under the *same* plan, for every query of
/// the figure workload — including unordered queries, whose row sequence
/// the columnar kernel must reproduce exactly.
fn assert_exec_identity(dataset: &Dataset) {
    let graph = &dataset.graph;
    for text in workload(dataset) {
        let query = parse_query(&text).expect("workload query parses");
        for mode in [PlanMode::Planned, PlanMode::InOrder] {
            let row = evaluate_full(graph, &query, mode, ExecMode::Row);
            let col = evaluate_full(graph, &query, mode, ExecMode::Columnar);
            assert_eq!(
                row, col,
                "{} {mode:?}: row/columnar diverge on {text}",
                dataset.name
            );
        }
    }
}

#[test]
fn running_example_row_and_columnar_are_byte_identical() {
    assert_exec_identity(&running::generate());
}

#[test]
fn eurostat_row_and_columnar_are_byte_identical() {
    assert_exec_identity(&eurostat::generate(400, 7));
}

#[test]
fn production_row_and_columnar_are_byte_identical() {
    // Same plan ⇒ same row order ⇒ float sums accumulate identically:
    // exact equality holds even for the float-valued production measure.
    assert_exec_identity(&production::generate(300, 11));
}

#[test]
fn dbpedia_row_and_columnar_are_byte_identical() {
    assert_exec_identity(&dbpedia::generate(300, 13));
}

/// The sharded composition answers identically whichever executor the
/// shards run: scatter-routed queries against the canonical reference,
/// replica-routed ones against plain local evaluation.
#[test]
fn sharded_composition_is_identical_under_columnar_default() {
    let dataset = eurostat::generate(300, 23);
    let local = LocalEndpoint::new(dataset.graph.clone());
    let sharded = ShardedEndpoint::with_observation_class(
        dataset.graph.clone(),
        &dataset.observation_class,
        4,
    );
    for text in workload(&dataset) {
        let query = parse_query(&text).expect("parse");
        if query.form != re2x_sparql::QueryForm::Select {
            continue;
        }
        let got = sharded.select(&query);
        let want = match sharded.route(&query) {
            Route::Scatter => reference_solutions(&local, &query),
            Route::Replica => local.select(&query),
        };
        assert_eq!(got, want, "sharded mismatch: {text}");
    }
}

// ---- seeded property harness ----------------------------------------------

/// A random flat BGP whose output order is pinned: `ORDER BY` over every
/// projected variable (and group keys for aggregates), so all four
/// plan × executor combinations must agree byte-for-byte. The textual
/// pattern order is shuffled — including disconnected-first orders — to
/// exercise the planner's connectivity preference and tie-breaking.
fn random_pinned_query(rng: &mut TestRng, dataset: &Dataset) -> String {
    let measure = measure_predicate(dataset);
    let dims = &dataset.dimension_predicates;
    let n_dims = rng.gen_range(1..dims.len().min(3) + 1);
    let mut chosen: Vec<&String> = Vec::new();
    while chosen.len() < n_dims {
        let d = rng.pick(dims);
        if !chosen.contains(&d) {
            chosen.push(d);
        }
    }
    let mut wher: Vec<String> = chosen
        .iter()
        .enumerate()
        .map(|(i, d)| format!("?o <{d}> ?d{i}"))
        .collect();
    let uses_measure = rng.gen_bool(0.8);
    if uses_measure {
        wher.push(format!("?o <{measure}> ?m"));
    }
    if rng.gen_bool(0.4) {
        wher.push(format!("?o a <{}>", dataset.observation_class));
    }
    // random textual order (Fisher–Yates) — all star patterns share ?o,
    // so even the naive in-order executor stays bounded by the index size
    for i in (1..wher.len()).rev() {
        let j = rng.gen_range(0..(i + 1) as u32) as usize;
        wher.swap(i, j);
    }
    let has_label = rng.gen_bool(0.4);
    if has_label {
        // a second hop off the first dimension: chain join. Inserted after
        // the pattern binding ?d0 so the in-order baseline never starts
        // from a disconnected pattern (which would build a cartesian
        // product of the whole label index against the star — the planner
        // avoids that, and `repro plan` measures it on a bounded dataset,
        // but a 64-case property suite cannot afford it).
        let bind = wher
            .iter()
            .position(|w| w.contains("?d0"))
            .map_or(0, |i| i + 1);
        let at = bind + rng.gen_range(0..(wher.len() - bind + 1) as u32) as usize;
        wher.insert(at, format!("?d0 <{}> ?l0", dataset.label_predicate));
    }
    let wher = wher.join(" . ");

    if uses_measure && rng.gen_bool(0.6) {
        let group_vars: Vec<String> = (0..n_dims).map(|i| format!("?d{i}")).collect();
        let funcs = ["SUM", "MIN", "MAX", "COUNT"];
        let aggs: Vec<String> = (0..rng.gen_range(1..3usize))
            .map(|i| format!("({}(?m) AS ?agg{i})", rng.pick(&funcs)))
            .collect();
        format!(
            "SELECT {gv} {aggs} WHERE {{ {wher} }} GROUP BY {gv} ORDER BY {gv}",
            gv = group_vars.join(" "),
            aggs = aggs.join(" "),
        )
    } else {
        let mut projected: Vec<String> = vec!["?o".to_owned()];
        projected.extend((0..n_dims).map(|i| format!("?d{i}")));
        if uses_measure {
            projected.push("?m".to_owned());
        }
        if has_label {
            projected.push("?l0".to_owned());
        }
        let mut text = format!(
            "SELECT {p} WHERE {{ {wher} }} ORDER BY {p}",
            p = projected.join(" ")
        );
        if rng.gen_bool(0.3) {
            text.push_str(&format!(" LIMIT {}", rng.gen_range(1..30u32)));
        }
        text
    }
}

fn property_all_combos_agree(dataset: &Dataset, name: &str) {
    let graph = &dataset.graph;
    re2x_testkit::check(name, |rng| {
        let text = random_pinned_query(rng, dataset);
        let query = parse_query(&text).expect("generated query parses");
        let baseline = evaluate_full(graph, &query, PlanMode::Planned, ExecMode::Columnar);
        for (mode, exec) in COMBOS {
            let got = evaluate_full(graph, &query, mode, exec);
            assert_eq!(got, baseline, "{mode:?}/{exec:?} diverges on {text}");
        }
    });
}

#[test]
fn property_plan_and_exec_modes_agree_on_eurostat() {
    property_all_combos_agree(&eurostat::generate(400, 99), "plan_differential_eurostat");
}

#[test]
fn property_plan_and_exec_modes_agree_on_dbpedia() {
    // The M-to-N genre/stylisticOrigin links make join-order mistakes
    // expensive and multi-valued fan-out common: the adversarial case for
    // both the planner and the columnar kernel.
    property_all_combos_agree(&dbpedia::generate(250, 101), "plan_differential_dbpedia");
}
