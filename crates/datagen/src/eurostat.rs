//! The Eurostat-shaped generator: asylum applications.
//!
//! Reproduces the Table 3 row exactly: 4 dimensions, 1 measure, 9 levels,
//! 373 dimension members:
//!
//! * `sex` — 1 level × 3 members,
//! * `citizen` ("Country of Origin") — country (171) with two parallel
//!   roll-ups: `inContinent` (7) and `inRegion` (23),
//! * `geo` ("Country of Destination") — 32 of the *same* country entities
//!   (Eurostat reuses country IRIs across roles, which is what makes
//!   examples like "Germany" ambiguous), whose roll-ups reach 2 continents
//!   and 5 regions,
//! * `refPeriod` — month (120) rolling up to year (10).
//!
//! 3 + (171+7+23) + (32+2+5) + (120+10) = 373.

use crate::common::{
    declare_predicate, make_members, pick_member, rng, Dataset, ExpectedShape, MemberPool,
};
use re2x_rdf::{vocab, Graph, Literal};

const NS: &str = "http://data.example.org/eurostat/";

/// Countries eligible as destinations (their region index is in
/// [`DEST_REGIONS`]); named after EU member states for recognizable
/// examples.
const DEST_NAMES: [&str; 32] = [
    "Germany",
    "France",
    "Italy",
    "Austria",
    "Sweden",
    "Spain",
    "Portugal",
    "Netherlands",
    "Belgium",
    "Greece",
    "Poland",
    "Czechia",
    "Hungary",
    "Romania",
    "Bulgaria",
    "Croatia",
    "Slovenia",
    "Slovakia",
    "Denmark",
    "Finland",
    "Ireland",
    "Luxembourg",
    "Malta",
    "Cyprus",
    "Estonia",
    "Latvia",
    "Lithuania",
    "Norway",
    "Switzerland",
    "Iceland",
    "Liechtenstein",
    "Albania",
];

/// Common origin-country names for the remaining pool.
const ORIGIN_NAMES: [&str; 12] = [
    "Syria",
    "Afghanistan",
    "Iraq",
    "Eritrea",
    "Nigeria",
    "Pakistan",
    "Somalia",
    "Iran",
    "Ukraine",
    "Russia",
    "China",
    "Bangladesh",
];

const CONTINENTS: [&str; 7] = [
    "Europe",
    "Asia",
    "Africa",
    "Americas",
    "Oceania",
    "Middle East",
    "Caribbean",
];

const MONTH_NAMES: [&str; 12] = [
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

const COUNTRIES: usize = 171;
const REGIONS: usize = 23;
/// Regions whose countries may be destinations; they map onto exactly two
/// continents (`r % 7 ∈ {0, 1}`).
const DEST_REGIONS: [usize; 5] = [0, 1, 7, 8, 14];
const MONTHS: usize = 120;
const YEARS: usize = 10;
const FIRST_YEAR: usize = 2010;

/// The destination-eligible country indexes, ascending (first 32).
fn dest_indices() -> Vec<usize> {
    (0..COUNTRIES)
        .filter(|i| DEST_REGIONS.contains(&(i % REGIONS)))
        .take(32)
        .collect()
}

fn country_label(i: usize, dest_rank: Option<usize>) -> String {
    if let Some(rank) = dest_rank {
        return DEST_NAMES[rank].to_owned();
    }
    if let Some(name) = ORIGIN_NAMES.get(i % 29) {
        // scatter the recognizable origin names over low indexes only once
        if i < 29 {
            return (*name).to_owned();
        }
    }
    format!("Country {i}")
}

/// Generates the dataset at the given observation scale. Member counts are
/// exact whenever `observations ≥ 171` (the largest base pool).
pub fn generate(observations: usize, seed: u64) -> Dataset {
    let mut graph = Graph::new();
    let mut rng = rng(seed);

    // predicates
    let p_sex = declare_predicate(&mut graph, NS, "sex", "Sex");
    let p_citizen = declare_predicate(&mut graph, NS, "citizen", "Country of Origin");
    let p_geo = declare_predicate(&mut graph, NS, "geo", "Country of Destination");
    let p_period = declare_predicate(&mut graph, NS, "refPeriod", "Ref Period");
    let p_continent = declare_predicate(&mut graph, NS, "inContinent", "In Continent");
    let p_region = declare_predicate(&mut graph, NS, "inRegion", "In Region");
    let p_year = declare_predicate(&mut graph, NS, "inYear", "In Year");
    let p_measure = declare_predicate(&mut graph, NS, "numApplicants", "Num Applicants");

    // members
    let dest = dest_indices();
    let countries = make_members(&mut graph, NS, "country", COUNTRIES, |i| {
        country_label(i, dest.iter().position(|&d| d == i))
    });
    let continents = make_members(&mut graph, NS, "continent", CONTINENTS.len(), |i| {
        CONTINENTS[i].to_owned()
    });
    let regions = make_members(&mut graph, NS, "region", REGIONS, |i| format!("Region {i}"));
    let sexes = make_members(&mut graph, NS, "sex", 3, |i| {
        ["Male", "Female", "Total"][i].to_owned()
    });
    let months = make_members(&mut graph, NS, "month", MONTHS, |i| {
        format!("{} {}", MONTH_NAMES[i % 12], FIRST_YEAR + i / 12)
    });
    let years = make_members(&mut graph, NS, "year", YEARS, |i| {
        format!("{}", FIRST_YEAR + i)
    });

    // hierarchy links: country → region → (derived) continent; both are
    // direct roll-ups of the country level (parallel hierarchies)
    {
        let p_region_id = graph.intern_iri(&p_region);
        let p_continent_id = graph.intern_iri(&p_continent);
        for (i, &c) in countries.ids.iter().enumerate() {
            let region = i % REGIONS;
            graph.insert_ids(c, p_region_id, regions.ids[region]);
            graph.insert_ids(c, p_continent_id, continents.ids[region % 7]);
        }
        let p_year_id = graph.intern_iri(&p_year);
        for (i, &m) in months.ids.iter().enumerate() {
            graph.insert_ids(m, p_year_id, years.ids[i / 12]);
        }
    }

    // observations
    let type_id = graph.intern_iri(vocab::rdf::TYPE);
    let class_iri = vocab::qb::OBSERVATION.to_owned();
    let class_id = graph.intern_iri(&class_iri);
    let p_sex_id = graph.intern_iri(&p_sex);
    let p_citizen_id = graph.intern_iri(&p_citizen);
    let p_geo_id = graph.intern_iri(&p_geo);
    let p_period_id = graph.intern_iri(&p_period);
    let p_measure_id = graph.intern_iri(&p_measure);
    for j in 0..observations {
        let obs = graph.intern_iri(format!("{NS}obs/{j}"));
        graph.insert_ids(obs, type_id, class_id);
        graph.insert_ids(obs, p_sex_id, sexes.ids[pick_member(j, 3, &mut rng)]);
        graph.insert_ids(
            obs,
            p_citizen_id,
            countries.ids[pick_member(j, COUNTRIES, &mut rng)],
        );
        graph.insert_ids(
            obs,
            p_geo_id,
            countries.ids[dest[pick_member(j, dest.len(), &mut rng)]],
        );
        graph.insert_ids(
            obs,
            p_period_id,
            months.ids[pick_member(j, MONTHS, &mut rng)],
        );
        let value = graph.intern_literal(Literal::integer(rng.gen_range(1i64..3000)));
        graph.insert_ids(obs, p_measure_id, value);
    }

    let _unused: &MemberPool = &sexes;
    Dataset {
        graph,
        ..describe(observations)
    }
}

/// The dataset's metadata — everything [`generate`] produces except the
/// graph itself. Used to re-attach a snapshot-loaded graph without
/// regenerating the data (see [`crate::cache`]).
pub fn describe(observations: usize) -> Dataset {
    let pred = |local: &str| format!("{NS}{local}");
    Dataset {
        name: "eurostat".to_owned(),
        graph: Graph::new(),
        observation_class: vocab::qb::OBSERVATION.to_owned(),
        observations,
        dimension_predicates: vec![pred("sex"), pred("citizen"), pred("geo"), pred("refPeriod")],
        rollup_predicates: vec![pred("inContinent"), pred("inRegion"), pred("inYear")],
        label_predicate: vocab::rdfs::LABEL.to_owned(),
        expected: ExpectedShape {
            dimensions: 4,
            measures: 1,
            levels: 9,
            members: 373,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_indices_shape() {
        let dest = dest_indices();
        assert_eq!(dest.len(), 32);
        // exactly 5 regions, exactly 2 continents
        let regions: std::collections::BTreeSet<usize> = dest.iter().map(|i| i % REGIONS).collect();
        assert_eq!(regions.len(), 5);
        let continents: std::collections::BTreeSet<usize> = regions.iter().map(|r| r % 7).collect();
        assert_eq!(continents.len(), 2);
        // Germany is a destination
        assert_eq!(dest[0], 0);
    }

    #[test]
    fn member_arithmetic_matches_table3() {
        // 3 + (171+7+23) + (32+2+5) + (120+10) = 373
        assert_eq!(3 + (171 + 7 + 23) + (32 + 2 + 5) + (120 + 10), 373);
    }

    #[test]
    fn small_scale_generation_is_well_formed() {
        let d = generate(200, 42);
        assert_eq!(d.observations, 200);
        let g = &d.graph;
        let type_p = g.iri_id(vocab::rdf::TYPE).expect("typed");
        let class = g.iri_id(&d.observation_class).expect("class");
        assert_eq!(g.subjects(type_p, class).len(), 200);
        // every observation has all four dimensions and the measure
        let obs0 = g.iri_id(&format!("{NS}obs/0")).expect("obs");
        for p in &d.dimension_predicates {
            let pid = g.iri_id(p).expect("dim pred");
            assert_eq!(g.objects(obs0, pid).len(), 1);
        }
        let m = g.iri_id(&format!("{NS}numApplicants")).expect("measure");
        let v = g.objects(obs0, m)[0];
        assert!(g.numeric_value(v).is_some());
        // Germany occurs with label
        assert_eq!(g.literals_matching_exact("Germany").len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(150, 7);
        let b = generate(150, 7);
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(
            re2x_rdf::io::to_ntriples(&a.graph),
            re2x_rdf::io::to_ntriples(&b.graph)
        );
    }
}
