//! Concurrency properties of the session server, on the deterministic
//! testkit harness (`RE2X_TEST_SEED` / `RE2X_TEST_CASES` honored).
//!
//! The oracle: a transcript produced by a worker under full concurrency —
//! N seeded clients submitting interleaved scripts for several tenants —
//! must be **byte-identical** to the serial replay of the same script
//! through a bare session over an undecorated endpoint. No round may be
//! lost, duplicated, or reordered, and the admission accounting must
//! balance exactly.

use re2x_cube::{bootstrap, BootstrapConfig, VirtualSchemaGraph};
use re2x_rdf::Graph;
use re2x_serve::{run_script, RoundOp, ServerBuilder, SessionScript, TenantSpec, Ticket};
use re2x_sparql::LocalEndpoint;
use re2x_testkit::{check_n, TestRng};
use re2xolap::{RefineOp, SessionConfig};

fn fixture() -> (Graph, VirtualSchemaGraph) {
    let mut dataset = re2x_datagen::running::generate();
    let graph = std::mem::take(&mut dataset.graph);
    let endpoint = LocalEndpoint::new(graph);
    let schema = bootstrap(&endpoint, &BootstrapConfig::new(&dataset.observation_class))
        .expect("bootstrap")
        .schema;
    (endpoint.into_graph(), schema)
}

const EXAMPLES: [&[&str]; 4] = [
    &["Germany", "2014"],
    &["France", "2014"],
    &["Italy", "2014"],
    &["Germany", "Syria"],
];

fn gen_script(rng: &mut TestRng, tenant: &str) -> SessionScript {
    let ops = [
        RefineOp::Disaggregate,
        RefineOp::TopK,
        RefineOp::Percentile,
        RefineOp::Similarity,
    ];
    let example = EXAMPLES[rng.gen_range(0usize..EXAMPLES.len())];
    let mut rounds = vec![RoundOp::Synthesize {
        example: example.iter().map(|s| (*s).to_owned()).collect(),
        pick: rng.gen_range(0usize..4),
    }];
    for _ in 0..rng.gen_range(1usize..5) {
        rounds.push(match rng.pick_weighted(&[5, 2, 2, 1]) {
            0 => RoundOp::Refine {
                op: ops[rng.gen_range(0usize..4)],
                pick: rng.gen_range(0usize..4),
            },
            1 => RoundOp::Preview {
                op: ops[rng.gen_range(0usize..4)],
            },
            2 => RoundOp::Think {
                millis: rng.gen_range(1u64..3),
            },
            _ => RoundOp::Backtrack,
        });
    }
    SessionScript {
        tenant: tenant.to_owned(),
        rounds,
    }
}

#[test]
fn concurrent_transcripts_match_serial_replay_byte_for_byte() {
    check_n("concurrent_transcripts_match_serial_replay", 3, |rng| {
        let (graph, schema) = fixture();
        let tenants = ["t0", "t1", "t2"];
        let scripts: Vec<SessionScript> = (0..9)
            .map(|i| gen_script(rng, tenants[i % tenants.len()]))
            .collect();

        let server = ServerBuilder::new()
            .workers(4)
            .queue_capacity(scripts.len())
            .tenant(TenantSpec::new("t0"))
            .tenant(TenantSpec::new("t1").cached(32))
            .tenant(TenantSpec::new("t2").traced())
            .start(&graph, &schema);

        // three seeded clients submit interleaved slices concurrently
        let tickets: Vec<(usize, Ticket)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|c| {
                    let server = &server;
                    let scripts = &scripts;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for (i, script) in scripts.iter().enumerate() {
                            if i % 3 == c {
                                let t = server.submit(script.clone()).expect("admitted");
                                out.push((i, t));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        assert_eq!(tickets.len(), scripts.len(), "no submission lost");

        // serial replay oracle: a bare endpoint, one session per script
        let oracle_endpoint = LocalEndpoint::new(graph.clone());
        for (i, ticket) in tickets {
            let concurrent = server.wait(ticket).expect("session completes");
            let serial = run_script(
                &oracle_endpoint,
                &schema,
                &scripts[i],
                &SessionConfig::default(),
            )
            .expect("serial replay");
            assert_eq!(
                concurrent.to_text(),
                serial.to_text(),
                "script {i}: concurrent transcript diverged from serial replay"
            );
            // one record per scripted round: nothing lost, nothing duplicated
            assert_eq!(concurrent.rounds.len(), scripts[i].rounds.len());
        }

        // admission accounting balances exactly, per tenant
        let metrics = server.metrics().clone();
        server.shutdown();
        let mut admitted = 0;
        let mut completed = 0;
        for tenant in tenants {
            let a = metrics.counter(&re2x_obs::label(
                "serve.sessions_admitted",
                &[("tenant", tenant)],
            ));
            let c = metrics.counter(&re2x_obs::label(
                "serve.sessions_completed",
                &[("tenant", tenant)],
            ));
            assert_eq!(a, c, "tenant {tenant}: admitted {a} != completed {c}");
            assert_eq!(
                metrics
                    .gauge(&re2x_obs::label(
                        "serve.sessions_active",
                        &[("tenant", tenant)]
                    ))
                    .unwrap_or(0.0),
                0.0,
                "tenant {tenant}: sessions still marked active after drain"
            );
            admitted += a;
            completed += c;
        }
        assert_eq!(admitted, scripts.len() as u64);
        assert_eq!(completed, scripts.len() as u64);
    });
}

#[test]
fn rerunning_the_same_workload_is_deterministic() {
    check_n("rerunning_the_same_workload_is_deterministic", 2, |rng| {
        let (graph, schema) = fixture();
        let scripts: Vec<SessionScript> = (0..4).map(|_| gen_script(rng, "t0")).collect();
        let run = |workers: usize| -> Vec<String> {
            let server = ServerBuilder::new()
                .workers(workers)
                .queue_capacity(16)
                .tenant(TenantSpec::new("t0"))
                .start(&graph, &schema);
            let tickets: Vec<Ticket> = scripts
                .iter()
                .map(|s| server.submit(s.clone()).expect("admitted"))
                .collect();
            tickets
                .into_iter()
                .map(|t| server.wait(t).expect("completes").to_text())
                .collect()
        };
        // 1 worker vs 4 workers: scheduling must not leak into results
        assert_eq!(run(1), run(4));
    });
}
