//! The paper's running example (Figure 1): a small, hand-crafted
//! "Requests for Asylum" KG whose aggregates reproduce Table 2 exactly —
//! `⟨"Germany", "2014"⟩` interpreted as Country of Destination × Year
//! yields SUM(Num Applicants) of 8 030 for Germany, 5 011 for France,
//! 1 220 for Italy and 120 for Austria.

use crate::common::{declare_predicate, Dataset, ExpectedShape};
use re2x_rdf::{vocab, Graph, Literal, Term};

const NS: &str = "http://data.example.org/asylum/";

/// Per-(destination, origin) applicant counts for 2014 (October), summing
/// to the Table 2 values per destination, plus a smaller 2013 slice so
/// drill-downs by year have something to show.
const FLOWS_2014: [(&str, &str, i64); 16] = [
    ("Germany", "Syria", 4000),
    ("Germany", "Iraq", 2500),
    ("Germany", "Afghanistan", 1500),
    ("Germany", "Ukraine", 30),
    ("France", "Syria", 2511),
    ("France", "Iraq", 1300),
    ("France", "Afghanistan", 1100),
    ("France", "Ukraine", 100),
    ("Italy", "Syria", 700),
    ("Italy", "Iraq", 300),
    ("Italy", "Afghanistan", 200),
    ("Italy", "Ukraine", 20),
    ("Austria", "Syria", 60),
    ("Austria", "Iraq", 30),
    ("Austria", "Afghanistan", 20),
    ("Austria", "Ukraine", 10),
];

const FLOWS_2013: [(&str, &str, i64); 6] = [
    ("Germany", "Syria", 2000),
    ("Germany", "Iraq", 900),
    ("France", "Syria", 1400),
    ("France", "Iraq", 500),
    ("Italy", "Syria", 350),
    ("Austria", "Syria", 25),
];

/// Origin country → continent.
const CONTINENT_OF: [(&str, &str); 4] = [
    ("Syria", "Asia"),
    ("Iraq", "Asia"),
    ("Afghanistan", "Asia"),
    ("Ukraine", "Europe"),
];

/// Builds the running-example dataset (Figure 1 / Table 2).
pub fn generate() -> Dataset {
    let mut graph = Graph::new();

    let p_dest = declare_predicate(
        &mut graph,
        NS,
        "countryDestination",
        "Country of Destination",
    );
    let p_origin = declare_predicate(&mut graph, NS, "countryOrigin", "Country of Origin");
    let p_period = declare_predicate(&mut graph, NS, "refPeriod", "Ref Period");
    let p_sex = declare_predicate(&mut graph, NS, "sex", "Sex");
    let p_age = declare_predicate(&mut graph, NS, "ageRange", "Age Range");
    let p_continent = declare_predicate(&mut graph, NS, "inContinent", "In Continent");
    let p_year = declare_predicate(&mut graph, NS, "inYear", "In Year");
    let p_measure = declare_predicate(&mut graph, NS, "numApplicants", "Num Applicants");

    let label = graph.intern_iri(vocab::rdfs::LABEL);
    let member = |graph: &mut Graph, local: &str, name: &str| {
        let id = graph.intern_iri(format!("{NS}member/{local}"));
        let lit = graph.intern_literal(Literal::simple(name));
        graph.insert_ids(id, label, lit);
        id
    };

    // dimension members
    let continent_pred = graph.intern_iri(&p_continent);
    for (country, continent) in CONTINENT_OF {
        let c = member(&mut graph, &format!("country/{country}"), country);
        let k = member(&mut graph, &format!("continent/{continent}"), continent);
        graph.insert_ids(c, continent_pred, k);
    }
    for dest in ["Germany", "France", "Italy", "Austria"] {
        member(&mut graph, &format!("country/{dest}"), dest);
    }
    let year_pred = graph.intern_iri(&p_year);
    for year in ["2013", "2014"] {
        let y = member(&mut graph, &format!("year/{year}"), year);
        let m = member(
            &mut graph,
            &format!("month/October{year}"),
            &format!("October {year}"),
        );
        graph.insert_ids(m, year_pred, y);
    }
    for sex in ["Male", "Female"] {
        member(&mut graph, &format!("sex/{sex}"), sex);
    }
    for age in ["0-17", "18-34", "35-64", "65+"] {
        member(&mut graph, &format!("age/{age}"), age);
    }

    // observations — one per (dest, origin, year); sex/age alternate so
    // those dimensions are populated but do not split the Table 2 sums
    // (each observation carries the full flow, sex="Male"/"Female"
    // alternating would split sums, so every observation uses one member).
    let type_id = graph.intern_iri(vocab::rdf::TYPE);
    let class_iri = vocab::qb::OBSERVATION.to_owned();
    let class_id = graph.intern_iri(&class_iri);
    let dest_id = graph.intern_iri(&p_dest);
    let origin_id = graph.intern_iri(&p_origin);
    let period_id = graph.intern_iri(&p_period);
    let sex_id = graph.intern_iri(&p_sex);
    let age_id = graph.intern_iri(&p_age);
    let measure_id = graph.intern_iri(&p_measure);

    let mut observations = 0usize;
    let mut add_flows = |graph: &mut Graph, flows: &[(&str, &str, i64)], year: &str| {
        for (i, (dest, origin, value)) in flows.iter().enumerate() {
            let obs = graph.intern_iri(format!("{NS}obs/{year}/{i}"));
            graph.insert_ids(obs, type_id, class_id);
            // interning is idempotent: these members were declared above,
            // so each call returns the existing id
            let dest_m = graph.intern_iri(format!("{NS}member/country/{dest}"));
            let origin_m = graph.intern_iri(format!("{NS}member/country/{origin}"));
            let month_m = graph.intern_iri(format!("{NS}member/month/October{year}"));
            let sex_m = graph.intern_iri(format!("{NS}member/sex/{}", ["Male", "Female"][i % 2]));
            let age_m = graph.intern_iri(format!(
                "{NS}member/age/{}",
                ["0-17", "18-34", "35-64", "65+"][i % 4]
            ));
            graph.insert_ids(obs, dest_id, dest_m);
            graph.insert_ids(obs, origin_id, origin_m);
            graph.insert_ids(obs, period_id, month_m);
            graph.insert_ids(obs, sex_id, sex_m);
            graph.insert_ids(obs, age_id, age_m);
            let v = graph.intern_literal(Literal::integer(*value));
            graph.insert_ids(obs, measure_id, v);
            observations += 1;
        }
    };
    add_flows(&mut graph, &FLOWS_2014, "2014");
    add_flows(&mut graph, &FLOWS_2013, "2013");

    // a label on the observation class itself, as real QB data has
    graph.insert(
        Term::iri(class_iri.clone()),
        Term::iri(vocab::rdfs::LABEL),
        Term::from(Literal::simple("Observation")),
    );

    debug_assert_eq!(observations, FLOWS_2014.len() + FLOWS_2013.len());
    Dataset {
        graph,
        ..describe()
    }
}

/// The dataset's metadata — everything [`generate`] produces except the
/// graph itself. Used to re-attach a snapshot-loaded graph without
/// regenerating the data (see [`crate::cache`]).
pub fn describe() -> Dataset {
    let pred = |local: &str| format!("{NS}{local}");
    Dataset {
        name: "running-example".to_owned(),
        graph: Graph::new(),
        observation_class: vocab::qb::OBSERVATION.to_owned(),
        observations: FLOWS_2014.len() + FLOWS_2013.len(),
        dimension_predicates: vec![
            pred("countryDestination"),
            pred("countryOrigin"),
            pred("refPeriod"),
            pred("sex"),
            pred("ageRange"),
        ],
        rollup_predicates: vec![pred("inContinent"), pred("inYear")],
        label_predicate: vocab::rdfs::LABEL.to_owned(),
        expected: ExpectedShape {
            dimensions: 5,
            measures: 1,
            // dest(1) + origin(country→continent: 2) + refPeriod(month→year: 2)
            // + sex(1) + age(1)
            levels: 7,
            // dest countries 4 + origin countries 4 + continents 2 +
            // months 2 + years 2 + sexes 2 + ages 4
            members: 20,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sums_are_encoded() {
        let per_dest = |flows: &[(&str, &str, i64)], dest: &str| -> i64 {
            flows.iter().filter(|f| f.0 == dest).map(|f| f.2).sum()
        };
        assert_eq!(per_dest(&FLOWS_2014, "Germany"), 8030);
        assert_eq!(per_dest(&FLOWS_2014, "France"), 5011);
        assert_eq!(per_dest(&FLOWS_2014, "Italy"), 1220);
        assert_eq!(per_dest(&FLOWS_2014, "Austria"), 120);
    }

    #[test]
    fn dataset_builds_and_links_hierarchies() {
        let d = generate();
        assert_eq!(d.observations, 22);
        let g = &d.graph;
        let syria = g
            .iri_id(&format!("{NS}member/country/Syria"))
            .expect("syria");
        let cont = g.iri_id(&format!("{NS}inContinent")).expect("pred");
        let asia = g.objects(syria, cont);
        assert_eq!(asia.len(), 1);
        // Germany is never an origin here but is a destination
        let germany = g
            .iri_id(&format!("{NS}member/country/Germany"))
            .expect("germany");
        let dest = g.iri_id(&format!("{NS}countryDestination")).expect("pred");
        assert!(!g.subjects(dest, germany).is_empty());
    }
}
