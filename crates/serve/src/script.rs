//! Scripted sessions and replayable transcripts.
//!
//! A [`SessionScript`] is a deterministic sequence of exploration rounds —
//! synthesize-and-choose, refine-and-apply, preview, think, backtrack —
//! that the server's workers and a bare serial [`re2xolap::Session`] drive
//! through *the same* [`run_script`] code path. Each executed round is
//! digested into a [`RoundRecord`] (an FNV-1a hash of the result set's TSV
//! rendering, no timing), so a [`SessionTranscript`] produced under
//! concurrency is byte-identical to the serial replay of the same script —
//! the correctness oracle of the concurrency property suite.

use re2x_cube::VirtualSchemaGraph;
use re2x_sparql::{to_tsv, SparqlEndpoint};
use re2xolap::{Re2xError, RefineOp, Session, SessionConfig};
use std::fmt::Write as _;
use std::time::Duration;

/// One scripted round of an exploration session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundOp {
    /// Synthesize candidate queries from an example tuple and execute the
    /// `pick`-th candidate (modulo the candidate count).
    Synthesize {
        /// The example tuple's components (labels or literals).
        example: Vec<String>,
        /// Index of the candidate to execute.
        pick: usize,
    },
    /// Generate refinements with one ExRef operation and apply the
    /// `pick`-th offer (modulo the offer count).
    Refine {
        /// The refinement operation.
        op: RefineOp,
        /// Index of the offer to apply.
        pick: usize,
    },
    /// Preview every offered refinement of `op` without committing to one.
    Preview {
        /// The refinement operation to preview.
        op: RefineOp,
    },
    /// Simulated user think time.
    Think {
        /// Milliseconds to pause before the next round.
        millis: u64,
    },
    /// Backtrack to the previous step.
    Backtrack,
}

/// A deterministic session workload: which tenant runs it and its rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionScript {
    /// The tenant whose endpoint stack services the session.
    pub tenant: String,
    /// The rounds, in order.
    pub rounds: Vec<RoundOp>,
}

/// The digested outcome of one executed round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// What ran (`synthesize`, `refine:topk`, `preview:sim`, …).
    pub op: String,
    /// FNV-1a digest of the round's result set (or a symbolic outcome for
    /// resultless rounds), with no timing component.
    pub digest: String,
}

/// Timing-free end-of-session accounting, comparable across runs. Only
/// session-local counters belong here: endpoint-stats deltas (query
/// counts, busy time) are shared across every session on the same tenant
/// stack and would make transcripts diverge under concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TranscriptSummary {
    /// Interactions performed.
    pub interactions: u64,
    /// Exploration paths offered across all rounds.
    pub paths_offered: u64,
    /// Result tuples made accessible.
    pub tuples_accessible: u64,
}

/// The replayable record of one scripted session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTranscript {
    /// The tenant that ran it.
    pub tenant: String,
    /// One record per scripted round, in order.
    pub rounds: Vec<RoundRecord>,
    /// Timing-free session totals.
    pub summary: TranscriptSummary,
}

impl SessionTranscript {
    /// Renders the transcript as a stable text block — the byte-identity
    /// oracle used by the concurrency property suite.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "tenant\t{}", self.tenant);
        for (i, r) in self.rounds.iter().enumerate() {
            let _ = writeln!(out, "{i}\t{}\t{}", r.op, r.digest);
        }
        let s = &self.summary;
        let _ = writeln!(
            out,
            "summary\tinteractions={} paths={} tuples={}",
            s.interactions, s.paths_offered, s.tuples_accessible
        );
        out
    }
}

/// FNV-1a 64-bit over the rendered result set.
fn digest(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

fn op_label(op: RefineOp) -> &'static str {
    match op {
        RefineOp::Disaggregate => "dis",
        RefineOp::TopK => "topk",
        RefineOp::Percentile => "perc",
        RefineOp::Similarity => "sim",
    }
}

/// Drives one scripted session to completion over `endpoint` and returns
/// its transcript. This is the single code path shared by the server's
/// workers and the serial replay oracle: determinism here is what makes
/// the two comparable. Rounds that find nothing to act on (no candidates,
/// no refinements, nothing to backtrack) record a symbolic digest instead
/// of failing, so scripts survive sparse corners of the data; endpoint and
/// engine errors propagate as typed [`Re2xError`]s.
pub fn run_script(
    endpoint: &dyn SparqlEndpoint,
    schema: &VirtualSchemaGraph,
    script: &SessionScript,
    config: &SessionConfig,
) -> Result<SessionTranscript, Re2xError> {
    let mut session = Session::new(endpoint, schema, config.clone());
    let graph = endpoint.graph();
    let mut rounds = Vec::with_capacity(script.rounds.len());
    for round in &script.rounds {
        let record = match round {
            RoundOp::Synthesize { example, pick } => {
                let parts: Vec<&str> = example.iter().map(String::as_str).collect();
                let outcome = session.synthesize(&parts)?;
                if outcome.queries.is_empty() {
                    RoundRecord {
                        op: "synthesize".to_owned(),
                        digest: "no-candidates".to_owned(),
                    }
                } else {
                    let idx = pick % outcome.queries.len();
                    let mut queries = outcome.queries;
                    let step = session.choose(queries.swap_remove(idx))?;
                    RoundRecord {
                        op: format!("synthesize[{idx}]"),
                        digest: digest(&to_tsv(&step.solutions, graph)),
                    }
                }
            }
            RoundOp::Refine { op, pick } => {
                let offers = session.refinements(*op)?;
                if offers.is_empty() {
                    RoundRecord {
                        op: format!("refine:{}", op_label(*op)),
                        digest: "no-refinements".to_owned(),
                    }
                } else {
                    let idx = pick % offers.len();
                    let mut offers = offers;
                    let step = session.apply(offers.swap_remove(idx))?;
                    RoundRecord {
                        op: format!("refine:{}[{idx}]", op_label(*op)),
                        digest: digest(&to_tsv(&step.solutions, graph)),
                    }
                }
            }
            RoundOp::Preview { op } => {
                let offers = session.refinements(*op)?;
                let previews = session.preview(&offers, 0)?;
                let mut all = String::new();
                for p in &previews {
                    all.push_str(&to_tsv(p, graph));
                    all.push('\n');
                }
                RoundRecord {
                    op: format!("preview:{}", op_label(*op)),
                    digest: digest(&all),
                }
            }
            RoundOp::Think { millis } => {
                std::thread::sleep(Duration::from_millis(*millis));
                RoundRecord {
                    op: "think".to_owned(),
                    digest: "-".to_owned(),
                }
            }
            RoundOp::Backtrack => RoundRecord {
                op: "backtrack".to_owned(),
                digest: if session.backtrack() {
                    "backtracked".to_owned()
                } else {
                    "at-start".to_owned()
                },
            },
        };
        rounds.push(record);
    }
    let metrics = session.finish();
    Ok(SessionTranscript {
        tenant: script.tenant.clone(),
        rounds,
        summary: TranscriptSummary {
            interactions: metrics.interactions,
            paths_offered: metrics.paths_offered,
            tuples_accessible: metrics.tuples_accessible,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_sensitive() {
        assert_eq!(digest(""), "cbf29ce484222325");
        assert_eq!(digest("abc"), digest("abc"));
        assert_ne!(digest("abc"), digest("abd"));
    }

    #[test]
    fn transcript_text_is_stable() {
        let t = SessionTranscript {
            tenant: "t0".to_owned(),
            rounds: vec![
                RoundRecord {
                    op: "synthesize[0]".to_owned(),
                    digest: "deadbeefdeadbeef".to_owned(),
                },
                RoundRecord {
                    op: "think".to_owned(),
                    digest: "-".to_owned(),
                },
            ],
            summary: TranscriptSummary {
                interactions: 2,
                paths_offered: 3,
                tuples_accessible: 5,
            },
        };
        let text = t.to_text();
        assert_eq!(
            text,
            "tenant\tt0\n0\tsynthesize[0]\tdeadbeefdeadbeef\n1\tthink\t-\n\
             summary\tinteractions=2 paths=3 tuples=5\n"
        );
        assert_eq!(t.to_text(), text, "rendering is deterministic");
    }
}
