//! Differential proof that [`ShardedEndpoint`] is byte-identical to
//! [`LocalEndpoint`] across the figure workload datasets and a seeded
//! property harness.
//!
//! Scatter-routed queries are compared against the canonical reference
//! ([`reference_solutions`]: local evaluation under the same deterministic
//! total order, so ORDER BY + LIMIT tie boundaries are well-defined);
//! replica-routed queries — including invalid ones — must return the raw
//! local result or the raw local error, verbatim.

use re2x_datagen::common::Dataset;
use re2x_datagen::{dbpedia, eurostat, production, running};
use re2x_sparql::{
    parse_query, reference_solutions, CachingEndpoint, LocalEndpoint, Query, Route,
    ShardedEndpoint, SparqlEndpoint, TracingEndpoint,
};
use re2x_testkit::TestRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The (per-dataset) measure predicate — the one Dataset field the
/// generators don't expose directly.
fn measure_predicate(dataset: &Dataset) -> String {
    let local = match dataset.name.as_str() {
        "running-example" | "eurostat" => "numApplicants",
        "production" => "amount",
        "dbpedia" => "playCount",
        other => panic!("unknown dataset {other}"),
    };
    let dim = &dataset.dimension_predicates[0];
    let ns = &dim[..dim.rfind('/').expect("namespace separator") + 1];
    format!("{ns}{local}")
}

/// The figure-workload query battery for one dataset: every mergeable
/// shape the merge planner claims (GROUP BY with SUM/AVG/COUNT/MIN/MAX,
/// roll-up paths, HAVING, DISTINCT, ORDER BY + LIMIT/OFFSET, class probe)
/// plus the fallback shapes (schema discovery, COUNT DISTINCT, unordered
/// LIMIT, invalid queries).
fn workload(dataset: &Dataset) -> Vec<String> {
    let class = &dataset.observation_class;
    let measure = measure_predicate(dataset);
    let dim0 = &dataset.dimension_predicates[0];
    let dim1 = &dataset.dimension_predicates[dataset.dimension_predicates.len() - 1];
    let rollup = &dataset.rollup_predicates[0];
    let label = &dataset.label_predicate;
    let mut queries = vec![
        // Aggregation pipeline shapes.
        format!(
            "SELECT ?d (SUM(?m) AS ?total) WHERE {{ ?o <{dim0}> ?d . ?o <{measure}> ?m }}
             GROUP BY ?d ORDER BY DESC(?total) ?d"
        ),
        format!(
            "SELECT ?a ?b (AVG(?m) AS ?mean) (COUNT(?o) AS ?n) WHERE {{
                ?o <{dim0}> ?a . ?o <{dim1}> ?b . ?o <{measure}> ?m
             }} GROUP BY ?a ?b ORDER BY ?a ?b"
        ),
        format!(
            "SELECT ?up (SUM(?m) AS ?total) (MIN(?m) AS ?lo) (MAX(?m) AS ?hi) WHERE {{
                ?o <{dim0}> / <{rollup}> ?up . ?o <{measure}> ?m
             }} GROUP BY ?up ORDER BY ?up"
        ),
        format!(
            "SELECT (SUM(?m) AS ?total) (AVG(?m) AS ?mean) (COUNT(?o) AS ?n)
             WHERE {{ ?o a <{class}> . ?o <{measure}> ?m }}"
        ),
        format!(
            "SELECT ?d (SUM(?m) AS ?total) WHERE {{ ?o <{dim0}> ?d . ?o <{measure}> ?m }}
             GROUP BY ?d HAVING (COUNT(?o) > 2) ORDER BY ?d"
        ),
        // Fine-grained grouping: one group per observation (row-heavy).
        format!(
            "SELECT ?o (SUM(?m) AS ?total) WHERE {{ ?o <{measure}> ?m }}
             GROUP BY ?o ORDER BY DESC(?total) ?o LIMIT 25"
        ),
        // Non-aggregate scatter shapes.
        format!("SELECT DISTINCT ?d WHERE {{ ?o <{dim0}> ?d }} ORDER BY ?d"),
        format!(
            "SELECT ?o ?m WHERE {{ ?o <{measure}> ?m }} ORDER BY DESC(?m) ?o LIMIT 10 OFFSET 3"
        ),
        format!("SELECT ?o ?d ?l WHERE {{ ?o <{dim0}> ?d . ?d <{label}> ?l }} ORDER BY ?l ?o"),
        format!("SELECT (COUNT(?o) AS ?n) WHERE {{ ?o a <{class}> }}"),
        // Replica-fallback shapes.
        format!("SELECT ?member ?l WHERE {{ ?member <{label}> ?l }} ORDER BY ?l ?member"),
        format!("SELECT (COUNT(DISTINCT ?d) AS ?n) WHERE {{ ?o <{dim0}> ?d }}"),
        format!("SELECT ?o WHERE {{ ?o <{dim0}> ?d }} LIMIT 5"),
        format!(
            "SELECT ?d WHERE {{ ?o <{dim0}> ?d . ?o <{measure}> ?m }}
             GROUP BY ?d HAVING (COUNT(DISTINCT ?o) > 1) ORDER BY ?d"
        ),
        // Invalid shapes — the replica must reproduce the exact error.
        format!("SELECT ?o (SUM(?m) AS ?t) WHERE {{ ?o <{measure}> ?m }} GROUP BY ?zzz"),
        format!("SELECT ?d WHERE {{ ?o <{dim0}> ?d }} ORDER BY ?nope"),
    ];
    if dataset.dimension_predicates.len() > 2 {
        let dim2 = &dataset.dimension_predicates[1];
        queries.push(format!(
            "SELECT ?a (AVG(?m) AS ?mean) WHERE {{
                ?o <{dim2}> ?a . ?o <{measure}> ?m
             }} GROUP BY ?a HAVING (AVG(?m) >= 1 && SUM(?m) > 10) ORDER BY DESC(?mean) ?a LIMIT 7"
        ));
    }
    queries
}

/// How solution numbers are compared. `Exact` demands byte identity — the
/// guarantee for integer-valued measures, where f64 addition is exact and
/// the partial-sum merge cannot re-associate any rounding. `Ulp` allows a
/// relative error of a few last-place units for float-valued measures
/// (the production dataset), where summation order is unspecified even
/// between two local evaluations over differently-built indexes.
#[derive(Clone, Copy, PartialEq)]
enum Numeric {
    Exact,
    Ulp,
}

fn results_match(
    a: &Result<re2x_sparql::Solutions, re2x_sparql::SparqlError>,
    b: &Result<re2x_sparql::Solutions, re2x_sparql::SparqlError>,
    numeric: Numeric,
) -> bool {
    if numeric == Numeric::Exact {
        return a == b;
    }
    match (a, b) {
        (Err(x), Err(y)) => x == y,
        (Ok(x), Ok(y)) => {
            use re2x_sparql::Value;
            x.vars == y.vars
                && x.rows.len() == y.rows.len()
                && x.rows.iter().zip(&y.rows).all(|(ra, rb)| {
                    ra.len() == rb.len()
                        && ra.iter().zip(rb).all(|(ca, cb)| match (ca, cb) {
                            (Some(Value::Number(p)), Some(Value::Number(q))) => {
                                p == q || (p - q).abs() <= 1e-9 * p.abs().max(q.abs())
                            }
                            _ => ca == cb,
                        })
                })
        }
        _ => false,
    }
}

/// Asserts one endpoint/query pair is identical to local evaluation,
/// branching on the decomposer's own routing decision.
fn assert_identical(
    sharded: &ShardedEndpoint,
    local: &LocalEndpoint,
    query: &Query,
    numeric: Numeric,
    context: &str,
) {
    match sharded.route(query) {
        Route::Scatter => {
            let got = sharded.select(query);
            let want = reference_solutions(local, query);
            assert!(
                results_match(&got, &want, numeric),
                "scatter mismatch: {context}\n got: {got:?}\nwant: {want:?}"
            );
        }
        Route::Replica => {
            let got = sharded.select(query);
            let want = local.select(query);
            assert!(
                results_match(&got, &want, numeric),
                "replica mismatch: {context}\n got: {got:?}\nwant: {want:?}"
            );
        }
    }
}

fn run_workload(dataset: &Dataset, numeric: Numeric) {
    run_workload_at(dataset, numeric, &SHARD_COUNTS);
}

fn run_workload_at(dataset: &Dataset, numeric: Numeric, shard_counts: &[usize]) {
    let local = LocalEndpoint::new(dataset.graph.clone());
    let queries = workload(dataset);
    for &n in shard_counts {
        let sharded = ShardedEndpoint::with_observation_class(
            dataset.graph.clone(),
            &dataset.observation_class,
            n,
        );
        for text in &queries {
            let query = parse_query(text).expect("workload query parses");
            assert_identical(
                &sharded,
                &local,
                &query,
                numeric,
                &format!("{} n={n}: {text}", dataset.name),
            );
        }
        // The battery must actually exercise both paths.
        assert!(
            sharded.scatter_count() >= 10,
            "{} n={n} scatters",
            dataset.name
        );
        assert!(
            sharded.fallback_count() >= 4,
            "{} n={n} fallbacks",
            dataset.name
        );
    }
}

#[test]
fn running_example_workload_is_byte_identical() {
    run_workload(&running::generate(), Numeric::Exact);
}

#[test]
fn eurostat_workload_is_byte_identical() {
    run_workload(&eurostat::generate(400, 7), Numeric::Exact);
}

#[test]
fn production_workload_matches_local_to_float_ulp() {
    // The production measure is float-valued; partial-sum merges
    // re-associate additions, so identity holds up to last-place units.
    run_workload(&production::generate(300, 11), Numeric::Ulp);
}

#[test]
fn dbpedia_workload_is_byte_identical() {
    // The dbpedia schema alone is ~250k triples (87k members); restrict the
    // shard sweep — the other three datasets cover the full {1,2,4,8} range.
    run_workload_at(&dbpedia::generate(300, 13), Numeric::Exact, &[1, 4]);
}

#[test]
fn snapshot_reassembled_shards_are_byte_identical() {
    // The deployment path the snapshot cache enables: partition once, write
    // one snapshot per shard, then re-assemble the endpoint from the loaded
    // artifacts (`ShardedEndpoint::from_loaded_shards`) instead of
    // re-partitioning. The reassembled endpoint must route and answer
    // exactly like one partitioned from scratch.
    let dataset = eurostat::generate(400, 7);
    let local = LocalEndpoint::new(dataset.graph.clone());
    let queries = workload(&dataset);
    let dir = std::env::temp_dir().join(format!("re2x-shard-reassembly-{}", std::process::id()));
    for &n in &[2usize, 4] {
        let parts = re2x_rdf::partition(&dataset.graph, &dataset.observation_class, n);
        let paths = parts
            .write_shard_snapshots(&dir, "reassembly")
            .expect("write shard snapshots");
        let shard_graphs: Vec<re2x_rdf::Graph> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                re2x_rdf::load_shard_snapshot(p, "reassembly", i, n).expect("load shard snapshot")
            })
            .collect();
        let reassembled = ShardedEndpoint::from_loaded_shards(
            dataset.graph.clone(),
            &dataset.observation_class,
            shard_graphs,
        );
        let fresh = ShardedEndpoint::with_observation_class(
            dataset.graph.clone(),
            &dataset.observation_class,
            n,
        );
        for text in &queries {
            let query = parse_query(text).expect("workload query parses");
            // The re-derived layout must route exactly like the original.
            assert_eq!(
                reassembled.route(&query),
                fresh.route(&query),
                "route diverged after reassembly: n={n}: {text}"
            );
            assert_identical(
                &reassembled,
                &local,
                &query,
                Numeric::Exact,
                &format!("reassembled n={n}: {text}"),
            );
        }
        assert!(
            reassembled.scatter_count() >= 10,
            "reassembled n={n} scatters"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_stack_composition_is_byte_identical() {
    // Caching over tracing over sharded: the decorator stack the session
    // layer composes in production.
    let dataset = eurostat::generate(300, 21);
    let local = LocalEndpoint::new(dataset.graph.clone());
    let tracer = re2x_obs::Tracer::enabled();
    let stack = CachingEndpoint::new(TracingEndpoint::new(
        ShardedEndpoint::with_observation_class(
            dataset.graph.clone(),
            &dataset.observation_class,
            4,
        ),
        tracer,
    ));
    let queries = workload(&dataset);
    for round in 0..2 {
        for text in &queries {
            let query = parse_query(text).expect("parse");
            let got = stack.select(&query);
            // The stack canonicalizes scatter results; compare accordingly.
            let sharded_probe = ShardedEndpoint::with_observation_class(
                dataset.graph.clone(),
                &dataset.observation_class,
                4,
            );
            match sharded_probe.route(&query) {
                Route::Scatter => {
                    assert_eq!(
                        got,
                        reference_solutions(&local, &query),
                        "round {round}: {text}"
                    );
                }
                Route::Replica => {
                    assert_eq!(got, local.select(&query), "round {round}: {text}");
                }
            }
        }
    }
    // Second round was answered from cache.
    assert!(
        stack.stats().cache_hits
            >= queries.iter().filter(|t| parse_query(t).is_ok()).count() as u64 - 2
    );
}

// ---- seeded property harness ----------------------------------------------

/// Builds a random query over the eurostat schema. Mixes mergeable and
/// fallback shapes; measure values are integers, so partial SUM/AVG merges
/// are exact in f64 and byte-identical to local evaluation.
fn random_query(rng: &mut TestRng, dataset: &Dataset) -> String {
    let measure = measure_predicate(dataset);
    let dims = &dataset.dimension_predicates;
    let n_dims = rng.gen_range(1..dims.len().min(3) + 1);
    let mut chosen: Vec<&String> = Vec::new();
    while chosen.len() < n_dims {
        let d = rng.pick(dims);
        if !chosen.contains(&d) {
            chosen.push(d);
        }
    }
    let mut wher: Vec<String> = chosen
        .iter()
        .enumerate()
        .map(|(i, d)| {
            if rng.gen_bool(0.25) {
                let rollup = rng.pick(&dataset.rollup_predicates);
                format!("?o <{d}> / <{rollup}> ?d{i}")
            } else {
                format!("?o <{d}> ?d{i}")
            }
        })
        .collect();
    let uses_measure = rng.gen_bool(0.8);
    if uses_measure {
        wher.push(format!("?o <{measure}> ?m"));
    }
    if rng.gen_bool(0.3) {
        wher.push(format!("?o a <{}>", dataset.observation_class));
    }
    let wher = wher.join(" . ");

    if uses_measure && rng.gen_bool(0.7) {
        // Aggregate query over the chosen dimensions.
        let group_vars: Vec<String> = (0..n_dims).map(|i| format!("?d{i}")).collect();
        let funcs = ["SUM", "AVG", "MIN", "MAX", "COUNT"];
        let n_aggs = rng.gen_range(1..4usize);
        let aggs: Vec<String> = (0..n_aggs)
            .map(|i| format!("({}(?m) AS ?agg{i})", rng.pick(&funcs)))
            .collect();
        let mut text = format!(
            "SELECT {} {} WHERE {{ {wher} }} GROUP BY {}",
            group_vars.join(" "),
            aggs.join(" "),
            group_vars.join(" ")
        );
        if rng.gen_bool(0.3) {
            let threshold = rng.gen_range(0..2000u32);
            let func = rng.pick(&funcs);
            text.push_str(&format!(" HAVING ({func}(?m) >= {threshold})"));
        }
        if rng.gen_bool(0.5) {
            let dir = if rng.gen_bool(0.5) {
                "DESC(?agg0)"
            } else {
                "?d0"
            };
            text.push_str(&format!(" ORDER BY {dir}"));
            if rng.gen_bool(0.5) {
                text.push_str(&format!(" LIMIT {}", rng.gen_range(1..20u32)));
            }
        }
        text
    } else {
        // Plain pattern query.
        let distinct = if rng.gen_bool(0.4) { "DISTINCT " } else { "" };
        let mut projected: Vec<String> = (0..n_dims).map(|i| format!("?d{i}")).collect();
        if distinct.is_empty() {
            projected.insert(0, "?o".to_owned());
        }
        let mut text = format!(
            "SELECT {distinct}{} WHERE {{ {wher} }}",
            projected.join(" ")
        );
        if rng.gen_bool(0.6) {
            text.push_str(&format!(" ORDER BY {}", projected.join(" ")));
            if rng.gen_bool(0.4) {
                text.push_str(&format!(" LIMIT {}", rng.gen_range(1..30u32)));
            }
        } else if rng.gen_bool(0.15) {
            // Unordered LIMIT: must fall back, still identical via replica.
            text.push_str(&format!(" LIMIT {}", rng.gen_range(1..10u32)));
        }
        text
    }
}

#[test]
fn property_random_queries_are_byte_identical_across_shard_counts() {
    let dataset = eurostat::generate(400, 99);
    let local = LocalEndpoint::new(dataset.graph.clone());
    let sharded: Vec<ShardedEndpoint> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            ShardedEndpoint::with_observation_class(
                dataset.graph.clone(),
                &dataset.observation_class,
                n,
            )
        })
        .collect();
    re2x_testkit::check("sharded_differential", |rng| {
        let text = random_query(rng, &dataset);
        let query = parse_query(&text).expect("generated query parses");
        for endpoint in &sharded {
            assert_identical(endpoint, &local, &query, Numeric::Exact, &text);
        }
    });
    // The harness must hit the scatter path a meaningful number of times.
    assert!(sharded[2].scatter_count() > 0, "harness never scattered");
}
