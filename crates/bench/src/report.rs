//! Plain-text table formatting and result-file output for the `repro`
//! binary.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// A simple aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:w$} ", cell, w = widths[i]);
            }
            out.push_str("|\n");
        };
        line(&self.header, &mut out);
        for (i, &w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = w + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Formats a duration in adaptive units (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let micros = d.as_micros();
    if micros < 1_000 {
        format!("{micros} µs")
    } else if micros < 1_000_000 {
        format!("{:.1} ms", micros as f64 / 1_000.0)
    } else {
        format!("{:.2} s", micros as f64 / 1_000_000.0)
    }
}

/// Formats a byte count in adaptive units.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Mean of a duration slice.
pub fn mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    durations.iter().sum::<Duration>() / durations.len() as u32
}

/// Writes an experiment section both to stdout and (best effort) to
/// `bench_results/<name>.txt`.
pub fn emit(results_dir: &Path, name: &str, title: &str, body: &str) {
    let text = format!("== {title} ==\n\n{body}\n");
    println!("{text}");
    let _ = std::fs::create_dir_all(results_dir);
    let _ = std::fs::write(results_dir.join(format!("{name}.txt")), &text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12 µs");
        assert_eq!(fmt_duration(Duration::from_micros(2_500)), "2.5 ms");
        assert_eq!(fmt_duration(Duration::from_millis(3_250)), "3.25 s");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn mean_of_durations() {
        assert_eq!(mean(&[]), Duration::ZERO);
        assert_eq!(
            mean(&[Duration::from_millis(2), Duration::from_millis(4)]),
            Duration::from_millis(3)
        );
    }
}
