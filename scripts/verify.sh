#!/usr/bin/env bash
# Full offline verification gate: tier-1 (release build + tests) plus the
# complete workspace test suite, with warnings promoted to errors.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail

cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
export CARGO_NET_OFFLINE="true"

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "== bench targets compile (bench-criterion) =="
cargo build --offline -p re2x-bench --benches --features bench-criterion

echo "verify: OK"
