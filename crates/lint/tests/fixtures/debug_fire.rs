//! no-debug-output FIRE fixture: terminal output from library code.

pub fn noisy(x: u32) -> u32 {
    println!("x = {x}");
    eprintln!("still here");
    dbg!(x)
}
