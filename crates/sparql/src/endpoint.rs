//! The SPARQL endpoint seam.
//!
//! RE²xOLAP interacts with the triplestore *only* through a standard SPARQL
//! interface (the paper runs against Virtuoso). [`SparqlEndpoint`] is that
//! seam; [`LocalEndpoint`] implements it over an in-memory [`Graph`] and
//! additionally records per-query statistics and can inject an artificial
//! per-query latency, which the experiment harness uses to reproduce the
//! paper's observations about endpoint performance dominating bootstrap and
//! refinement costs.
//!
//! Endpoints compose as a decorator stack: [`LocalEndpoint`] at the bottom,
//! [`crate::CachingEndpoint`] memoizing repeated queries above it, and — as
//! the architecture scales out — sharded/multi-backend decorators above
//! that. The trait therefore requires `Send + Sync`: every decorator and
//! backend must be shareable across the crawler's worker threads.

// lint:allow-file(no-wallclock, endpoint latency accounting and the injected-latency test layer)

use crate::ast::Query;
use crate::error::SparqlError;
use crate::eval::{evaluate, evaluate_ask};
use crate::parser::parse_query;
use crate::value::Solutions;
use re2x_obs::lock_or_recover;
use re2x_rdf::{Graph, TermId};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// The histogram moved to the zero-dependency `re2x-obs` crate so that
// endpoint statistics, the metrics registry, and per-phase query
// provenance all bucket latencies identically; the old path keeps working
// through this re-export.
pub use re2x_obs::LatencyHistogram;

/// Cumulative statistics of an endpoint.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EndpointStats {
    /// Number of `SELECT` queries answered.
    pub selects: u64,
    /// Number of `ASK` queries answered.
    pub asks: u64,
    /// Number of keyword-search calls answered.
    pub keyword_searches: u64,
    /// Total rows returned by `SELECT` queries.
    pub rows_returned: u64,
    /// Total evaluation time (including injected latency).
    pub busy: Duration,
    /// Queries answered from a cache decorator without reaching this
    /// endpoint (zero on an undecorated endpoint).
    pub cache_hits: u64,
    /// Queries that missed every cache decorator and were evaluated.
    pub cache_misses: u64,
    /// Cache entries evicted by the decorators' LRU bound.
    pub cache_evictions: u64,
    /// Per-query latency distribution (including injected latency).
    pub latency: LatencyHistogram,
}

impl EndpointStats {
    /// Total number of queries answered *by this endpoint* (cache hits in a
    /// decorator above it never reach it and are not included).
    pub fn total_queries(&self) -> u64 {
        self.selects + self.asks + self.keyword_searches
    }

    /// Folds `other` into `self`, field by field. Merging is commutative
    /// and associative, so decorator stacks and per-shard statistics can be
    /// combined in any order into one report.
    pub fn merge(&mut self, other: &EndpointStats) {
        self.selects += other.selects;
        self.asks += other.asks;
        self.keyword_searches += other.keyword_searches;
        self.rows_returned += other.rows_returned;
        self.busy += other.busy;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.latency.merge(&other.latency);
    }
}

/// A standard SPARQL query interface plus the full-text keyword lookup the
/// paper assumes of the triplestore.
///
/// `Send + Sync` is part of the contract: the parallel bootstrap crawler
/// and any future sharded decorator issue queries from multiple threads
/// against one shared endpoint reference.
pub trait SparqlEndpoint: Send + Sync {
    /// Answers a `SELECT` query.
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError>;

    /// Answers an `ASK` query (any query form is tested for non-emptiness).
    fn ask(&self, query: &Query) -> Result<bool, SparqlError>;

    /// Full-text keyword resolution: literal terms matching the keyword.
    /// With `exact`, the whole normalized lexical form must match; without,
    /// all tokens of the keyword must occur in the literal.
    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId>;

    /// Term-resolution surface for interpreting the [`TermId`]s inside
    /// returned [`Solutions`]. (A remote implementation would resolve ids
    /// from its response bindings; the seam keeps ids for efficiency.)
    fn graph(&self) -> &Graph;

    /// Snapshot of the endpoint's cumulative statistics. Decorators merge
    /// their own accounting (e.g. cache hit/miss counters) into the
    /// snapshot of the endpoint they wrap.
    fn stats(&self) -> EndpointStats;

    /// Resets the statistics (e.g. between experiment phases).
    fn reset_stats(&self);

    /// The tracer queries through this endpoint are attributed to, if the
    /// stack contains a tracing decorator. The async adapter uses this to
    /// capture the submitter's span context at `submit` time so that
    /// queries serviced on pool threads reconcile to the same provenance
    /// paths as their serial equivalents. Decorators forward to their
    /// inner endpoint; the default (no tracer anywhere) is `None`.
    fn tracer(&self) -> Option<&re2x_obs::Tracer> {
        None
    }

    /// Parses and answers a `SELECT` query given as text.
    fn select_text(&self, text: &str) -> Result<Solutions, SparqlError> {
        self.select(&parse_query(text)?)
    }

    /// Parses and answers an `ASK` query given as text.
    fn ask_text(&self, text: &str) -> Result<bool, SparqlError> {
        self.ask(&parse_query(text)?)
    }
}

/// Delegates every [`SparqlEndpoint`] method to the pointee, so decorator
/// stacks can be composed *dynamically* — per tenant, from configuration —
/// as `Box<dyn SparqlEndpoint>` layers instead of a statically known
/// generic tower. `&E`, [`Box`], and [`std::sync::Arc`] all forward.
macro_rules! delegate_endpoint {
    ($($ptr:ty),*) => {$(
        impl<E: SparqlEndpoint + ?Sized> SparqlEndpoint for $ptr {
            fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
                (**self).select(query)
            }
            fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
                (**self).ask(query)
            }
            fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
                (**self).keyword_search(keyword, exact)
            }
            fn graph(&self) -> &Graph {
                (**self).graph()
            }
            fn stats(&self) -> EndpointStats {
                (**self).stats()
            }
            fn reset_stats(&self) {
                (**self).reset_stats()
            }
            fn tracer(&self) -> Option<&re2x_obs::Tracer> {
                (**self).tracer()
            }
        }
    )*};
}

delegate_endpoint!(&E, Box<E>, std::sync::Arc<E>);

/// [`SparqlEndpoint`] over an in-memory graph with statistics and optional
/// injected latency.
#[derive(Debug)]
pub struct LocalEndpoint {
    graph: Graph,
    // lock-order: sparql.local.stats
    stats: Mutex<EndpointStats>,
    latency: Option<Duration>,
    row_latency: Option<Duration>,
}

impl LocalEndpoint {
    /// Wraps a graph.
    pub fn new(graph: Graph) -> Self {
        LocalEndpoint {
            graph,
            stats: Mutex::new(EndpointStats::default()),
            latency: None,
            row_latency: None,
        }
    }

    /// Adds a fixed artificial latency to every query (simulating a slower
    /// or remote endpoint).
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Adds an artificial per-result-row latency to every `SELECT`
    /// (simulating a remote endpoint's response serialization and transfer
    /// cost, which scales with the number of rows shipped). Combined with
    /// [`LocalEndpoint::with_latency`] this models the classic
    /// `round-trip + rows × transfer` cost of a network SPARQL endpoint.
    pub fn with_row_latency(mut self, per_row: Duration) -> Self {
        self.row_latency = Some(per_row);
        self
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> EndpointStats {
        *lock_or_recover("sparql.local.stats", &self.stats)
    }

    /// Resets the statistics (e.g. between experiment phases).
    pub fn reset_stats(&self) {
        *lock_or_recover("sparql.local.stats", &self.stats) = EndpointStats::default();
    }

    /// Consumes the endpoint, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    fn pay_latency(&self) {
        if let Some(latency) = self.latency {
            std::thread::sleep(latency);
        }
    }
}

impl SparqlEndpoint for LocalEndpoint {
    fn select(&self, query: &Query) -> Result<Solutions, SparqlError> {
        let start = Instant::now();
        self.pay_latency();
        let result = evaluate(&self.graph, query);
        if let (Some(per_row), Ok(solutions)) = (self.row_latency, &result) {
            if !solutions.is_empty() {
                std::thread::sleep(per_row * solutions.len() as u32);
            }
        }
        let elapsed = start.elapsed();
        let mut stats = lock_or_recover("sparql.local.stats", &self.stats);
        stats.selects += 1;
        stats.busy += elapsed;
        stats.latency.record(elapsed);
        if let Ok(solutions) = &result {
            stats.rows_returned += solutions.len() as u64;
        }
        result
    }

    fn ask(&self, query: &Query) -> Result<bool, SparqlError> {
        let start = Instant::now();
        self.pay_latency();
        let result = evaluate_ask(&self.graph, query);
        let elapsed = start.elapsed();
        let mut stats = lock_or_recover("sparql.local.stats", &self.stats);
        stats.asks += 1;
        stats.busy += elapsed;
        stats.latency.record(elapsed);
        result
    }

    fn keyword_search(&self, keyword: &str, exact: bool) -> Vec<TermId> {
        let start = Instant::now();
        self.pay_latency();
        let hits = if exact {
            self.graph.literals_matching_exact(keyword)
        } else {
            self.graph.literals_matching_keywords(keyword)
        };
        let elapsed = start.elapsed();
        let mut stats = lock_or_recover("sparql.local.stats", &self.stats);
        stats.keyword_searches += 1;
        stats.busy += elapsed;
        stats.latency.record(elapsed);
        hits
    }

    fn graph(&self) -> &Graph {
        &self.graph
    }

    fn stats(&self) -> EndpointStats {
        LocalEndpoint::stats(self)
    }

    fn reset_stats(&self) {
        LocalEndpoint::reset_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use re2x_rdf::io::parse_turtle;

    fn endpoint() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany ; ex:value 5 .
            ex:o2 ex:dest ex:France ; ex:value 7 .
            ex:Germany ex:label "Germany" .
            ex:France ex:label "France" .
            "#,
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    #[test]
    fn select_and_stats() {
        let ep = endpoint();
        let sols = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert_eq!(sols.len(), 2);
        let stats = ep.stats();
        assert_eq!(stats.selects, 1);
        assert_eq!(stats.rows_returned, 2);
        assert_eq!(stats.total_queries(), 1);
    }

    #[test]
    fn ask_via_text() {
        let ep = endpoint();
        assert!(ep
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
            .expect("ask"));
        assert!(!ep
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Spain> }")
            .expect("ask"));
        assert_eq!(ep.stats().asks, 2);
    }

    #[test]
    fn keyword_search_modes() {
        let ep = endpoint();
        assert_eq!(ep.keyword_search("germany", true).len(), 1);
        assert_eq!(ep.keyword_search("germany", false).len(), 1);
        assert!(ep.keyword_search("ger", true).is_empty());
        assert_eq!(ep.stats().keyword_searches, 3);
    }

    #[test]
    fn boxed_and_shared_endpoints_delegate() {
        let boxed: Box<dyn SparqlEndpoint> = Box::new(endpoint());
        let sols = boxed
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("boxed select");
        assert_eq!(sols.len(), 2);
        assert_eq!(boxed.stats().selects, 1);
        boxed.reset_stats();
        assert_eq!(boxed.stats(), EndpointStats::default());

        let shared: std::sync::Arc<dyn SparqlEndpoint> = std::sync::Arc::new(endpoint());
        assert!(shared
            .ask_text("ASK { ?o <http://ex/dest> <http://ex/Germany> }")
            .expect("arc ask"));
        // a decorator generic over E composes over the boxed layer
        let cached = crate::CachingEndpoint::with_capacity(boxed, 4);
        assert_eq!(
            cached
                .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                .expect("cached over boxed")
                .len(),
            2
        );
    }

    #[test]
    fn reset_stats_clears_counts() {
        let ep = endpoint();
        let _ = ep.keyword_search("germany", true);
        ep.reset_stats();
        assert_eq!(ep.stats(), EndpointStats::default());
    }

    #[test]
    fn latency_is_accounted_in_busy_time() {
        let ep = endpoint().with_latency(Duration::from_millis(5));
        let _ = ep
            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
            .expect("query");
        assert!(ep.stats().busy >= Duration::from_millis(5));
    }

    #[test]
    fn endpoint_is_shareable_across_threads() {
        let ep = endpoint();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        let _ = ep
                            .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                            .expect("query");
                    }
                });
            }
        });
        let stats = ep.stats();
        assert_eq!(stats.selects, 100);
        assert_eq!(stats.rows_returned, 200);
        assert_eq!(stats.latency.count(), 100);
    }

    #[test]
    fn histogram_records_injected_latency() {
        let ep = endpoint().with_latency(Duration::from_millis(5));
        for _ in 0..4 {
            let _ = ep
                .select_text("SELECT ?d WHERE { ?o <http://ex/dest> ?d }")
                .expect("query");
        }
        let p50 = ep.stats().latency.p50().expect("recorded");
        assert!(p50 >= Duration::from_millis(5), "{p50:?}");
    }

    fn sample_stats(selects: u64, rows: u64, busy_us: u64, hits: u64) -> EndpointStats {
        let mut s = EndpointStats {
            selects,
            asks: selects / 2,
            keyword_searches: 1,
            rows_returned: rows,
            busy: Duration::from_micros(busy_us),
            cache_hits: hits,
            cache_misses: hits + 1,
            cache_evictions: hits / 2,
            ..EndpointStats::default()
        };
        for _ in 0..selects {
            s.latency.record(Duration::from_micros(busy_us.max(1)));
        }
        s
    }

    #[test]
    fn stats_merge_preserves_counts() {
        let a = sample_stats(4, 40, 10, 2);
        let b = sample_stats(6, 15, 7, 0);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.selects, 10);
        assert_eq!(merged.asks, a.asks + b.asks);
        assert_eq!(merged.keyword_searches, 2);
        assert_eq!(merged.rows_returned, 55);
        assert_eq!(merged.busy, Duration::from_micros(17));
        assert_eq!(merged.cache_hits, 2);
        assert_eq!(merged.cache_misses, 4);
        assert_eq!(
            merged.total_queries(),
            a.total_queries() + b.total_queries()
        );
        assert_eq!(
            merged.latency.count(),
            a.latency.count() + b.latency.count()
        );
    }

    #[test]
    fn stats_merge_is_associative_and_commutative() {
        let a = sample_stats(1, 2, 3, 4);
        let b = sample_stats(5, 6, 7, 8);
        let c = sample_stats(9, 10, 11, 12);

        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);

        assert_eq!(left, right);

        // b ⊕ a == a ⊕ b
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let a = sample_stats(3, 30, 9, 1);
        let mut merged = a;
        merged.merge(&EndpointStats::default());
        assert_eq!(merged, a);
    }
}
