//! Robustness properties of the SPARQL parser: it must never panic, and
//! parse→print→parse must be a fixpoint on the structured query space.

use re2x_sparql::{parse_query, query_to_sparql};
use re2x_testkit::check;

/// The parser returns `Ok` or `Err` on arbitrary input — it never panics,
/// loops, or overflows.
#[test]
fn parser_never_panics_on_arbitrary_input() {
    check("parser_never_panics_on_arbitrary_input", |rng| {
        let input = rng.unicode_string(0..201);
        let _ = parse_query(&input);
    });
}

/// Same for byte soup that stays valid UTF-8 but leans on the characters
/// the lexer special-cases.
#[test]
fn parser_never_panics_on_syntax_soup() {
    const SOUP: &str =
        " \t\nSELECTWHERFIGOUP?<>{}()./;,\"'\\&|!=+*abcdefghijklmnopqrstuvwxyz0123456789^@-";
    check("parser_never_panics_on_syntax_soup", |rng| {
        let input = rng.string_from(SOUP, 0..121);
        let _ = parse_query(&input);
    });
}

/// parse ∘ print is idempotent over randomly composed valid queries.
#[test]
fn print_parse_fixpoint() {
    check("print_parse_fixpoint", |rng| {
        let var_count = rng.gen_range(1usize..4);
        let vars: Vec<String> = (0..var_count)
            .map(|_| {
                let head = rng.string_from("abcdefghijklmnopqrstuvwxyz", 1..2);
                let tail = rng.string_from("abcdefghijklmnopqrstuvwxyz0123456789", 0..6);
                format!("{head}{tail}")
            })
            .collect();
        let path_len = rng.gen_range(1usize..3);
        let distinct = rng.gen_bool(0.5);
        let limit = rng.gen_bool(0.5).then(|| rng.gen_range(0usize..100));
        let agg = rng.gen_bool(0.5);
        let filter_threshold = rng.gen_bool(0.5).then(|| rng.gen_range(-1000i32..1000));

        // assemble a query from the generated fragments
        let mut body = String::new();
        for (i, v) in vars.iter().enumerate() {
            let path = (0..path_len)
                .map(|k| format!("<http://ex/p{i}_{k}>"))
                .collect::<Vec<_>>()
                .join(" / ");
            body.push_str(&format!("?obs {path} ?{v} . "));
        }
        body.push_str("?obs <http://ex/m> ?value . ");
        if let Some(t) = filter_threshold {
            body.push_str(&format!("FILTER(?value > {t}) "));
        }
        let projection = if agg {
            let group: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
            format!("{} (SUM(?value) AS ?total)", group.join(" "))
        } else {
            "*".to_owned()
        };
        let mut text = format!(
            "SELECT {}{projection} WHERE {{ {body}}}",
            if distinct { "DISTINCT " } else { "" },
        );
        if agg {
            let group: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
            text.push_str(&format!(" GROUP BY {}", group.join(" ")));
        }
        if let Some(l) = limit {
            text.push_str(&format!(" LIMIT {l}"));
        }

        let q1 = parse_query(&text).expect("assembled query parses");
        let printed = query_to_sparql(&q1);
        let q2 = parse_query(&printed).expect("printed query parses");
        assert_eq!(&q1, &q2, "fixpoint violated for {printed}");
        // printing is deterministic
        assert_eq!(query_to_sparql(&q2), printed);
    });
}
