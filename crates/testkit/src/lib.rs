#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # re2x-testkit
//!
//! A small, dependency-free property-testing harness plus the deterministic
//! PRNG it is built on. It replaces the external `proptest`/`rand` crates so
//! the workspace builds and tests with no network access.
//!
//! A property is an ordinary `#[test]` that calls [`check`] (or [`check_n`]
//! for an explicit iteration budget) with a closure over a [`TestRng`]:
//!
//! ```
//! re2x_testkit::check("reverse is an involution", |rng| {
//!     let n = rng.gen_range(0usize..20);
//!     let xs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
//!     let mut twice = xs.clone();
//!     twice.reverse();
//!     twice.reverse();
//!     assert_eq!(twice, xs);
//! });
//! ```
//!
//! Each case runs with a fresh generator derived from a per-case seed; a
//! failing case reports its seed and can be replayed exactly by setting
//! `RE2X_TEST_SEED=<seed>`. The iteration budget defaults to
//! [`DEFAULT_CASES`] and can be raised or lowered globally with
//! `RE2X_TEST_CASES`.

pub mod prng;
pub mod runner;

pub use prng::{SplitMix64, TestRng};
pub use runner::{check, check_n, DEFAULT_CASES};
