//! Poll-based asynchronous query fan-out over any [`SparqlEndpoint`].
//!
//! The `trace` experiment shows endpoint round-trips dominating pipeline
//! wall time under realistic latency — the paper's Virtuoso observation.
//! Bootstrap, candidate validation, and refinement execution each issue
//! *batches of independent queries*, so the latency of a batch can be the
//! latency of one round-trip instead of their sum. [`AsyncSparqlEndpoint`]
//! is that seam: a ticket-based submission API with **no external
//! runtime** — no futures executor, no callback plumbing, just
//! [`std::task::Poll`] over a small internal pool of scoped threads.
//!
//! ## Ticket lifecycle
//!
//! [`submit`] enqueues a request and returns a [`Ticket`]. Tickets are
//! not cloneable and a response is delivered **exactly once**: [`poll`]
//! hands it out on `Ready` (after which the ticket is spent and must be
//! dropped), [`wait`]/[`join_all`] consume the ticket(s) outright.
//! [`join_all`] returns responses **in submission order**, which is what
//! lets callers fan out a batch and reassemble results byte-identically
//! to the serial loop they replaced.
//!
//! ## Stats and provenance reconciliation
//!
//! The adapter adds no accounting of its own: every request is serviced
//! by calling straight into the wrapped endpoint stack from a pool
//! thread, so [`EndpointStats`](crate::EndpointStats) counters and the
//! latency histogram see exactly the queries a serial caller would have
//! issued. Span attribution would normally be lost on a pool thread
//! (spans are per-thread), so [`submit`] captures the submitting thread's
//! innermost span via [`SparqlEndpoint::tracer`] and the worker *adopts*
//! it ([`re2x_obs::Tracer::adopt`]) while servicing the request — queries
//! reconcile to the same provenance paths as their serial equivalents,
//! and `TracingEndpoint`/`CachingEndpoint` composition keeps working.
//!
//! [`submit`]: AsyncSparqlEndpoint::submit
//! [`poll`]: AsyncSparqlEndpoint::poll
//! [`wait`]: AsyncSparqlEndpoint::wait
//! [`join_all`]: AsyncSparqlEndpoint::join_all

use crate::ast::Query;
use crate::endpoint::SparqlEndpoint;
use crate::error::SparqlError;
use crate::value::Solutions;
use re2x_obs::{lock_or_recover, wait_or_recover, SpanHandle, Tracer};
use re2x_rdf::TermId;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::task::Poll;

/// One request submitted for asynchronous servicing — the three call
/// shapes of [`SparqlEndpoint`].
#[derive(Debug, Clone)]
pub enum AsyncRequest {
    /// A `SELECT` query.
    Select(Query),
    /// An `ASK` query.
    Ask(Query),
    /// A full-text keyword lookup.
    Keyword {
        /// The keyword to resolve.
        keyword: String,
        /// Whether the whole normalized lexical form must match.
        exact: bool,
    },
}

/// The response for a completed ticket, mirroring [`AsyncRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum AsyncResponse {
    /// Rows of a `SELECT`.
    Select(Solutions),
    /// Answer of an `ASK`.
    Ask(bool),
    /// Hits of a keyword lookup.
    Keyword(Vec<TermId>),
}

impl AsyncResponse {
    /// The response's shape name, for mismatch diagnostics.
    fn shape(&self) -> &'static str {
        match self {
            AsyncResponse::Select(_) => "SELECT",
            AsyncResponse::Ask(_) => "ASK",
            AsyncResponse::Keyword(_) => "keyword search",
        }
    }

    /// Unwraps a `SELECT` response, or a typed
    /// [`SparqlError::TicketMismatch`] if the ticket was not submitted as
    /// [`AsyncRequest::Select`].
    pub fn into_select(self) -> Result<Solutions, SparqlError> {
        match self {
            AsyncResponse::Select(s) => Ok(s),
            other => Err(SparqlError::TicketMismatch {
                expected: "SELECT",
                got: other.shape(),
            }),
        }
    }

    /// Unwraps an `ASK` response, or a typed
    /// [`SparqlError::TicketMismatch`] if the ticket was not submitted as
    /// [`AsyncRequest::Ask`].
    pub fn into_ask(self) -> Result<bool, SparqlError> {
        match self {
            AsyncResponse::Ask(b) => Ok(b),
            other => Err(SparqlError::TicketMismatch {
                expected: "ASK",
                got: other.shape(),
            }),
        }
    }

    /// Unwraps a keyword-search response, or a typed
    /// [`SparqlError::TicketMismatch`] if the ticket was not submitted as
    /// [`AsyncRequest::Keyword`].
    pub fn into_keyword(self) -> Result<Vec<TermId>, SparqlError> {
        match self {
            AsyncResponse::Keyword(hits) => Ok(hits),
            other => Err(SparqlError::TicketMismatch {
                expected: "keyword search",
                got: other.shape(),
            }),
        }
    }
}

/// Handle to one in-flight request. Not cloneable; the response is
/// delivered exactly once, after which the ticket is spent.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Poll-based multi-query submission. See the module docs for the ticket
/// lifecycle and the reconciliation guarantees implementations must keep.
pub trait AsyncSparqlEndpoint {
    /// Enqueues a request for servicing; returns immediately.
    fn submit(&self, request: AsyncRequest) -> Ticket;

    /// Non-blocking check: `Ready` hands the response out (consuming it —
    /// drop the ticket afterwards), `Pending` means it is still in flight.
    fn poll(&self, ticket: &Ticket) -> Poll<Result<AsyncResponse, SparqlError>>;

    /// Blocks until the ticket's response is available and consumes it.
    fn wait(&self, ticket: Ticket) -> Result<AsyncResponse, SparqlError> {
        loop {
            match self.poll(&ticket) {
                Poll::Ready(result) => return result,
                Poll::Pending => std::thread::yield_now(),
            }
        }
    }

    /// Waits for every ticket, returning the responses **in submission
    /// order** (the order of `tickets`), so batched fan-out reassembles
    /// deterministically.
    fn join_all(&self, tickets: Vec<Ticket>) -> Vec<Result<AsyncResponse, SparqlError>> {
        tickets.into_iter().map(|t| self.wait(t)).collect()
    }

    /// [`submit`](AsyncSparqlEndpoint::submit) of a `SELECT` query.
    fn submit_select(&self, query: Query) -> Ticket {
        self.submit(AsyncRequest::Select(query))
    }

    /// [`submit`](AsyncSparqlEndpoint::submit) of an `ASK` query.
    fn submit_ask(&self, query: Query) -> Ticket {
        self.submit(AsyncRequest::Ask(query))
    }
}

struct Job {
    id: u64,
    request: AsyncRequest,
    /// Innermost span open on the submitting thread, adopted by the
    /// worker so provenance paths match the serial equivalent.
    context: Option<SpanHandle>,
}

#[derive(Default)]
struct Shared {
    queue: VecDeque<Job>,
    done: HashMap<u64, Result<AsyncResponse, SparqlError>>,
    shutdown: bool,
}

/// The blanket [`AsyncSparqlEndpoint`] adapter over any
/// [`SparqlEndpoint`]: in-flight tickets are serviced by a small pool of
/// scoped worker threads borrowing the wrapped endpoint. Construct it
/// with [`with_async_endpoint`] — the workers are scoped to that call, so
/// the adapter cannot outlive the endpoint it borrows.
pub struct AsyncAdapter {
    // lock-order: sparql.async.shared
    shared: Mutex<Shared>,
    /// Wakes workers when a job is queued (or shutdown is flagged).
    jobs: Condvar,
    /// Wakes waiters when a response lands.
    results: Condvar,
    next_ticket: AtomicU64,
    /// Clone of the endpoint stack's tracer, for capturing the
    /// submitter's span context at submit time.
    tracer: Tracer,
}

impl AsyncAdapter {
    fn new(tracer: Tracer) -> AsyncAdapter {
        AsyncAdapter {
            shared: Mutex::new(Shared::default()),
            jobs: Condvar::new(),
            results: Condvar::new(),
            next_ticket: AtomicU64::new(1),
            tracer,
        }
    }

    fn worker_loop(&self, endpoint: &(impl SparqlEndpoint + ?Sized)) {
        loop {
            let job = {
                let mut shared = lock_or_recover("sparql.async.shared", &self.shared);
                loop {
                    if let Some(job) = shared.queue.pop_front() {
                        break job;
                    }
                    if shared.shutdown {
                        return;
                    }
                    shared = wait_or_recover(&self.jobs, shared);
                }
            };
            let _context = job.context.as_ref().map(|h| self.tracer.adopt(h));
            let result = match job.request {
                AsyncRequest::Select(q) => endpoint.select(&q).map(AsyncResponse::Select),
                AsyncRequest::Ask(q) => endpoint.ask(&q).map(AsyncResponse::Ask),
                AsyncRequest::Keyword { keyword, exact } => Ok(AsyncResponse::Keyword(
                    endpoint.keyword_search(&keyword, exact),
                )),
            };
            let mut shared = lock_or_recover("sparql.async.shared", &self.shared);
            shared.done.insert(job.id, result);
            self.results.notify_all();
        }
    }

    fn shutdown(&self) {
        lock_or_recover("sparql.async.shared", &self.shared).shutdown = true;
        self.jobs.notify_all();
    }
}

impl AsyncSparqlEndpoint for AsyncAdapter {
    fn submit(&self, request: AsyncRequest) -> Ticket {
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let context = self.tracer.current_handle();
        {
            let mut shared = lock_or_recover("sparql.async.shared", &self.shared);
            shared.queue.push_back(Job {
                id,
                request,
                context,
            });
        }
        self.jobs.notify_one();
        Ticket(id)
    }

    fn poll(&self, ticket: &Ticket) -> Poll<Result<AsyncResponse, SparqlError>> {
        let mut shared = lock_or_recover("sparql.async.shared", &self.shared);
        match shared.done.remove(&ticket.0) {
            Some(result) => Poll::Ready(result),
            None => Poll::Pending,
        }
    }

    fn wait(&self, ticket: Ticket) -> Result<AsyncResponse, SparqlError> {
        let mut shared = lock_or_recover("sparql.async.shared", &self.shared);
        loop {
            if let Some(result) = shared.done.remove(&ticket.0) {
                return result;
            }
            shared = wait_or_recover(&self.results, shared);
        }
    }
}

/// Flags shutdown even if the driven closure panics, so the scoped
/// workers (blocked on the jobs condvar) wake up and the scope can join.
struct ShutdownGuard<'a>(&'a AsyncAdapter);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Runs `f` with an [`AsyncAdapter`] whose `workers` pool threads service
/// tickets against `endpoint`. The pool is scoped to this call: it drains
/// outstanding jobs and joins before returning. `workers` is clamped to
/// at least 1; worker count never affects *what* responses a ticket
/// yields, only how many requests are in flight at once.
pub fn with_async_endpoint<R>(
    endpoint: &(impl SparqlEndpoint + ?Sized),
    workers: usize,
    f: impl FnOnce(&AsyncAdapter) -> R,
) -> R {
    let tracer = endpoint.tracer().cloned().unwrap_or_default();
    let adapter = AsyncAdapter::new(tracer);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| adapter.worker_loop(endpoint));
        }
        let _shutdown = ShutdownGuard(&adapter);
        f(&adapter)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::LocalEndpoint;
    use crate::parser::parse_query;
    use crate::tracing::TracingEndpoint;
    use re2x_rdf::io::parse_turtle;
    use re2x_rdf::Graph;
    use std::time::Duration;

    fn local() -> LocalEndpoint {
        let mut g = Graph::new();
        parse_turtle(
            r#"@prefix ex: <http://ex/> .
            ex:o1 ex:dest ex:Germany ; ex:value 5 .
            ex:o2 ex:dest ex:France ; ex:value 7 .
            ex:Germany ex:label "Germany" .
            ex:France ex:label "France" .
            "#,
            &mut g,
        )
        .expect("parse");
        LocalEndpoint::new(g)
    }

    fn select(text: &str) -> Query {
        parse_query(text).expect("parses")
    }

    #[test]
    fn responses_match_serial_and_keep_submission_order() {
        let ep = local();
        let queries = [
            "SELECT ?d WHERE { ?o <http://ex/dest> ?d } ORDER BY ?d",
            "SELECT ?o WHERE { ?o <http://ex/dest> <http://ex/Germany> }",
            "SELECT ?v WHERE { ?o <http://ex/value> ?v } ORDER BY ?v",
        ];
        let serial: Vec<Solutions> = queries
            .iter()
            .map(|q| ep.select(&select(q)).expect("serial"))
            .collect();
        let async_results = with_async_endpoint(&ep, 3, |pool| {
            let tickets: Vec<Ticket> = queries
                .iter()
                .map(|q| pool.submit_select(select(q)))
                .collect();
            pool.join_all(tickets)
        });
        for (serial, async_result) in serial.iter().zip(&async_results) {
            assert_eq!(
                serial,
                &async_result
                    .clone()
                    .expect("ok")
                    .into_select()
                    .expect("shape"),
                "async response identical and in submission order"
            );
        }
    }

    #[test]
    fn all_three_request_kinds_round_trip() {
        let ep = local();
        with_async_endpoint(&ep, 2, |pool| {
            let s = pool.submit_select(select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }"));
            let a = pool.submit_ask(select("ASK { ?o <http://ex/dest> <http://ex/Germany> }"));
            let k = pool.submit(AsyncRequest::Keyword {
                keyword: "germany".into(),
                exact: true,
            });
            assert_eq!(
                pool.wait(s)
                    .expect("select")
                    .into_select()
                    .expect("shape")
                    .len(),
                2
            );
            assert!(pool.wait(a).expect("ask").into_ask().expect("shape"));
            assert_eq!(
                pool.wait(k)
                    .expect("keyword")
                    .into_keyword()
                    .expect("shape")
                    .len(),
                1
            );
        });
        let stats = ep.stats();
        assert_eq!(stats.selects, 1);
        assert_eq!(stats.asks, 1);
        assert_eq!(stats.keyword_searches, 1);
    }

    #[test]
    fn poll_transitions_from_pending_to_ready() {
        let ep = local().with_latency(Duration::from_millis(10));
        with_async_endpoint(&ep, 1, |pool| {
            let ticket = pool.submit_select(select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }"));
            // with 10 ms injected latency the first poll races ahead of
            // the worker; keep polling until Ready
            let mut pending_seen = false;
            let response = loop {
                match pool.poll(&ticket) {
                    Poll::Ready(r) => break r,
                    Poll::Pending => {
                        pending_seen = true;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            assert!(pending_seen, "an in-flight ticket polls Pending");
            assert_eq!(response.expect("ok").into_select().expect("shape").len(), 2);
            // the response was handed out exactly once: the spent ticket
            // now polls Pending forever (it has no pending job either)
            assert!(pool.poll(&ticket).is_pending());
        });
    }

    #[test]
    fn errors_propagate_per_ticket() {
        let ep = local();
        // projected-but-not-grouped is rejected at *evaluation* time, so
        // the error surfaces through the worker, not at submit
        let bad = select(
            "SELECT ?d (SUM(?v) AS ?s) WHERE { ?o <http://ex/dest> ?d . ?o <http://ex/value> ?v }",
        );
        let good = select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }");
        with_async_endpoint(&ep, 2, |pool| {
            let t_bad = pool.submit_select(bad);
            let t_good = pool.submit_select(good);
            let err = pool
                .wait(t_bad)
                .expect_err("invalid query fails its own ticket");
            assert!(matches!(err, SparqlError::Invalid(_)), "{err:?}");
            assert_eq!(
                pool.wait(t_good)
                    .expect("unrelated ticket unaffected")
                    .into_select()
                    .expect("shape")
                    .len(),
                2
            );
        });
    }

    #[test]
    fn stats_equal_serial_under_concurrent_tickets() {
        let serial = local();
        for i in 0..20 {
            if i % 2 == 0 {
                serial
                    .select(&select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }"))
                    .expect("select");
            } else {
                serial
                    .ask(&select("ASK { ?o <http://ex/dest> <http://ex/France> }"))
                    .expect("ask");
            }
        }
        let concurrent = local();
        with_async_endpoint(&concurrent, 4, |pool| {
            let tickets: Vec<Ticket> = (0..20)
                .map(|i| {
                    if i % 2 == 0 {
                        pool.submit_select(select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }"))
                    } else {
                        pool.submit_ask(select("ASK { ?o <http://ex/dest> <http://ex/France> }"))
                    }
                })
                .collect();
            for r in pool.join_all(tickets) {
                r.expect("ok");
            }
        });
        let s = serial.stats();
        let c = concurrent.stats();
        assert_eq!(s.selects, c.selects);
        assert_eq!(s.asks, c.asks);
        assert_eq!(s.rows_returned, c.rows_returned);
        assert_eq!(s.latency.count(), c.latency.count());
    }

    #[test]
    fn provenance_reconciles_under_concurrent_tickets() {
        let tracer = Tracer::enabled();
        let ep = TracingEndpoint::new(
            local().with_latency(Duration::from_millis(1)),
            tracer.clone(),
        );
        {
            let _phase = tracer.span("fanout.batch");
            with_async_endpoint(&ep, 4, |pool| {
                let tickets: Vec<Ticket> = (0..12)
                    .map(|_| {
                        pool.submit_select(select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }"))
                    })
                    .collect();
                for r in pool.join_all(tickets) {
                    r.expect("ok");
                }
            });
        }
        let stats = ep.stats();
        let provenance = tracer.provenance();
        let attributed: u64 = provenance.iter().map(|(_, s)| s.queries()).sum();
        assert_eq!(attributed, stats.total_queries(), "exact reconciliation");
        // every query attributed to the submitter's span, none stray
        let (path, phase_stats) = &provenance[0];
        assert_eq!(provenance.len(), 1, "{provenance:?}");
        assert_eq!(path, "fanout.batch");
        assert_eq!(phase_stats.selects, 12);
        assert_eq!(phase_stats.latency.count(), 12);
    }

    #[test]
    fn overlap_beats_serial_under_injected_latency() {
        let latency = Duration::from_millis(4);
        let ep = local().with_latency(latency);
        let query = "SELECT ?d WHERE { ?o <http://ex/dest> ?d }";
        let n = 8u32;

        let serial_start = std::time::Instant::now();
        for _ in 0..n {
            ep.select(&select(query)).expect("serial");
        }
        let serial_wall = serial_start.elapsed();

        let async_start = std::time::Instant::now();
        with_async_endpoint(&ep, 4, |pool| {
            let tickets: Vec<Ticket> = (0..n).map(|_| pool.submit_select(select(query))).collect();
            for r in pool.join_all(tickets) {
                r.expect("ok");
            }
        });
        let async_wall = async_start.elapsed();

        assert!(serial_wall >= latency * n, "serial pays every round-trip");
        assert!(
            async_wall < serial_wall,
            "overlapped fan-out ({async_wall:?}) beats serial ({serial_wall:?})"
        );
    }

    #[test]
    fn zero_workers_is_clamped_and_still_serves() {
        let ep = local();
        with_async_endpoint(&ep, 0, |pool| {
            let t = pool.submit_select(select("SELECT ?d WHERE { ?o <http://ex/dest> ?d }"));
            assert_eq!(
                pool.wait(t)
                    .expect("ok")
                    .into_select()
                    .expect("shape")
                    .len(),
                2
            );
        });
    }
}
