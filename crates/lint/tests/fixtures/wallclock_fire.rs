//! no-wallclock FIRE fixture: wall-clock reads in ordinary library code.

pub fn stamp() -> u64 {
    let started = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    started.elapsed().as_micros() as u64
}
