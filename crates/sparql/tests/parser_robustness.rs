//! Robustness properties of the SPARQL parser: it must never panic, and
//! parse→print→parse must be a fixpoint on the structured query space.

use proptest::prelude::*;
use re2x_sparql::{parse_query, query_to_sparql};

proptest! {
    /// The parser returns `Ok` or `Err` on arbitrary input — it never
    /// panics, loops, or overflows.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = parse_query(&input);
    }

    /// Same for byte soup that stays valid UTF-8 but leans on the
    /// characters the lexer special-cases.
    #[test]
    fn parser_never_panics_on_syntax_soup(
        input in r#"[ \t\nSELECTWHERFIGOUP?<>{}()./;,"'\\&|!=+*a-z0-9^@-]{0,120}"#
    ) {
        let _ = parse_query(&input);
    }

    /// parse ∘ print is idempotent over randomly composed valid queries.
    #[test]
    fn print_parse_fixpoint(
        vars in proptest::collection::vec("[a-z][a-z0-9]{0,5}", 1..4),
        path_len in 1usize..3,
        distinct in any::<bool>(),
        limit in proptest::option::of(0usize..100),
        agg in any::<bool>(),
        filter_threshold in proptest::option::of(-1000i32..1000),
    ) {
        // assemble a query from the generated fragments
        let mut body = String::new();
        for (i, v) in vars.iter().enumerate() {
            let path = (0..path_len)
                .map(|k| format!("<http://ex/p{i}_{k}>"))
                .collect::<Vec<_>>()
                .join(" / ");
            body.push_str(&format!("?obs {path} ?{v} . "));
        }
        body.push_str("?obs <http://ex/m> ?value . ");
        if let Some(t) = filter_threshold {
            body.push_str(&format!("FILTER(?value > {t}) "));
        }
        let projection = if agg {
            let group: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
            format!("{} (SUM(?value) AS ?total)", group.join(" "))
        } else {
            "*".to_owned()
        };
        let mut text = format!(
            "SELECT {}{projection} WHERE {{ {body}}}",
            if distinct { "DISTINCT " } else { "" },
        );
        if agg {
            let group: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
            text.push_str(&format!(" GROUP BY {}", group.join(" ")));
        }
        if let Some(l) = limit {
            text.push_str(&format!(" LIMIT {l}"));
        }

        let q1 = parse_query(&text).expect("assembled query parses");
        let printed = query_to_sparql(&q1);
        let q2 = parse_query(&printed).expect("printed query parses");
        prop_assert_eq!(&q1, &q2, "fixpoint violated for {}", printed);
        // printing is deterministic
        prop_assert_eq!(query_to_sparql(&q2), printed);
    }
}
