//! `endpoint-seam`: `re2x-core` / `re2x-cube` must reach the triplestore
//! only through the `SparqlEndpoint` trait.
//!
//! Every decorator (caching, tracing, async fan-out, sharding) sits on
//! that seam; a direct `Graph` index probe or a `LocalEndpoint`
//! construction in the algorithm layers bypasses them all — queries stop
//! being cached, attributed, and shardable. Modules that materialize into
//! a caller-supplied local graph (not the endpoint's store) opt in with
//! `// lint:allow-file(endpoint-seam, reason)`.

use super::{finding_at, significant};
use crate::findings::Finding;
use crate::source::SourceFile;

/// `Graph` navigation/evaluation methods that constitute a direct query
/// when called in the algorithm layers (matched as `.name(`).
const GRAPH_QUERY_METHODS: &[&str] = &[
    "for_each_matching",
    "for_each_matching_until",
    "count_matching",
    "matching",
    "objects",
    "subjects",
    "predicates_between",
    "predicates_from",
    "predicates_into",
    "objects_of_predicate",
    "predicate_cardinality",
    "contains_ids",
    "literals_matching_exact",
    "literals_matching_keywords",
];

/// Free functions of the local evaluator (matched as `name(`).
const EVAL_FUNCTIONS: &[&str] = &["evaluate", "evaluate_ask"];

/// Runs the rule over one file (the engine restricts it to core/cube).
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let toks = significant(file);
    let text = &file.text;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_region(t.start) {
            continue;
        }
        let word = t.text(text);
        if word == "LocalEndpoint" {
            findings.push(finding_at(
                file,
                "endpoint-seam",
                t,
                "`LocalEndpoint` named outside the seam; accept `&dyn SparqlEndpoint`".to_owned(),
            ));
            continue;
        }
        let called = toks.get(i + 1).map(|n| n.text(text)) == Some("(");
        if !called {
            continue;
        }
        let dotted = i > 0 && toks[i - 1].text(text) == ".";
        if dotted && GRAPH_QUERY_METHODS.contains(&word) {
            findings.push(finding_at(
                file,
                "endpoint-seam",
                t,
                format!("direct `Graph::{word}` probe bypasses the SparqlEndpoint decorators"),
            ));
        }
        if !dotted && EVAL_FUNCTIONS.contains(&word) {
            // exclude `self.evaluate(` style methods (dotted) and paths like
            // `eval::evaluate(` (preceded by `::`, still the evaluator).
            findings.push(finding_at(
                file,
                "endpoint-seam",
                t,
                format!("`{word}(…)` evaluates locally, bypassing the SparqlEndpoint seam"),
            ));
        }
    }
    findings
}
